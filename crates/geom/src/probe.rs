//! Whole-window MBR merge probe: one wide pass instead of a per-group
//! loop.
//!
//! CSJ(g) tests every residual link against up to `g` open groups; with
//! the group boxes stored as per-dimension bound slabs the entire window
//! can be tested at once. [`mbr_fit_mask`] answers, for every box `i`,
//! whether growing it to also cover a link's span keeps its squared
//! Euclidean diagonal within `ε²` — a bitmask the caller turns into the
//! newest-first accept decision with plain integer arithmetic.
//!
//! Bit-identity contract (mirrors the sweep kernel in
//! [`crate::kernel`]): every path performs the exact IEEE-754 operations
//! of the sequential merge test, in the same dimension order —
//! `min`/`max` fold of the span into the box, side length, separate
//! square and accumulate (no FMA), ordered `<=` against `ε²` (false on
//! NaN). The SIMD `min`/`max` lane ops match `f64::min`/`f64::max` for
//! every input with a non-NaN span (the one asymmetric case callers must
//! exclude), so a given window and span produce the same mask on every
//! path.

use crate::kernel::KernelPath;

/// Largest window the mask probe handles (one bit per group in a `u64`).
/// Callers with wider windows fall back to sequential probing.
pub const MAX_WINDOW: usize = 64;

/// For every box `i`, bit `i` is set iff extending the box to cover the
/// span `[span_lo, span_hi]` keeps its squared Euclidean diagonal within
/// `eps_sq`.
///
/// `lo`/`hi` hold one slab per dimension, all of one common length
/// `n <= MAX_WINDOW` (box `i`'s bounds on axis `d` are `lo[d][i]` /
/// `hi[d][i]`). The span must be NaN-free; `±∞` bounds are fine (a
/// non-finite side fails the ordered compare, as in the sequential
/// test). `path` is clamped to the host's capabilities, so passing
/// [`KernelPath::detect`] is always sound.
#[inline]
pub fn mbr_fit_mask<const D: usize>(
    path: KernelPath,
    lo: &[&[f64]; D],
    hi: &[&[f64]; D],
    span_lo: &[f64; D],
    span_hi: &[f64; D],
    eps_sq: f64,
) -> u64 {
    let n = lo.first().map_or(0, |s| s.len());
    debug_assert!(n <= MAX_WINDOW, "window exceeds the mask width");
    debug_assert!(
        lo.iter().chain(hi.iter()).all(|s| s.len() == n),
        "bound slabs must share one length"
    );
    debug_assert!(
        span_lo.iter().chain(span_hi.iter()).all(|v| !v.is_nan()),
        "the span must be NaN-free"
    );
    match path.clamp() {
        KernelPath::Scalar => fit_mask_scalar(lo, hi, span_lo, span_hi, eps_sq, 0, n),
        KernelPath::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                // SAFETY: `clamp` returned `Avx2` only after
                // `is_x86_feature_detected!("avx2")` confirmed the CPU
                // executes AVX2; all slabs have length `n` (checked
                // above in debug, guaranteed by the caller contract).
                unsafe { x86::fit_mask_avx2(lo, hi, span_lo, span_hi, eps_sq, n) }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                unreachable!("clamp never selects AVX2 off x86-64")
            }
        }
        KernelPath::Neon => {
            #[cfg(target_arch = "aarch64")]
            {
                // SAFETY: `clamp` returned `Neon` only after
                // `is_aarch64_feature_detected!("neon")` confirmed NEON;
                // all slabs have length `n`.
                unsafe { neon::fit_mask_neon(lo, hi, span_lo, span_hi, eps_sq, n) }
            }
            #[cfg(not(target_arch = "aarch64"))]
            {
                unreachable!("clamp never selects NEON off aarch64")
            }
        }
    }
}

/// Newest-first accept decision from a fit mask: the slot a sequential
/// walk in ring order (slots `head-1 .. 0`, then `n-1 .. head`) would
/// accept first, plus the number of merge attempts that walk would have
/// counted before stopping (`n` on a miss). Bits at or above `n` must be
/// clear.
#[inline]
pub fn select_newest_first(mask: u64, head: usize, n: usize) -> (Option<usize>, u64) {
    debug_assert!(n == 64 || mask >> n == 0, "mask bits beyond the live window");
    let front = mask & ((1u64 << head) - 1);
    if front != 0 {
        let i = 63 - front.leading_zeros() as usize;
        (Some(i), (head - i) as u64)
    } else {
        let back = mask >> head;
        if back != 0 {
            let i = head + (63 - back.leading_zeros() as usize);
            (Some(i), (head + n - i) as u64)
        } else {
            (None, n as u64)
        }
    }
}

/// [`mbr_fit_mask`] and [`select_newest_first`] fused into one dispatch:
/// the per-link fast path of the CSJ(g) merge loop, where a second call
/// boundary per link is measurable. Semantics are exactly
/// `select_newest_first(mbr_fit_mask(..), head, n_live)`.
///
/// The slabs may be padded beyond `n_live` (to a whole number of SIMD
/// lanes): the SIMD paths evaluate every padded lane, so the caller must
/// guarantee padded lanes can never pass the fit test (`+∞` sentinel
/// bounds with a finite `eps_sq`). The scalar path evaluates exactly
/// `n_live` lanes and never reads the padding.
#[inline]
// One argument per scalar the kernel consumes: bundling them into a
// struct would cost the marshaling this fused entry point exists to
// avoid.
#[allow(clippy::too_many_arguments)]
pub fn mbr_fit_pick<const D: usize>(
    path: KernelPath,
    lo: &[&[f64]; D],
    hi: &[&[f64]; D],
    span_lo: &[f64; D],
    span_hi: &[f64; D],
    eps_sq: f64,
    head: usize,
    n_live: usize,
) -> (Option<usize>, u64) {
    debug_assert!(n_live <= MAX_WINDOW && head < n_live.max(1));
    match path.clamp() {
        KernelPath::Scalar => {
            let mask = fit_mask_scalar(lo, hi, span_lo, span_hi, eps_sq, 0, n_live);
            select_newest_first(mask, head, n_live)
        }
        KernelPath::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                // SAFETY: `clamp` returned `Avx2` only after
                // `is_x86_feature_detected!("avx2")` confirmed the CPU
                // executes AVX2; the slab slices carry their own length.
                unsafe { x86::fit_pick_avx2(lo, hi, span_lo, span_hi, eps_sq, head, n_live) }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                unreachable!("clamp never selects AVX2 off x86-64")
            }
        }
        KernelPath::Neon => {
            #[cfg(target_arch = "aarch64")]
            {
                // SAFETY: `clamp` returned `Neon` only after
                // `is_aarch64_feature_detected!("neon")` confirmed NEON;
                // the slab slices carry their own length.
                unsafe { neon::fit_pick_neon(lo, hi, span_lo, span_hi, eps_sq, head, n_live) }
            }
            #[cfg(not(target_arch = "aarch64"))]
            {
                unreachable!("clamp never selects NEON off aarch64")
            }
        }
    }
}

/// The semantic reference: the sequential merge test, box by box. Also
/// serves as the tail loop of the SIMD paths, which must keep the exact
/// operation order.
fn fit_mask_scalar<const D: usize>(
    lo: &[&[f64]; D],
    hi: &[&[f64]; D],
    span_lo: &[f64; D],
    span_hi: &[f64; D],
    eps_sq: f64,
    start: usize,
    n: usize,
) -> u64 {
    let mut mask = 0u64;
    for i in start..n {
        let mut acc = 0.0;
        for d in 0..D {
            // Box bound first, span second: `f64::min` resolves a NaN
            // box bound to the span, exactly as the SIMD lane ops do.
            let l = lo[d][i].min(span_lo[d]);
            let h = hi[d][i].max(span_hi[d]);
            let s = h - l;
            acc += s * s;
        }
        if acc <= eps_sq {
            mask |= 1 << i;
        }
    }
    mask
}

/// Explicit AVX2 mask probe. Same module discipline as the sweep kernel:
/// every `unsafe` surface in one place, compiled only on x86-64.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::fit_mask_scalar;
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_cmp_pd, _mm256_loadu_pd, _mm256_max_pd, _mm256_min_pd,
        _mm256_movemask_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd, _mm256_sub_pd,
        _CMP_LE_OQ,
    };

    /// Four boxes per iteration; scalar tail in the reference order.
    ///
    /// Bit-identity with [`fit_mask_scalar`]: `vminpd(box, span)` /
    /// `vmaxpd(box, span)` return the span lane when the box lane is NaN
    /// and the second operand on ties — matching `f64::min`/`f64::max`
    /// for a NaN-free span (signed-zero ties cannot change the squared
    /// side); `vsub`/`vmul`/`vadd` accumulate in the same dimension
    /// order with no FMA contraction; `_CMP_LE_OQ` is ordered `<=`,
    /// false on NaN, like the scalar compare.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (callers establish this via runtime
    /// feature detection) and every slab in `lo`/`hi` must have length
    /// ≥ `n`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fit_mask_avx2<const D: usize>(
        lo: &[&[f64]; D],
        hi: &[&[f64]; D],
        span_lo: &[f64; D],
        span_hi: &[f64; D],
        eps_sq: f64,
        n: usize,
    ) -> u64 {
        let thr = _mm256_set1_pd(eps_sq);
        let mut mask = 0u64;
        let mut i = 0usize;
        while i + 4 <= n {
            let mut acc = _mm256_setzero_pd();
            for d in 0..D {
                debug_assert!(i + 4 <= lo[d].len() && i + 4 <= hi[d].len());
                // SAFETY: `i + 4 <= n` and every slab has length ≥ `n`
                // (caller contract), so both 4-wide unaligned loads stay
                // inside their slab.
                let (bl, bh) = unsafe {
                    (_mm256_loadu_pd(lo[d].as_ptr().add(i)), _mm256_loadu_pd(hi[d].as_ptr().add(i)))
                };
                let l = _mm256_min_pd(bl, _mm256_set1_pd(span_lo[d]));
                let h = _mm256_max_pd(bh, _mm256_set1_pd(span_hi[d]));
                let s = _mm256_sub_pd(h, l);
                // Separate mul + add: an FMA here would change rounding
                // and break bit-identity with the scalar test.
                acc = _mm256_add_pd(acc, _mm256_mul_pd(s, s));
            }
            let m = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(acc, thr)) as u32 as u64;
            mask |= m << i;
            i += 4;
        }
        mask | fit_mask_scalar(lo, hi, span_lo, span_hi, eps_sq, i, n)
    }

    /// Fused mask + newest-first selection (see
    /// [`super::mbr_fit_pick`]): one `target_feature` call per link, so
    /// the mask kernel inlines into the selection instead of paying a
    /// second call boundary. Evaluates every padded lane of the slabs —
    /// the caller guarantees lanes at or above `n_live` cannot pass.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (callers establish this via runtime
    /// feature detection); all slabs must share one length.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fit_pick_avx2<const D: usize>(
        lo: &[&[f64]; D],
        hi: &[&[f64]; D],
        span_lo: &[f64; D],
        span_hi: &[f64; D],
        eps_sq: f64,
        head: usize,
        n_live: usize,
    ) -> (Option<usize>, u64) {
        let n = lo.first().map_or(0, |s| s.len());
        // SAFETY: AVX2 is available (caller contract) and `n` is the
        // shared slab length, so every load stays in bounds.
        let mask = unsafe { fit_mask_avx2(lo, hi, span_lo, span_hi, eps_sq, n) };
        super::select_newest_first(mask, head, n_live)
    }
}

/// Explicit NEON mask probe (aarch64), 2×f64 lanes. `vminnmq`/`vmaxnmq`
/// are the IEEE `minNum`/`maxNum` forms — NaN box bounds resolve to the
/// span lane like `f64::min`/`f64::max` (plain `vminq`/`vmaxq` would
/// propagate the NaN instead and diverge from the scalar reference).
#[cfg(target_arch = "aarch64")]
mod neon {
    use super::fit_mask_scalar;
    use std::arch::aarch64::{
        vaddq_f64, vcleq_f64, vdupq_n_f64, vgetq_lane_u64, vld1q_f64, vmaxnmq_f64, vminnmq_f64,
        vmulq_f64, vsubq_f64,
    };

    /// Two boxes per iteration; scalar tail in the reference order.
    ///
    /// # Safety
    ///
    /// The CPU must support NEON (callers establish this via runtime
    /// feature detection) and every slab in `lo`/`hi` must have length
    /// ≥ `n`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn fit_mask_neon<const D: usize>(
        lo: &[&[f64]; D],
        hi: &[&[f64]; D],
        span_lo: &[f64; D],
        span_hi: &[f64; D],
        eps_sq: f64,
        n: usize,
    ) -> u64 {
        let thr = vdupq_n_f64(eps_sq);
        let mut mask = 0u64;
        let mut i = 0usize;
        while i + 2 <= n {
            let mut acc = vdupq_n_f64(0.0);
            for d in 0..D {
                debug_assert!(i + 2 <= lo[d].len() && i + 2 <= hi[d].len());
                // SAFETY: `i + 2 <= n` and every slab has length ≥ `n`
                // (caller contract), so both 2-wide loads stay inside
                // their slab.
                let bl = unsafe { vld1q_f64(lo[d].as_ptr().add(i)) };
                // SAFETY: same bound as the `lo` load above.
                let bh = unsafe { vld1q_f64(hi[d].as_ptr().add(i)) };
                let l = vminnmq_f64(bl, vdupq_n_f64(span_lo[d]));
                let h = vmaxnmq_f64(bh, vdupq_n_f64(span_hi[d]));
                let s = vsubq_f64(h, l);
                // Separate mul + add — no FMA contraction, as in the
                // scalar reference.
                acc = vaddq_f64(acc, vmulq_f64(s, s));
            }
            let le = vcleq_f64(acc, thr);
            let m = (vgetq_lane_u64::<0>(le) & 1) | ((vgetq_lane_u64::<1>(le) & 1) << 1);
            mask |= m << i;
            i += 2;
        }
        mask | fit_mask_scalar(lo, hi, span_lo, span_hi, eps_sq, i, n)
    }

    /// Fused mask + newest-first selection (see
    /// [`super::mbr_fit_pick`]); the NEON twin of the AVX2 fused path.
    /// Evaluates every padded lane of the slabs — the caller guarantees
    /// lanes at or above `n_live` cannot pass.
    ///
    /// # Safety
    ///
    /// The CPU must support NEON (callers establish this via runtime
    /// feature detection); all slabs must share one length.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn fit_pick_neon<const D: usize>(
        lo: &[&[f64]; D],
        hi: &[&[f64]; D],
        span_lo: &[f64; D],
        span_hi: &[f64; D],
        eps_sq: f64,
        head: usize,
        n_live: usize,
    ) -> (Option<usize>, u64) {
        let n = lo.first().map_or(0, |s| s.len());
        // SAFETY: NEON is available (caller contract) and `n` is the
        // shared slab length, so every load stays in bounds.
        let mask = unsafe { fit_mask_neon(lo, hi, span_lo, span_hi, eps_sq, n) };
        super::select_newest_first(mask, head, n_live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds slab arrays from per-box bounds for the tests (shared with
    /// the proptest module below).
    pub(super) fn slabs<const D: usize>(
        boxes: &[([f64; D], [f64; D])],
    ) -> ([Vec<f64>; D], [Vec<f64>; D]) {
        let lo = std::array::from_fn(|d| boxes.iter().map(|b| b.0[d]).collect());
        let hi = std::array::from_fn(|d| boxes.iter().map(|b| b.1[d]).collect());
        (lo, hi)
    }

    fn mask_on<const D: usize>(
        path: KernelPath,
        boxes: &[([f64; D], [f64; D])],
        span_lo: [f64; D],
        span_hi: [f64; D],
        eps_sq: f64,
    ) -> u64 {
        let (lo, hi) = slabs(boxes);
        let lo_refs: [&[f64]; D] = std::array::from_fn(|d| lo[d].as_slice());
        let hi_refs: [&[f64]; D] = std::array::from_fn(|d| hi[d].as_slice());
        mbr_fit_mask(path, &lo_refs, &hi_refs, &span_lo, &span_hi, eps_sq)
    }

    #[test]
    fn accepts_and_rejects_like_the_sequential_test() {
        // Boxes of side 0.1 at increasing offsets; span near the origin.
        let boxes: Vec<([f64; 2], [f64; 2])> =
            (0..6).map(|i| ([i as f64 * 0.5, 0.0], [i as f64 * 0.5 + 0.1, 0.1])).collect();
        let mask = mask_on(KernelPath::Scalar, &boxes, [0.05, 0.02], [0.12, 0.08], 0.3f64.powi(2));
        // Only the box at offset 0 can absorb the span within diagonal 0.3.
        assert_eq!(mask, 0b000001);
    }

    #[test]
    fn empty_window_yields_empty_mask() {
        let mask = mask_on::<2>(KernelPath::Scalar, &[], [0.0; 2], [0.1; 2], 1.0);
        assert_eq!(mask, 0);
    }

    #[test]
    fn boundary_fit_is_inclusive() {
        // Growing the box to the span gives sides exactly (0.3, 0.4):
        // diagonal² = 0.25, accepted at eps² = 0.25 (closed bound).
        let boxes = [([0.0, 0.0], [0.1, 0.1])];
        let eps_sq = 0.3f64 * 0.3 + 0.4f64 * 0.4;
        assert_eq!(mask_on(KernelPath::Scalar, &boxes, [0.3, 0.4], [0.3, 0.4], eps_sq), 1);
        assert_eq!(
            mask_on(
                KernelPath::Scalar,
                &boxes,
                [0.3, 0.4],
                [0.3, 0.4],
                f64::from_bits(eps_sq.to_bits() - 1)
            ),
            0
        );
    }

    #[test]
    fn native_path_matches_scalar_on_random_windows() {
        // LCG-driven randomized agreement check across sizes that cover
        // whole vectors, tails, and the empty window.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 11, 16, 33, 64] {
            let boxes: Vec<([f64; 3], [f64; 3])> = (0..n)
                .map(|_| {
                    let lo = [next(), next(), next()];
                    (lo, [lo[0] + next() * 0.2, lo[1] + next() * 0.2, lo[2] + next() * 0.2])
                })
                .collect();
            let sl = [next(), next(), next()];
            let sh = [sl[0] + next() * 0.1, sl[1] + next() * 0.1, sl[2] + next() * 0.1];
            for eps_sq in [0.0, 0.05, 0.25, 1.0, f64::INFINITY] {
                let want = mask_on(KernelPath::Scalar, &boxes, sl, sh, eps_sq);
                let got = mask_on(KernelPath::native(), &boxes, sl, sh, eps_sq);
                assert_eq!(got, want, "path divergence at n={n}, eps_sq={eps_sq}");
            }
        }
    }

    #[test]
    fn nan_box_bounds_resolve_to_the_span() {
        // A NaN box bound must behave like f64::min/max: the span wins,
        // so the box degenerates to the span itself — which fits.
        let boxes = [([f64::NAN, 0.0], [f64::NAN, 0.1])];
        let want = mask_on(KernelPath::Scalar, &boxes, [0.2, 0.0], [0.25, 0.1], 0.25);
        assert_eq!(want, 1);
        assert_eq!(mask_on(KernelPath::native(), &boxes, [0.2, 0.0], [0.25, 0.1], 0.25), want);
    }

    #[test]
    fn infinite_bounds_reject_on_every_path() {
        let boxes = [([f64::NEG_INFINITY, 0.0], [0.1, 0.1]), ([0.0, 0.0], [0.1, 0.1])];
        let want = mask_on(KernelPath::Scalar, &boxes, [0.0, 0.0], [0.1, 0.1], 1.0);
        assert_eq!(want, 0b10);
        assert_eq!(mask_on(KernelPath::native(), &boxes, [0.0, 0.0], [0.1, 0.1], 1.0), want);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// The sequential ring walk `select_newest_first` compresses into
    /// integer arithmetic: newest slot first (`head-1 .. 0`), then the
    /// wrapped tail (`n-1 .. head`), counting attempts until the first
    /// hit.
    fn walk_reference(mask: u64, head: usize, n: usize) -> (Option<usize>, u64) {
        let mut tried = 0u64;
        for i in (0..head).rev().chain((head..n).rev()) {
            tried += 1;
            if mask & (1 << i) != 0 {
                return (Some(i), tried);
            }
        }
        (None, n as u64)
    }

    fn arb_boxes() -> impl Strategy<Value = Vec<([f64; 2], [f64; 2])>> {
        prop::collection::vec(
            (prop::array::uniform2(-1.0f64..1.0), prop::array::uniform2(0.0f64..0.5))
                .prop_map(|(lo, ext)| (lo, [lo[0] + ext[0], lo[1] + ext[1]])),
            0..=(MAX_WINDOW),
        )
    }

    proptest! {
        /// `mbr_fit_mask` is bit-identical across dispatch paths on
        /// arbitrary windows (native clamps to scalar off-SIMD hosts,
        /// where this degenerates to a self-check).
        #[test]
        fn mask_native_matches_scalar(
            boxes in arb_boxes(),
            sl in prop::array::uniform2(-1.0f64..1.0),
            ext in prop::array::uniform2(0.0f64..0.3),
            eps in 0.0f64..1.5,
        ) {
            let sh = [sl[0] + ext[0], sl[1] + ext[1]];
            let (lo, hi) = super::tests::slabs(&boxes);
            let lo_refs: [&[f64]; 2] = [lo[0].as_slice(), lo[1].as_slice()];
            let hi_refs: [&[f64]; 2] = [hi[0].as_slice(), hi[1].as_slice()];
            let want = mbr_fit_mask(KernelPath::Scalar, &lo_refs, &hi_refs, &sl, &sh, eps * eps);
            let got = mbr_fit_mask(KernelPath::native(), &lo_refs, &hi_refs, &sl, &sh, eps * eps);
            prop_assert_eq!(got, want);
        }

        /// `select_newest_first` agrees with the sequential ring walk on
        /// every (mask, head, n): same accepted slot, same attempt count.
        #[test]
        fn selection_matches_the_ring_walk(
            bits in any::<u64>(),
            n in 0usize..=MAX_WINDOW,
            head_seed in any::<usize>(),
        ) {
            let mask = if n == 64 { bits } else { bits & ((1u64 << n) - 1) };
            let head = head_seed % n.max(1);
            prop_assert_eq!(select_newest_first(mask, head, n), walk_reference(mask, head, n));
        }

        /// The fused pick equals mask-then-select on every path, with
        /// slabs padded to a whole number of 4-lane vectors by `+∞`
        /// sentinels — the production layout. The padded lanes must
        /// never influence the result while `eps²` is finite.
        #[test]
        fn fused_pick_matches_mask_then_select(
            boxes in arb_boxes(),
            sl in prop::array::uniform2(-1.0f64..1.0),
            ext in prop::array::uniform2(0.0f64..0.3),
            eps in 0.0f64..1.5,
            head_seed in any::<usize>(),
        ) {
            let sh = [sl[0] + ext[0], sl[1] + ext[1]];
            let n_live = boxes.len();
            let head = head_seed % n_live.max(1);
            let eps_sq = eps * eps;

            // Unpadded reference: mask over the live lanes, then select.
            let (lo, hi) = super::tests::slabs(&boxes);
            let lo_refs: [&[f64]; 2] = [lo[0].as_slice(), lo[1].as_slice()];
            let hi_refs: [&[f64]; 2] = [hi[0].as_slice(), hi[1].as_slice()];
            let mask = mbr_fit_mask(KernelPath::Scalar, &lo_refs, &hi_refs, &sl, &sh, eps_sq);
            let want = select_newest_first(mask, head, n_live);

            // Padded production layout.
            let padded = (n_live + 3) & !3;
            let (mut plo, mut phi) = (lo, hi);
            for d in 0..2 {
                plo[d].resize(padded, f64::INFINITY);
                phi[d].resize(padded, f64::INFINITY);
            }
            let plo_refs: [&[f64]; 2] = [plo[0].as_slice(), plo[1].as_slice()];
            let phi_refs: [&[f64]; 2] = [phi[0].as_slice(), phi[1].as_slice()];
            for path in [KernelPath::Scalar, KernelPath::native()] {
                let got =
                    mbr_fit_pick(path, &plo_refs, &phi_refs, &sl, &sh, eps_sq, head, n_live);
                prop_assert_eq!(got, want, "path {}", path.name());
            }
        }
    }
}
