//! Geometry substrate for compact similarity joins.
//!
//! This crate provides the geometric vocabulary the paper's algorithms are
//! written in:
//!
//! * [`Point`] — a `D`-dimensional point with arithmetic helpers.
//! * [`Mbr`] — minimum bounding hyper-rectangles with the MINDIST / MAXDIST
//!   bounds used for tree pruning, and metric-aware diameters used for the
//!   group-shape constraint of §V-A.
//! * [`Metric`] — the `Lp` metrics the joins can run under.
//! * [`Sphere`] — bounding balls (the M-tree's covering shape, and the
//!   alternative group shape discussed in §V-A).
//!
//! Everything is generic over the compile-time dimension `D`, is plain data
//! (`Copy` where possible), and performs no allocation in the hot paths.

#![warn(missing_docs)]
// The SIMD kernels are the workspace's only `unsafe`; keep every unsafe
// operation inside an explicit `unsafe {}` block (each carries a
// `// SAFETY:` justification enforced by csj-lint's unsafe-discipline).
#![warn(unsafe_op_in_unsafe_fn)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod aabb;
pub mod diameter;
pub mod kernel;
pub mod metric;
pub mod point;
pub mod probe;
pub mod soa;
pub mod sphere;

pub use aabb::Mbr;
pub use kernel::{DistKernel, KernelPath};
pub use metric::Metric;
pub use point::Point;
pub use soa::{SoaBuffer, SoaView};
pub use sphere::Sphere;

/// Identifier of a data record (point) in a dataset.
///
/// The join algorithms report links and groups in terms of these ids; the
/// coordinates live in the dataset / tree leaves.
pub type RecordId = u32;
