//! Minimum bounding hyper-rectangles (MBRs).
//!
//! MBRs are the bounding shape of R-tree / R*-tree nodes and — per §V-A of
//! the paper — the shape used to represent output groups: membership
//! checks, insertions and boundary updates are all `O(D)`, which keeps the
//! compact join no slower than the standard join even under output
//! explosion.

use crate::{Metric, Point};

/// An axis-aligned minimum bounding hyper-rectangle in `D` dimensions.
///
/// Invariant: `lo[i] <= hi[i]` for every axis `i` (enforced by all
/// constructors; `debug_assert`ed). A degenerate rectangle (a single point)
/// is valid and is how leaf entries are boxed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mbr<const D: usize> {
    /// Lower corner (componentwise minimum).
    pub lo: Point<D>,
    /// Upper corner (componentwise maximum).
    pub hi: Point<D>,
}

impl<const D: usize> Mbr<D> {
    /// Creates an MBR from an already-ordered pair of corners.
    ///
    /// Debug-asserts `lo <= hi` on every axis; use [`Mbr::from_corners`]
    /// when the ordering is not known.
    #[inline]
    pub fn new(lo: Point<D>, hi: Point<D>) -> Self {
        debug_assert!((0..D).all(|i| lo[i] <= hi[i]), "Mbr corners out of order");
        Mbr { lo, hi }
    }

    /// Creates an MBR from two arbitrary corners, ordering each axis.
    #[inline]
    pub fn from_corners(a: &Point<D>, b: &Point<D>) -> Self {
        Mbr { lo: a.min(b), hi: a.max(b) }
    }

    /// The degenerate MBR covering a single point.
    #[inline]
    pub fn from_point(p: &Point<D>) -> Self {
        Mbr { lo: *p, hi: *p }
    }

    /// The minimum bounding rectangle of a non-empty point slice.
    ///
    /// Returns `None` for an empty slice.
    pub fn from_points(points: &[Point<D>]) -> Option<Self> {
        let (first, rest) = points.split_first()?;
        let mut mbr = Self::from_point(first);
        for p in rest {
            mbr.expand_to_point(p);
        }
        Some(mbr)
    }

    /// An "empty" MBR that acts as the identity for [`Mbr::union`]: any
    /// expansion replaces it. `contains`/`intersects` are always false.
    #[inline]
    pub fn empty() -> Self {
        Mbr { lo: Point::new([f64::INFINITY; D]), hi: Point::new([f64::NEG_INFINITY; D]) }
    }

    /// `true` if this is the identity element produced by [`Mbr::empty`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..D).any(|i| self.lo[i] > self.hi[i])
    }

    /// Grows the MBR (in place) to cover `p`.
    #[inline]
    pub fn expand_to_point(&mut self, p: &Point<D>) {
        self.lo = self.lo.min(p);
        self.hi = self.hi.max(p);
    }

    /// Grows the MBR (in place) to cover `other`.
    #[inline]
    pub fn expand_to_mbr(&mut self, other: &Mbr<D>) {
        self.lo = self.lo.min(&other.lo);
        self.hi = self.hi.max(&other.hi);
    }

    /// The union (smallest common bounding rectangle) of two MBRs.
    #[inline]
    pub fn union(&self, other: &Mbr<D>) -> Self {
        Mbr { lo: self.lo.min(&other.lo), hi: self.hi.max(&other.hi) }
    }

    /// The intersection of two MBRs, or `None` if they are disjoint.
    pub fn intersection(&self, other: &Mbr<D>) -> Option<Self> {
        let lo = self.lo.max(&other.lo);
        let hi = self.hi.min(&other.hi);
        if (0..D).all(|i| lo[i] <= hi[i]) {
            Some(Mbr { lo, hi })
        } else {
            None
        }
    }

    /// `true` if `p` lies inside (boundary inclusive).
    #[inline]
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        (0..D).all(|i| self.lo[i] <= p[i] && p[i] <= self.hi[i])
    }

    /// `true` if `other` lies entirely inside `self` (boundary inclusive).
    ///
    /// This is the *inclusion property* the paper identifies (§VII) as the
    /// only essential index requirement: parent MBRs include child MBRs.
    #[inline]
    pub fn contains_mbr(&self, other: &Mbr<D>) -> bool {
        (0..D).all(|i| self.lo[i] <= other.lo[i] && other.hi[i] <= self.hi[i])
    }

    /// `true` if the rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Mbr<D>) -> bool {
        (0..D).all(|i| self.lo[i] <= other.hi[i] && other.lo[i] <= self.hi[i])
    }

    /// Side length on axis `i`.
    #[inline]
    pub fn extent(&self, i: usize) -> f64 {
        self.hi[i] - self.lo[i]
    }

    /// All `D` side lengths.
    // Indexed lockstep over `[f64; D]` pairs: clearer than zip chains
    // for these numeric kernels.
    #[allow(clippy::needless_range_loop)]
    #[inline]
    pub fn side_lengths(&self) -> [f64; D] {
        let mut s = [0.0; D];
        for i in 0..D {
            s[i] = self.hi[i] - self.lo[i];
        }
        s
    }

    /// `D`-dimensional volume (area in 2-D). Zero for degenerate rects.
    #[inline]
    pub fn volume(&self) -> f64 {
        let mut v = 1.0;
        for i in 0..D {
            v *= self.extent(i);
        }
        v
    }

    /// Half-perimeter generalisation: the sum of the side lengths. The
    /// R*-tree split heuristic minimises this *margin*.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.side_lengths().iter().sum()
    }

    /// Volume of the overlap with `other` (zero if disjoint). Used by the
    /// R*-tree ChooseSubtree heuristic.
    #[inline]
    pub fn overlap_volume(&self, other: &Mbr<D>) -> f64 {
        let mut v = 1.0;
        for i in 0..D {
            let lo = self.lo[i].max(other.lo[i]);
            let hi = self.hi[i].min(other.hi[i]);
            if lo >= hi {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// How much volume the MBR would gain if grown to cover `other`.
    #[inline]
    pub fn enlargement(&self, other: &Mbr<D>) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// Center point of the rectangle.
    #[inline]
    pub fn center(&self) -> Point<D> {
        self.lo.midpoint(&self.hi)
    }

    /// Diameter (largest point-to-point distance within the rect) under
    /// `metric`. Convenience wrapper over [`Metric::mbr_diameter`].
    #[inline]
    pub fn diameter(&self, metric: Metric) -> f64 {
        metric.mbr_diameter(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbr2(lo: [f64; 2], hi: [f64; 2]) -> Mbr<2> {
        Mbr::new(Point::new(lo), Point::new(hi))
    }

    #[test]
    fn from_corners_orders_axes() {
        let m = Mbr::from_corners(&Point::new([3.0, 0.0]), &Point::new([1.0, 2.0]));
        assert_eq!(m.lo.coords(), [1.0, 0.0]);
        assert_eq!(m.hi.coords(), [3.0, 2.0]);
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [Point::new([0.0, 5.0]), Point::new([2.0, 1.0]), Point::new([-1.0, 3.0])];
        let m = Mbr::from_points(&pts).unwrap();
        assert_eq!(m.lo.coords(), [-1.0, 1.0]);
        assert_eq!(m.hi.coords(), [2.0, 5.0]);
        for p in &pts {
            assert!(m.contains_point(p));
        }
        assert!(Mbr::<2>::from_points(&[]).is_none());
    }

    #[test]
    fn empty_is_union_identity() {
        let e = Mbr::<2>::empty();
        assert!(e.is_empty());
        let m = mbr2([0.0, 0.0], [1.0, 1.0]);
        assert_eq!(e.union(&m), m);
        assert_eq!(m.union(&e), m);
        assert!(!e.contains_point(&Point::new([0.0, 0.0])));
        assert!(!e.intersects(&m));
    }

    #[test]
    fn expand_in_place() {
        let mut m = Mbr::from_point(&Point::new([1.0, 1.0]));
        m.expand_to_point(&Point::new([0.0, 2.0]));
        assert_eq!(m, mbr2([0.0, 1.0], [1.0, 2.0]));
        m.expand_to_mbr(&mbr2([3.0, 3.0], [4.0, 4.0]));
        assert_eq!(m, mbr2([0.0, 1.0], [4.0, 4.0]));
    }

    #[test]
    fn intersection_cases() {
        let a = mbr2([0.0, 0.0], [2.0, 2.0]);
        let b = mbr2([1.0, 1.0], [3.0, 3.0]);
        assert_eq!(a.intersection(&b), Some(mbr2([1.0, 1.0], [2.0, 2.0])));
        let c = mbr2([5.0, 5.0], [6.0, 6.0]);
        assert_eq!(a.intersection(&c), None);
        // Touching edges intersect in a degenerate rect.
        let d = mbr2([2.0, 0.0], [3.0, 2.0]);
        assert_eq!(a.intersection(&d), Some(mbr2([2.0, 0.0], [2.0, 2.0])));
        assert!(a.intersects(&d));
    }

    #[test]
    fn containment() {
        let outer = mbr2([0.0, 0.0], [10.0, 10.0]);
        let inner = mbr2([2.0, 2.0], [3.0, 3.0]);
        assert!(outer.contains_mbr(&inner));
        assert!(!inner.contains_mbr(&outer));
        assert!(outer.contains_mbr(&outer), "containment is reflexive");
        assert!(outer.contains_point(&Point::new([10.0, 10.0])), "boundary inclusive");
        assert!(!outer.contains_point(&Point::new([10.0, 10.1])));
    }

    #[test]
    fn measures() {
        let m = mbr2([0.0, 0.0], [3.0, 4.0]);
        assert_eq!(m.volume(), 12.0);
        assert_eq!(m.margin(), 7.0);
        assert_eq!(m.extent(0), 3.0);
        assert_eq!(m.side_lengths(), [3.0, 4.0]);
        assert_eq!(m.center().coords(), [1.5, 2.0]);
        assert_eq!(m.diameter(Metric::Euclidean), 5.0);
        let point = Mbr::from_point(&Point::new([1.0, 1.0]));
        assert_eq!(point.volume(), 0.0);
        assert_eq!(point.diameter(Metric::Euclidean), 0.0);
    }

    #[test]
    fn overlap_and_enlargement() {
        let a = mbr2([0.0, 0.0], [2.0, 2.0]);
        let b = mbr2([1.0, 1.0], [3.0, 3.0]);
        assert_eq!(a.overlap_volume(&b), 1.0);
        let c = mbr2([5.0, 5.0], [6.0, 6.0]);
        assert_eq!(a.overlap_volume(&c), 0.0);
        // Union of a and c is [0,6]^2 = 36; a has volume 4.
        assert_eq!(a.enlargement(&c), 32.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_point() -> impl Strategy<Value = Point<2>> {
        prop::array::uniform2(-50.0f64..50.0).prop_map(Point::new)
    }

    fn arb_mbr() -> impl Strategy<Value = Mbr<2>> {
        (arb_point(), arb_point()).prop_map(|(a, b)| Mbr::from_corners(&a, &b))
    }

    proptest! {
        /// Union is commutative, associative-ish (up to fp), and contains
        /// both operands.
        #[test]
        fn union_laws(a in arb_mbr(), b in arb_mbr()) {
            let u = a.union(&b);
            prop_assert_eq!(u, b.union(&a));
            prop_assert!(u.contains_mbr(&a));
            prop_assert!(u.contains_mbr(&b));
            prop_assert_eq!(a.union(&a), a);
        }

        /// Intersection, when present, is contained in both operands and
        /// implies `intersects`.
        #[test]
        fn intersection_contained(a in arb_mbr(), b in arb_mbr()) {
            match a.intersection(&b) {
                Some(i) => {
                    prop_assert!(a.contains_mbr(&i));
                    prop_assert!(b.contains_mbr(&i));
                    prop_assert!(a.intersects(&b));
                }
                None => prop_assert!(!a.intersects(&b)),
            }
        }

        /// from_points produces the *minimum* bounding rect: shrinking any
        /// face by epsilon loses a point.
        #[test]
        fn from_points_is_minimal(pts in prop::collection::vec(arb_point(), 1..40)) {
            let m = Mbr::from_points(&pts).unwrap();
            for p in &pts {
                prop_assert!(m.contains_point(p));
            }
            for axis in 0..2 {
                prop_assert!(pts.iter().any(|p| (p[axis] - m.lo[axis]).abs() < 1e-12));
                prop_assert!(pts.iter().any(|p| (p[axis] - m.hi[axis]).abs() < 1e-12));
            }
        }

        /// Enlargement is non-negative and zero iff already contained.
        #[test]
        fn enlargement_nonnegative(a in arb_mbr(), b in arb_mbr()) {
            let e = a.enlargement(&b);
            prop_assert!(e >= -1e-9);
            if a.contains_mbr(&b) {
                prop_assert!(e.abs() < 1e-9);
            }
        }

        /// Volume of the union is at least the max of the volumes.
        #[test]
        fn union_volume_monotone(a in arb_mbr(), b in arb_mbr()) {
            let u = a.union(&b);
            prop_assert!(u.volume() >= a.volume().max(b.volume()) - 1e-9);
        }
    }
}
