//! `Lp` metrics and metric-aware bounds on rectangles.
//!
//! The paper's algorithms need three quantities from the metric (§IV):
//! point-to-point distance, a lower bound on the distance between two
//! bounding shapes (MINDIST, for pruning), and an upper bound on the
//! diameter of one or two bounding shapes (MAXDIST, for the early-stopping
//! group rule). All three are provided here for axis-aligned rectangles
//! under every supported metric.

use crate::{Mbr, Point};

/// An `Lp` metric on `R^D`.
///
/// `Euclidean` is the paper's default. The compact-join machinery is metric
/// generic: the group constraint "maximal diameter of the bounding shape
/// `< ε`" is evaluated under the active metric, so groups remain provably
/// correct for any choice here.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum Metric {
    /// `L2`: straight-line distance. MBR diameter is the main diagonal.
    #[default]
    Euclidean,
    /// `L1` (Manhattan): sum of absolute coordinate differences. MBR
    /// diameter is the sum of the side lengths.
    Manhattan,
    /// `L∞` (Chebyshev): maximum absolute coordinate difference. MBR
    /// diameter is the longest side.
    Chebyshev,
    /// General `Lp` for finite `p ≥ 1`.
    Minkowski(f64),
}

impl Metric {
    /// Distance between two points under this metric.
    #[inline]
    pub fn distance<const D: usize>(&self, a: &Point<D>, b: &Point<D>) -> f64 {
        match self {
            Metric::Euclidean => a.euclidean(b),
            Metric::Manhattan => {
                let mut acc = 0.0;
                for i in 0..D {
                    acc += (a[i] - b[i]).abs();
                }
                acc
            }
            Metric::Chebyshev => {
                let mut acc: f64 = 0.0;
                for i in 0..D {
                    acc = acc.max((a[i] - b[i]).abs());
                }
                acc
            }
            Metric::Minkowski(p) => {
                let mut acc = 0.0;
                for i in 0..D {
                    acc += (a[i] - b[i]).abs().powf(*p);
                }
                acc.powf(1.0 / p)
            }
        }
    }

    /// `true` if `distance(a, b) <= eps`.
    ///
    /// Fast path for the Euclidean metric (compares squared distances,
    /// skipping the square root); the predicate the join inner loops use.
    #[inline]
    pub fn within<const D: usize>(&self, a: &Point<D>, b: &Point<D>, eps: f64) -> bool {
        match self {
            Metric::Euclidean => a.sq_euclidean(b) <= eps * eps,
            _ => self.distance(a, b) <= eps,
        }
    }

    /// `true` if `distance(a, b) <= eps`, taking the *squared* threshold
    /// `eps_sq == eps * eps`.
    ///
    /// The hot-loop form of [`Metric::within`]: the caller squares ε once
    /// and every comparison is sqrt-free with per-dimension early exit.
    /// Exactness (incl. boundary equality `distance == eps`) relies on two
    /// IEEE-754 facts: correctly-rounded `sqrt` is monotone, and
    /// `sqrt(fl(x·x)) == x` for every finite non-negative `x`, so
    /// `dist_sq <= fl(ε²)` ⇔ `fl(sqrt(dist_sq)) <= ε` and the original ε
    /// is recoverable from `eps_sq` without error.
    #[inline]
    pub fn sq_dist_within<const D: usize>(&self, a: &Point<D>, b: &Point<D>, eps_sq: f64) -> bool {
        match self {
            Metric::Euclidean => {
                let mut acc = 0.0;
                for i in 0..D {
                    let d = a[i] - b[i];
                    acc += d * d;
                    if acc > eps_sq {
                        return false;
                    }
                }
                true
            }
            Metric::Manhattan => {
                let eps = eps_sq.sqrt();
                let mut acc = 0.0;
                for i in 0..D {
                    acc += (a[i] - b[i]).abs();
                    if acc > eps {
                        return false;
                    }
                }
                true
            }
            Metric::Chebyshev => {
                let eps = eps_sq.sqrt();
                for i in 0..D {
                    if (a[i] - b[i]).abs() > eps {
                        return false;
                    }
                }
                true
            }
            // `powf` has no exactness guarantees to exploit; recover ε (the
            // sqrt of a square is exact) and use the reference predicate.
            Metric::Minkowski(_) => self.distance(a, b) <= eps_sq.sqrt(),
        }
    }

    /// `true` if the `p`-norm of `deltas` is `<= eps`, without the square
    /// root for the Euclidean metric (same exactness argument as
    /// [`Metric::sq_dist_within`]).
    #[inline]
    pub fn norm_within<const D: usize>(&self, deltas: [f64; D], eps: f64) -> bool {
        match self {
            Metric::Euclidean => {
                let mut acc = 0.0;
                for d in deltas {
                    acc += d * d;
                }
                acc <= eps * eps
            }
            _ => self.norm(deltas) <= eps,
        }
    }

    /// `true` if the rectangle's diameter is `<= eps` — the group-shape
    /// constraint of §V-A, evaluated sqrt-free where the metric allows.
    /// Exactly equivalent to `self.mbr_diameter(mbr) <= eps`.
    #[inline]
    pub fn mbr_diameter_within<const D: usize>(&self, mbr: &Mbr<D>, eps: f64) -> bool {
        self.norm_within(mbr.side_lengths(), eps)
    }

    /// Combines per-axis non-negative deltas into a distance (the `p`-norm
    /// of the delta vector).
    #[inline]
    pub(crate) fn norm<const D: usize>(&self, deltas: [f64; D]) -> f64 {
        match self {
            Metric::Euclidean => {
                let mut acc = 0.0;
                for d in deltas {
                    acc += d * d;
                }
                acc.sqrt()
            }
            Metric::Manhattan => deltas.iter().sum(),
            Metric::Chebyshev => deltas.iter().fold(0.0_f64, |m, &d| m.max(d)),
            Metric::Minkowski(p) => {
                let mut acc = 0.0;
                for d in deltas {
                    acc += d.powf(*p);
                }
                acc.powf(1.0 / p)
            }
        }
    }

    /// Diameter of a rectangle: the largest distance between any two of its
    /// points, which for every `Lp` metric is attained at opposite corners
    /// and equals the `p`-norm of the side-length vector.
    #[inline]
    pub fn mbr_diameter<const D: usize>(&self, mbr: &Mbr<D>) -> f64 {
        self.norm(mbr.side_lengths())
    }

    /// MINDIST: a tight lower bound on the distance between any point of
    /// `a` and any point of `b`. Zero when the rectangles intersect.
    #[inline]
    // Indexed lockstep over `[f64; D]` pairs: clearer than zip chains
    // for these numeric kernels.
    #[allow(clippy::needless_range_loop)]
    pub fn min_dist_mbr<const D: usize>(&self, a: &Mbr<D>, b: &Mbr<D>) -> f64 {
        let mut gaps = [0.0; D];
        for i in 0..D {
            let g = (b.lo[i] - a.hi[i]).max(a.lo[i] - b.hi[i]).max(0.0);
            gaps[i] = g;
        }
        self.norm(gaps)
    }

    /// MAXDIST: a tight upper bound on the distance between any point of
    /// `a` and any point of `b` — equivalently, the diameter of the pair of
    /// rectangles treated as one shape. Attained at corners.
    #[inline]
    // Indexed lockstep over `[f64; D]` pairs: clearer than zip chains
    // for these numeric kernels.
    #[allow(clippy::needless_range_loop)]
    pub fn max_dist_mbr<const D: usize>(&self, a: &Mbr<D>, b: &Mbr<D>) -> f64 {
        let mut spans = [0.0; D];
        for i in 0..D {
            spans[i] = (a.hi[i].max(b.hi[i])) - (a.lo[i].min(b.lo[i]));
        }
        self.norm(spans)
    }

    /// MINDIST from a point to a rectangle (zero if the point is inside).
    #[inline]
    pub fn min_dist_point_mbr<const D: usize>(&self, p: &Point<D>, r: &Mbr<D>) -> f64 {
        let mut gaps = [0.0; D];
        for i in 0..D {
            gaps[i] = (r.lo[i] - p[i]).max(p[i] - r.hi[i]).max(0.0);
        }
        self.norm(gaps)
    }

    /// MAXDIST from a point to a rectangle (distance to the farthest corner).
    #[inline]
    pub fn max_dist_point_mbr<const D: usize>(&self, p: &Point<D>, r: &Mbr<D>) -> f64 {
        let mut spans = [0.0; D];
        for i in 0..D {
            spans[i] = (p[i] - r.lo[i]).abs().max((p[i] - r.hi[i]).abs());
        }
        self.norm(spans)
    }

    /// Short human-readable name, used in experiment output.
    pub fn name(&self) -> String {
        match self {
            Metric::Euclidean => "L2".to_string(),
            Metric::Manhattan => "L1".to_string(),
            Metric::Chebyshev => "Linf".to_string(),
            Metric::Minkowski(p) => format!("L{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbr2(lo: [f64; 2], hi: [f64; 2]) -> Mbr<2> {
        Mbr::new(Point::new(lo), Point::new(hi))
    }

    #[test]
    fn point_distances_agree_on_axis() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([3.0, 0.0]);
        for m in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev, Metric::Minkowski(3.0)] {
            assert!((m.distance(&a, &b) - 3.0).abs() < 1e-12, "{m:?}");
        }
    }

    #[test]
    fn point_distances_differ_off_axis() {
        let a = Point::new([0.0, 0.0]);
        let b = Point::new([3.0, 4.0]);
        assert_eq!(Metric::Euclidean.distance(&a, &b), 5.0);
        assert_eq!(Metric::Manhattan.distance(&a, &b), 7.0);
        assert_eq!(Metric::Chebyshev.distance(&a, &b), 4.0);
        let p3 = Metric::Minkowski(3.0).distance(&a, &b);
        assert!(p3 > 4.0 && p3 < 5.0, "L3 between Linf and L2: {p3}");
    }

    #[test]
    fn minkowski_2_matches_euclidean() {
        let a = Point::new([1.0, -2.0, 0.5]);
        let b = Point::new([-0.5, 3.0, 2.0]);
        let d2 = Metric::Euclidean.distance(&a, &b);
        let dm = Metric::Minkowski(2.0).distance(&a, &b);
        assert!((d2 - dm).abs() < 1e-12);
    }

    #[test]
    fn mbr_diameter_per_metric() {
        let r = mbr2([0.0, 0.0], [3.0, 4.0]);
        assert_eq!(Metric::Euclidean.mbr_diameter(&r), 5.0);
        assert_eq!(Metric::Manhattan.mbr_diameter(&r), 7.0);
        assert_eq!(Metric::Chebyshev.mbr_diameter(&r), 4.0);
    }

    #[test]
    fn min_dist_disjoint_rects() {
        // Rects separated by 1.0 horizontally, aligned vertically.
        let a = mbr2([0.0, 0.0], [1.0, 1.0]);
        let b = mbr2([2.0, 0.0], [3.0, 1.0]);
        assert_eq!(Metric::Euclidean.min_dist_mbr(&a, &b), 1.0);
        assert_eq!(Metric::Euclidean.min_dist_mbr(&b, &a), 1.0);
        // Diagonal separation: gaps (1, 2).
        let c = mbr2([2.0, 3.0], [4.0, 5.0]);
        let d = Metric::Euclidean.min_dist_mbr(&a, &c);
        assert!((d - (1.0f64 + 4.0).sqrt()).abs() < 1e-12);
        assert_eq!(Metric::Manhattan.min_dist_mbr(&a, &c), 3.0);
        assert_eq!(Metric::Chebyshev.min_dist_mbr(&a, &c), 2.0);
    }

    #[test]
    fn min_dist_overlapping_is_zero() {
        let a = mbr2([0.0, 0.0], [2.0, 2.0]);
        let b = mbr2([1.0, 1.0], [3.0, 3.0]);
        for m in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
            assert_eq!(m.min_dist_mbr(&a, &b), 0.0);
        }
    }

    #[test]
    fn max_dist_covers_pair_span() {
        let a = mbr2([0.0, 0.0], [1.0, 1.0]);
        let b = mbr2([2.0, 0.0], [3.0, 1.0]);
        // Combined span: 3 x 1.
        assert!((Metric::Euclidean.max_dist_mbr(&a, &b) - (9.0f64 + 1.0).sqrt()).abs() < 1e-12);
        assert_eq!(Metric::Manhattan.max_dist_mbr(&a, &b), 4.0);
        assert_eq!(Metric::Chebyshev.max_dist_mbr(&a, &b), 3.0);
    }

    #[test]
    fn point_mbr_bounds() {
        let r = mbr2([1.0, 1.0], [2.0, 2.0]);
        let inside = Point::new([1.5, 1.5]);
        assert_eq!(Metric::Euclidean.min_dist_point_mbr(&inside, &r), 0.0);
        let outside = Point::new([0.0, 1.0]);
        assert_eq!(Metric::Euclidean.min_dist_point_mbr(&outside, &r), 1.0);
        // Farthest corner from (0,1) is (2,2): distance sqrt(4+1).
        assert!((Metric::Euclidean.max_dist_point_mbr(&outside, &r) - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn names() {
        assert_eq!(Metric::Euclidean.name(), "L2");
        assert_eq!(Metric::Manhattan.name(), "L1");
        assert_eq!(Metric::Chebyshev.name(), "Linf");
        assert_eq!(Metric::Minkowski(3.0).name(), "L3");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_point() -> impl Strategy<Value = Point<3>> {
        prop::array::uniform3(-100.0f64..100.0).prop_map(Point::new)
    }

    fn arb_mbr() -> impl Strategy<Value = Mbr<3>> {
        (arb_point(), arb_point()).prop_map(|(a, b)| Mbr::from_corners(&a, &b))
    }

    fn metrics() -> impl Strategy<Value = Metric> {
        prop_oneof![
            Just(Metric::Euclidean),
            Just(Metric::Manhattan),
            Just(Metric::Chebyshev),
            (1.0f64..6.0).prop_map(Metric::Minkowski),
        ]
    }

    proptest! {
        /// Metric axioms: symmetry, identity, triangle inequality.
        #[test]
        fn metric_axioms(m in metrics(), a in arb_point(), b in arb_point(), c in arb_point()) {
            let ab = m.distance(&a, &b);
            let ba = m.distance(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-9);
            prop_assert!(m.distance(&a, &a) < 1e-12);
            let ac = m.distance(&a, &c);
            let cb = m.distance(&c, &b);
            prop_assert!(ab <= ac + cb + 1e-9);
        }

        /// MINDIST lower-bounds and MAXDIST upper-bounds the true distance
        /// between contained points.
        #[test]
        fn mindist_maxdist_bound_contained_points(
            m in metrics(),
            ra in arb_mbr(), rb in arb_mbr(),
            ta in prop::array::uniform3(0.0f64..1.0),
            tb in prop::array::uniform3(0.0f64..1.0),
        ) {
            // A point inside each rect, via per-axis interpolation.
            let mut pa = [0.0; 3];
            let mut pb = [0.0; 3];
            for i in 0..3 {
                pa[i] = ra.lo[i] + ta[i] * (ra.hi[i] - ra.lo[i]);
                pb[i] = rb.lo[i] + tb[i] * (rb.hi[i] - rb.lo[i]);
            }
            let (pa, pb) = (Point::new(pa), Point::new(pb));
            let d = m.distance(&pa, &pb);
            prop_assert!(m.min_dist_mbr(&ra, &rb) <= d + 1e-9);
            prop_assert!(m.max_dist_mbr(&ra, &rb) >= d - 1e-9);
        }

        /// The diameter of one rect equals MAXDIST of the rect with itself.
        #[test]
        fn diameter_is_self_maxdist(m in metrics(), r in arb_mbr()) {
            let d = m.mbr_diameter(&r);
            let sm = m.max_dist_mbr(&r, &r);
            prop_assert!((d - sm).abs() < 1e-9);
        }

        /// Point-in-rect implies zero MINDIST to the rect.
        #[test]
        fn inside_point_zero_mindist(m in metrics(), r in arb_mbr(), t in prop::array::uniform3(0.0f64..1.0)) {
            let mut p = [0.0; 3];
            for i in 0..3 {
                p[i] = r.lo[i] + t[i] * (r.hi[i] - r.lo[i]);
            }
            prop_assert!(m.min_dist_point_mbr(&Point::new(p), &r) < 1e-9);
        }

        /// The sqrt-free squared-threshold predicate agrees *exactly* with
        /// the existing predicates — both the hot-path `within` and the
        /// documented `distance(..) <= eps` contract. No epsilon slop.
        #[test]
        fn sq_dist_within_matches_distance(
            m in metrics(),
            a in arb_point(),
            b in arb_point(),
            eps in 0.0f64..400.0,
        ) {
            let got = m.sq_dist_within(&a, &b, eps * eps);
            prop_assert_eq!(got, m.within(&a, &b, eps));
            prop_assert_eq!(got, m.distance(&a, &b) <= eps);
        }

        /// Boundary equality: an axis-aligned pair sits at distance exactly
        /// `d` under L2/L1/L∞ (single-axis norms are computed without
        /// rounding), and the squared-threshold predicate must accept at
        /// exactly `d` and reject just below. Minkowski is excluded here:
        /// its `powf` norm is not exact even on one axis, so it routes
        /// through the reference predicate (covered by the test above).
        #[test]
        fn sq_dist_within_boundary_equality(
            which in 0usize..3,
            a in arb_point(),
            d in 1e-6f64..100.0,
            axis in 0usize..3,
        ) {
            let m = [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev][which];
            let mut bc = a.coords();
            bc[axis] += d;
            let b = Point::new(bc);
            // The realized axis gap (the addition above may round).
            let gap = b[axis] - a[axis];
            prop_assert_eq!(m.distance(&a, &b), gap, "axis-aligned distance is the gap");
            prop_assert!(m.sq_dist_within(&a, &b, gap * gap), "must accept at the boundary");
            prop_assert!(m.within(&a, &b, gap), "reference accepts at the boundary too");
            let below = gap * (1.0 - 1e-14);
            prop_assert!(!m.sq_dist_within(&a, &b, below * below), "must reject below");
        }

        /// The sqrt-free diameter check agrees exactly with the reference
        /// `mbr_diameter(..) <= eps` on random thresholds, and accepts a
        /// single-axis rectangle at exactly its own diameter (the one case
        /// where the Euclidean diameter is itself exact).
        #[test]
        fn mbr_diameter_within_matches(
            m in metrics(),
            r in arb_mbr(),
            eps in 0.0f64..400.0,
            side in 1e-6f64..100.0,
        ) {
            let want = m.mbr_diameter(&r) <= eps;
            prop_assert_eq!(m.mbr_diameter_within(&r, eps), want);
            // Minkowski's powf norm is inexact even on a single axis, so
            // the exact-boundary claim only holds for the closed-form
            // metrics.
            if !matches!(m, Metric::Minkowski(_)) {
                let flat = Mbr::from_corners(
                    &Point::new([1.0, 2.0, 3.0]),
                    &Point::new([1.0 + side, 2.0, 3.0]),
                );
                let exact = flat.side_lengths()[0];
                prop_assert_eq!(m.mbr_diameter(&flat), exact);
                prop_assert!(m.mbr_diameter_within(&flat, exact), "boundary equality");
            }
        }

        /// Multi-axis exact boundary: a 3-4-5 right triangle scaled by a
        /// power of two keeps every intermediate (sides, squares, their
        /// sum, the root) exactly representable, so the Euclidean
        /// diameter is exactly `5·s` and the sqrt-free predicate must
        /// flip precisely between `5·s` and the next float down.
        #[test]
        fn euclidean_boundary_equality_multi_axis(
            exp in -20i32..20,
            k in prop::array::uniform3(-8i32..8),
        ) {
            let s = (2.0f64).powi(exp);
            // Origin on the `s`-grid keeps every bound, side, square and
            // sum exactly representable (small integers times 4^exp).
            let origin = Point::new([k[0] as f64 * s, k[1] as f64 * s, k[2] as f64 * s]);
            let r = Mbr::from_corners(
                &origin,
                &Point::new([origin[0] + 3.0 * s, origin[1] + 4.0 * s, origin[2]]),
            );
            let diag = 5.0 * s;
            let m = Metric::Euclidean;
            prop_assert_eq!(m.mbr_diameter(&r), diag);
            prop_assert!(m.mbr_diameter_within(&r, diag), "accept at the exact diameter");
            let below = f64::from_bits(diag.to_bits() - 1);
            prop_assert!(!m.mbr_diameter_within(&r, below), "reject one ulp below");
        }

        /// The whole-window merge probe is the §V-A group constraint in
        /// disguise: for any box and link span, the probe's accept bit
        /// equals `mbr_diameter_within` of the merged rectangle — bit for
        /// bit, since both run the same min/max fold, separate square and
        /// accumulate, and closed compare against `ε²`.
        #[test]
        fn window_probe_agrees_with_diameter_predicate(
            box_lo in prop::array::uniform3(-1.0f64..1.0),
            box_ext in prop::array::uniform3(0.0f64..0.5),
            span_lo in prop::array::uniform3(-1.0f64..1.0),
            span_ext in prop::array::uniform3(0.0f64..0.5),
            eps in 0.0f64..2.0,
        ) {
            let box_hi: [f64; 3] = std::array::from_fn(|d| box_lo[d] + box_ext[d]);
            let span_hi: [f64; 3] = std::array::from_fn(|d| span_lo[d] + span_ext[d]);
            let lo_slabs: [Vec<f64>; 3] = std::array::from_fn(|d| vec![box_lo[d]]);
            let hi_slabs: [Vec<f64>; 3] = std::array::from_fn(|d| vec![box_hi[d]]);
            let lo_refs: [&[f64]; 3] = std::array::from_fn(|d| lo_slabs[d].as_slice());
            let hi_refs: [&[f64]; 3] = std::array::from_fn(|d| hi_slabs[d].as_slice());
            let mask = crate::probe::mbr_fit_mask(
                crate::KernelPath::Scalar,
                &lo_refs,
                &hi_refs,
                &span_lo,
                &span_hi,
                eps * eps,
            );
            let merged_lo: [f64; 3] = std::array::from_fn(|d| box_lo[d].min(span_lo[d]));
            let merged_hi: [f64; 3] = std::array::from_fn(|d| box_hi[d].max(span_hi[d]));
            let merged = Mbr::from_corners(&Point::new(merged_lo), &Point::new(merged_hi));
            prop_assert_eq!(
                mask == 1,
                Metric::Euclidean.mbr_diameter_within(&merged, eps)
            );
        }
    }
}
