//! Property test: at any shard count, under any single-fault schedule
//! within the retry budget, the sharded join's expanded link set equals
//! the sequential join's.

use csj_core::parallel::ParallelAlgo;
use csj_core::{Completion, ResilientJoin};
use csj_geom::Point;
use csj_index::{rstar::RStarTree, RTreeConfig};
use csj_shard::{canonical_link_lines, InProcessTransport, ShardFaultPlan, ShardJoin};
use proptest::prelude::*;

fn arb_points_2d(max: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 0..max)
        .prop_map(|v| v.into_iter().map(Point::new).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharded == sequential for random data, shard counts, algorithms
    /// and a random kill/garble fault within the retry budget.
    #[test]
    fn sharded_equals_sequential_under_faults(
        pts in arb_points_2d(80),
        eps in 0.0f64..0.3,
        shards in 1usize..6,
        algo_pick in 0u8..3,
        fault_pick in 0u8..3,
        fault_shard in 0u32..6,
    ) {
        let algo = match algo_pick {
            0 => ParallelAlgo::Ssj,
            1 => ParallelAlgo::Ncsj,
            _ => ParallelAlgo::Csj(6),
        };
        let want = if pts.is_empty() {
            String::new()
        } else {
            let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
            let out = ResilientJoin::new(eps, algo).run(&tree).expect("sequential");
            canonical_link_lines(&out)
        };
        // One fault on attempt 1 of a (possibly nonexistent) shard; the
        // budget of 3 attempts always absorbs it.
        let plan = match fault_pick {
            0 => ShardFaultPlan::none(),
            1 => ShardFaultPlan::none().kill(&[fault_shard], 1),
            _ => ShardFaultPlan::none().garble(&[fault_shard], 1),
        };
        let run = ShardJoin::new(eps, algo)
            .with_shards(shards)
            .with_max_attempts(3)
            .with_fault_plan(plan)
            .run(&pts, &InProcessTransport::new())
            .expect("within-budget run");
        prop_assert_eq!(run.output.completion, Completion::Complete);
        prop_assert_eq!(canonical_link_lines(&run.output), want);
    }
}
