//! End-to-end supervisor tests on the hermetic in-process transport:
//! the sharded join must match the sequential join bit-for-bit (in
//! canonical link form) at any shard count and under any fault schedule
//! the retry budget absorbs, and must degrade to `Completion::Partial`
//! — not an error — beyond it.

use std::time::Duration;

use csj_core::parallel::ParallelAlgo;
use csj_core::{Completion, JoinOutput, OutputItem, ResilientJoin, StopReason};
use csj_geom::Point;
use csj_index::{rstar::RStarTree, RTreeConfig};
use csj_shard::{canonical_link_lines, InProcessTransport, ShardFaultPlan, ShardJoin};

/// Deterministic scatter in the unit square (no RNG dependency).
fn scatter(n: usize, seed: u64) -> Vec<Point<2>> {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| Point::new([next(), next()])).collect()
}

fn sequential(pts: &[Point<2>], eps: f64, algo: ParallelAlgo) -> JoinOutput {
    if pts.is_empty() {
        return JoinOutput::default();
    }
    let tree = RStarTree::bulk_load_str(pts, RTreeConfig::with_max_fanout(8));
    ResilientJoin::new(eps, algo).run(&tree).expect("sequential join")
}

#[test]
fn sharded_matches_sequential_across_shard_counts_and_algos() {
    let transport = InProcessTransport::new();
    for (n, seed) in [(0usize, 1u64), (1, 2), (40, 3), (300, 4)] {
        let pts = scatter(n, seed);
        for algo in [ParallelAlgo::Ssj, ParallelAlgo::Ncsj, ParallelAlgo::Csj(8)] {
            let want = canonical_link_lines(&sequential(&pts, 0.07, algo));
            for shards in [1usize, 2, 3, 5, 9] {
                let run = ShardJoin::new(0.07, algo)
                    .with_shards(shards)
                    .run(&pts, &transport)
                    .expect("clean sharded run");
                assert_eq!(run.output.completion, Completion::Complete);
                assert_eq!(
                    canonical_link_lines(&run.output),
                    want,
                    "n={n} algo={algo:?} shards={shards}"
                );
            }
        }
    }
}

#[test]
fn boundary_links_are_emitted_exactly_once() {
    // Every cross-shard link (endpoints owned by different shards) must
    // appear exactly once across all merged rows — not once per replica
    // holding the boundary strip. (Interior pairs may legitimately be
    // implied by overlapping groups, exactly as in the sequential CSJ
    // output; the exactly-once guarantee is about the ε-strip dedup.)
    let pts = scatter(250, 7);
    let shards = 4;
    let run = ShardJoin::new(0.09, ParallelAlgo::Csj(6))
        .with_shards(shards)
        .run(&pts, &InProcessTransport::new())
        .expect("clean run");
    let plan = csj_shard::plan_shards(&pts, shards);
    let owner = |id: u32| {
        plan.iter().position(|s| s.owns(pts[id as usize].coords()[0])).expect("partition")
    };
    let mut cross: Vec<(u32, u32)> = Vec::new();
    let mut push = |a: u32, b: u32| {
        if owner(a) != owner(b) {
            cross.push((a.min(b), a.max(b)));
        }
    };
    for item in &run.output.items {
        match item {
            OutputItem::Link(a, b) => push(*a, *b),
            OutputItem::Group(ids) => {
                for i in 0..ids.len() {
                    for j in i + 1..ids.len() {
                        push(ids[i], ids[j]);
                    }
                }
            }
        }
    }
    assert!(!cross.is_empty(), "the scatter must produce boundary links");
    let total = cross.len();
    cross.sort_unstable();
    cross.dedup();
    assert_eq!(total, cross.len(), "a cross-shard link was emitted by more than one shard");
    // And none are missing: the canonical sets agree.
    let want = sequential(&pts, 0.09, ParallelAlgo::Csj(6));
    assert_eq!(canonical_link_lines(&run.output), canonical_link_lines(&want));
}

#[test]
fn fault_schedule_within_budget_recovers_bit_identical() {
    let pts = scatter(400, 11);
    let algo = ParallelAlgo::Csj(8);
    let want = canonical_link_lines(&sequential(&pts, 0.06, algo));
    // Shard 0 crashes on its first attempt, shard 1 straggles (and loses
    // to a speculative twin), shard 2 garbles its first result frame.
    let plan = ShardFaultPlan::none()
        .kill(&[0], 1)
        .delay(&[1], 1, Duration::from_millis(400))
        .garble(&[2], 1);
    let run = ShardJoin::new(0.06, algo)
        .with_shards(3)
        .with_max_attempts(3)
        .with_speculation(Duration::from_millis(60))
        .with_fault_plan(plan)
        .run(&pts, &InProcessTransport::new())
        .expect("faults within the retry budget are absorbed");
    assert_eq!(run.output.completion, Completion::Complete);
    assert_eq!(canonical_link_lines(&run.output), want, "recovery must be bit-identical");
    assert!(run.output.stats.shard_retries >= 2, "kill + garble retries must be counted");
    assert!(
        run.output.stats.shard_speculative_wins >= 1,
        "the straggler's twin must win: {:?}",
        run.reports
    );
    assert!(run.reports.iter().any(|r| r.attempts > 1 && r.completed));
}

#[test]
fn stalled_worker_is_reaped_by_heartbeat_grace_and_retried() {
    let pts = scatter(120, 13);
    let algo = ParallelAlgo::Ssj;
    let want = canonical_link_lines(&sequential(&pts, 0.08, algo));
    let run = ShardJoin::new(0.08, algo)
        .with_shards(2)
        .with_heartbeat(Duration::from_millis(10), 6)
        .with_fault_plan(ShardFaultPlan::none().stall(&[1], 1))
        .run(&pts, &InProcessTransport::new())
        .expect("a stalled worker is reaped and retried");
    assert_eq!(run.output.completion, Completion::Complete);
    assert_eq!(canonical_link_lines(&run.output), want);
    assert!(run.output.stats.shard_retries >= 1);
}

#[test]
fn second_timeout_triggers_adaptive_resplit() {
    let pts = scatter(200, 17);
    let algo = ParallelAlgo::Csj(8);
    let want = canonical_link_lines(&sequential(&pts, 0.06, algo));
    // Shard 0 exceeds its deadline twice (the delay heartbeats, so only
    // the deadline can reap it); the supervisor then replaces it with
    // its two halves, whose keys the fault plan does not match.
    let plan = ShardFaultPlan::none().delay(&[0], 1, Duration::from_millis(900)).delay(
        &[0],
        2,
        Duration::from_millis(900),
    );
    let run = ShardJoin::new(0.06, algo)
        .with_shards(2)
        .with_max_attempts(4)
        .with_task_deadline(Duration::from_millis(150))
        .with_fault_plan(plan)
        .run(&pts, &InProcessTransport::new())
        .expect("re-split absorbs the repeated timeout");
    assert_eq!(run.output.completion, Completion::Complete);
    assert_eq!(canonical_link_lines(&run.output), want, "re-split must not change output");
    assert!(run.output.stats.shard_resplits >= 1, "reports: {:?}", run.reports);
    assert!(run.output.stats.shard_timeouts >= 2);
    assert!(run.reports.iter().any(|r| r.resplit));
    assert!(run.reports.iter().any(|r| r.key.contains('.') && r.completed));
}

#[test]
fn kill_beyond_retry_budget_degrades_to_partial() {
    let pts = scatter(300, 19);
    let algo = ParallelAlgo::Csj(8);
    let plan = ShardFaultPlan::none().kill(&[0], 1).kill(&[0], 2);
    let run = ShardJoin::new(0.06, algo)
        .with_shards(3)
        .with_max_attempts(2)
        .with_fault_plan(plan)
        .run(&pts, &InProcessTransport::new())
        .expect("losing one shard degrades, it does not error");
    match run.output.completion {
        Completion::Partial { reason, completed_fraction, .. } => {
            assert_eq!(reason, StopReason::ShardsLost);
            assert!(
                completed_fraction > 0.0 && completed_fraction < 1.0,
                "fraction {completed_fraction} must reflect the surviving shards"
            );
        }
        Completion::Complete => panic!("shard 0 failed beyond its budget"),
    }
    let lost = run.reports.iter().find(|r| !r.completed).expect("one shard lost");
    assert_eq!(lost.key, "0");
    assert_eq!(lost.attempts, 2);
    // Survivors are still lossless over their region: every emitted link
    // is a true sequential link.
    let truth = sequential(&pts, 0.06, algo).expanded_link_set();
    let got = run.output.expanded_link_set();
    assert!(!got.is_empty());
    assert!(got.is_subset(&truth), "partial output must only contain true links");
}

#[test]
fn cancellation_kills_the_fleet_and_reports_partial() {
    let pts = scatter(150, 23);
    let token = csj_core::CancelToken::new();
    token.cancel();
    let run = ShardJoin::new(0.06, ParallelAlgo::Ssj)
        .with_shards(2)
        .with_cancel(&token)
        .run(&pts, &InProcessTransport::new())
        .expect("cancel is a degradation, not an error");
    match run.output.completion {
        Completion::Partial { reason, .. } => assert_eq!(reason, StopReason::Canceled),
        Completion::Complete => panic!("pre-canceled run cannot be complete"),
    }
}
