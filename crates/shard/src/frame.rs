//! The length-prefixed, checksummed worker wire protocol.
//!
//! Every message between the supervisor and a worker is one *frame*:
//!
//! ```text
//! ┌───────┬──────┬──────────┬─────────────┬─────────────┐
//! │ magic │ type │ len: u32 │ payload     │ fnv1a64:u64 │
//! │ 2 B   │ 1 B  │ LE       │ `len` bytes │ LE          │
//! └───────┴──────┴──────────┴─────────────┴─────────────┘
//! ```
//!
//! The checksum covers type, length and payload, so a bit flip anywhere
//! after the magic is detected by the receiver and the frame rejected —
//! the supervisor treats a corrupt frame from a worker as a failed
//! attempt (retried), never as data. All integers are little-endian;
//! floats are IEEE-754 bit patterns. The protocol is symmetric and
//! self-contained: a worker needs nothing but its stdin to learn its
//! task (`Task` frame) and nothing but its stdout to report
//! (`Heartbeat`, `Result`, `Fail` frames).

use std::io::{Read, Write};

use csj_core::{JoinStats, OutputItem, ShardError};

/// First two bytes of every frame; resynchronization is not attempted —
/// a bad magic poisons the stream and the worker is declared lost.
pub const FRAME_MAGIC: [u8; 2] = [0xC5, 0x1A];

/// Frame type: a task assignment (supervisor → worker).
pub const FRAME_TASK: u8 = 1;
/// Frame type: a liveness heartbeat (worker → supervisor).
pub const FRAME_HEARTBEAT: u8 = 2;
/// Frame type: a completed shard result (worker → supervisor).
pub const FRAME_RESULT: u8 = 3;
/// Frame type: a typed worker-side failure (worker → supervisor).
pub const FRAME_FAIL: u8 = 4;

/// Payloads larger than this are rejected as protocol violations
/// (a corrupted length field must not trigger a huge allocation).
pub const MAX_PAYLOAD: u32 = 256 << 20;

/// FNV-1a over `bytes`: tiny, dependency-free, and plenty to catch the
/// torn/garbled frames the fault plan injects.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes one frame (header, payload, trailing checksum).
pub fn encode_frame(frame_type: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 15);
    buf.extend_from_slice(&FRAME_MAGIC);
    buf.push(frame_type);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let checksum = fnv1a64(&buf[2..]);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// What [`read_frame`] produced: a verified frame, or clean end-of-stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadFrame {
    /// A complete frame whose checksum verified.
    Frame {
        /// One of the `FRAME_*` type constants (unknown values are the
        /// *caller's* problem: forward compatibility over strictness).
        frame_type: u8,
        /// The payload bytes.
        payload: Vec<u8>,
    },
    /// The stream ended cleanly on a frame boundary.
    Eof,
}

/// Reads exactly `buf.len()` bytes; `Ok(false)` when the stream ends
/// before the *first* byte (clean EOF), an error when it ends mid-way.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, ShardError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(ShardError::Protocol(format!(
                    "stream ended mid-frame ({filled}/{} bytes)",
                    buf.len()
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ShardError::Protocol(format!("read failed: {e}"))),
        }
    }
    Ok(true)
}

/// Reads and verifies one frame.
///
/// # Errors
/// Returns [`ShardError::Protocol`] for a bad magic, an oversized
/// length, a stream that ends mid-frame, a checksum mismatch, or an
/// underlying read error.
pub fn read_frame(r: &mut impl Read) -> Result<ReadFrame, ShardError> {
    let mut header = [0u8; 7]; // magic(2) + type(1) + len(4)
    if !read_exact_or_eof(r, &mut header)? {
        return Ok(ReadFrame::Eof);
    }
    if header[..2] != FRAME_MAGIC {
        return Err(ShardError::Protocol(format!(
            "bad frame magic {:02x}{:02x}",
            header[0], header[1]
        )));
    }
    let frame_type = header[2];
    let len = u32::from_le_bytes([header[3], header[4], header[5], header[6]]);
    if len > MAX_PAYLOAD {
        return Err(ShardError::Protocol(format!("frame payload of {len} bytes exceeds cap")));
    }
    let mut rest = vec![0u8; len as usize + 8];
    if !read_exact_or_eof(r, &mut rest)? {
        return Err(ShardError::Protocol("stream ended before frame payload".into()));
    }
    let (payload, checksum_bytes) = rest.split_at(len as usize);
    let mut covered = Vec::with_capacity(5 + payload.len());
    covered.extend_from_slice(&header[2..]);
    covered.extend_from_slice(payload);
    let expect = fnv1a64(&covered);
    let mut got = [0u8; 8];
    got.copy_from_slice(checksum_bytes);
    if u64::from_le_bytes(got) != expect {
        return Err(ShardError::Protocol("frame checksum mismatch".into()));
    }
    Ok(ReadFrame::Frame { frame_type, payload: payload.to_vec() })
}

/// Writes one encoded frame in a single `write_all` (frames must never
/// interleave on a shared pipe).
///
/// # Errors
/// Returns [`ShardError::Protocol`] when the underlying write fails
/// (typically a closed pipe: the peer is gone).
pub fn write_frame(w: &mut impl Write, frame_type: u8, payload: &[u8]) -> Result<(), ShardError> {
    let bytes = encode_frame(frame_type, payload);
    w.write_all(&bytes)
        .and_then(|()| w.flush())
        .map_err(|e| ShardError::Protocol(format!("write failed: {e}")))
}

// ---------------------------------------------------------------------
// Payload primitives.
// ---------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// A bounds-checked cursor over a payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ShardError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            ShardError::Protocol(format!(
                "payload truncated: wanted {n} bytes at offset {}",
                self.pos
            ))
        })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ShardError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ShardError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, ShardError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, ShardError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(self) -> Result<(), ShardError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ShardError::Protocol(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn put_key(buf: &mut Vec<u8>, key: &[u32]) {
    put_u32(buf, key.len() as u32);
    for &k in key {
        put_u32(buf, k);
    }
}

fn get_key(c: &mut Cursor<'_>) -> Result<Vec<u32>, ShardError> {
    let n = c.u32()? as usize;
    if n > 64 {
        return Err(ShardError::Protocol(format!("task key depth {n} exceeds cap")));
    }
    (0..n).map(|_| c.u32()).collect()
}

// ---------------------------------------------------------------------
// Typed frames.
// ---------------------------------------------------------------------

/// A point on the wire: global record id, ownership bit, coordinates.
#[derive(Clone, Debug, PartialEq)]
pub struct WirePoint {
    /// Global record id in the supervisor's dataset.
    pub id: u32,
    /// `true` when this shard owns the point; `false` for ε-halo
    /// replicas, which exist only so boundary links are discoverable.
    pub owned: bool,
    /// Coordinates, `dim` of them.
    pub coords: Vec<f64>,
}

/// A worker-side fault directive carried inside the task frame, so each
/// injected failure is pinned to an exact (shard, attempt) pair.
pub mod fault_code {
    /// No fault.
    pub const NONE: u8 = 0;
    /// Exit without a result (simulated crash → supervisor sees EOF).
    pub const KILL: u8 = 1;
    /// Sleep `param` ms before the result, heartbeating throughout
    /// (a straggler: alive but slow).
    pub const DELAY: u8 = 2;
    /// Corrupt one byte of the result frame (checksum reject).
    pub const GARBLE: u8 = 3;
    /// Stop heartbeating and hang (liveness detection must fire).
    pub const STALL: u8 = 4;
}

/// The supervisor → worker task assignment.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskFrame {
    /// Hierarchical task key (split genealogy; dotted in diagnostics).
    pub key: Vec<u32>,
    /// 1-based attempt number, echoed back in every worker frame.
    pub attempt: u32,
    /// Join range ε.
    pub epsilon: f64,
    /// Metric code: 0 = L2, 1 = L1, 2 = L∞.
    pub metric: u8,
    /// Algorithm code: 0 = SSJ, 1 = N-CSJ, 2 = CSJ(g).
    pub algo: u8,
    /// CSJ window size (ignored unless `algo` is 2).
    pub window: u32,
    /// Point dimensionality (2 or 3 are what the CLI produces).
    pub dim: u8,
    /// Interval between heartbeat frames, in ms.
    pub heartbeat_ms: u64,
    /// Fault directive (a [`fault_code`] constant).
    pub fault: u8,
    /// Fault parameter (delay ms; 0 otherwise).
    pub fault_param: u64,
    /// Storage fault injection: fail every Nth page read (0 = off).
    pub pager_fail_every_read: u64,
    /// Retry attempts for the worker's faulty pager.
    pub pager_attempts: u32,
    /// The shard's points: owned region plus ε-halo replicas.
    pub points: Vec<WirePoint>,
}

impl TaskFrame {
    /// Serializes the payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_key(&mut buf, &self.key);
        put_u32(&mut buf, self.attempt);
        put_f64(&mut buf, self.epsilon);
        buf.push(self.metric);
        buf.push(self.algo);
        put_u32(&mut buf, self.window);
        buf.push(self.dim);
        put_u64(&mut buf, self.heartbeat_ms);
        buf.push(self.fault);
        put_u64(&mut buf, self.fault_param);
        put_u64(&mut buf, self.pager_fail_every_read);
        put_u32(&mut buf, self.pager_attempts);
        put_u32(&mut buf, self.points.len() as u32);
        for p in &self.points {
            put_u32(&mut buf, p.id);
            buf.push(u8::from(p.owned));
            for &c in &p.coords {
                put_f64(&mut buf, c);
            }
        }
        buf
    }

    /// Deserializes a payload produced by [`TaskFrame::encode`].
    ///
    /// # Errors
    /// Returns [`ShardError::Protocol`] for truncated or trailing bytes
    /// and nonsensical dimensions.
    pub fn decode(payload: &[u8]) -> Result<Self, ShardError> {
        let mut c = Cursor::new(payload);
        let key = get_key(&mut c)?;
        let attempt = c.u32()?;
        let epsilon = c.f64()?;
        let metric = c.u8()?;
        let algo = c.u8()?;
        let window = c.u32()?;
        let dim = c.u8()?;
        if dim == 0 || dim > 16 {
            return Err(ShardError::Protocol(format!("dimension {dim} out of range")));
        }
        let heartbeat_ms = c.u64()?;
        let fault = c.u8()?;
        let fault_param = c.u64()?;
        let pager_fail_every_read = c.u64()?;
        let pager_attempts = c.u32()?;
        let n = c.u32()? as usize;
        let mut points = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let id = c.u32()?;
            let owned = c.u8()? != 0;
            let coords = (0..dim).map(|_| c.f64()).collect::<Result<Vec<f64>, ShardError>>()?;
            points.push(WirePoint { id, owned, coords });
        }
        c.finish()?;
        Ok(TaskFrame {
            key,
            attempt,
            epsilon,
            metric,
            algo,
            window,
            dim,
            heartbeat_ms,
            fault,
            fault_param,
            pager_fail_every_read,
            pager_attempts,
            points,
        })
    }
}

/// A worker liveness beat.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeartbeatFrame {
    /// Task key this worker is running.
    pub key: Vec<u32>,
    /// Attempt number it was assigned.
    pub attempt: u32,
    /// Monotonic beat counter, starting at 0.
    pub seq: u64,
}

impl HeartbeatFrame {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_key(&mut buf, &self.key);
        put_u32(&mut buf, self.attempt);
        put_u64(&mut buf, self.seq);
        buf
    }

    /// Deserializes a payload produced by [`HeartbeatFrame::encode`].
    ///
    /// # Errors
    /// Returns [`ShardError::Protocol`] for truncated or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, ShardError> {
        let mut c = Cursor::new(payload);
        let key = get_key(&mut c)?;
        let attempt = c.u32()?;
        let seq = c.u64()?;
        c.finish()?;
        Ok(HeartbeatFrame { key, attempt, seq })
    }
}

/// The counter fields of [`JoinStats`] carried on the wire, in a fixed
/// order (the access log never crosses the process boundary).
const STAT_FIELDS: usize = 21;

fn stats_to_wire(stats: &JoinStats) -> [u64; STAT_FIELDS] {
    [
        stats.node_visits,
        stats.pair_visits,
        stats.distance_computations,
        stats.early_stops_node,
        stats.early_stops_pair,
        stats.links_emitted,
        stats.groups_emitted,
        stats.group_members_emitted,
        stats.merge_attempts,
        stats.merges_succeeded,
        stats.pairs_pruned,
        stats.links_in_groups,
        stats.io_retries,
        stats.threads_used,
        stats.tasks_executed,
        stats.tasks_stolen,
        stats.tasks_split,
        stats.shard_retries,
        stats.shard_timeouts,
        stats.shard_resplits,
        stats.shard_speculative_wins,
    ]
}

fn stats_from_wire(w: &[u64; STAT_FIELDS]) -> JoinStats {
    JoinStats {
        node_visits: w[0],
        pair_visits: w[1],
        distance_computations: w[2],
        early_stops_node: w[3],
        early_stops_pair: w[4],
        links_emitted: w[5],
        groups_emitted: w[6],
        group_members_emitted: w[7],
        merge_attempts: w[8],
        merges_succeeded: w[9],
        pairs_pruned: w[10],
        links_in_groups: w[11],
        io_retries: w[12],
        threads_used: w[13],
        tasks_executed: w[14],
        tasks_stolen: w[15],
        tasks_split: w[16],
        shard_retries: w[17],
        shard_timeouts: w[18],
        shard_resplits: w[19],
        shard_speculative_wins: w[20],
        access_log: None,
    }
}

/// A completed shard: its output rows (global record ids, already
/// ownership-filtered by the worker) and the run's counters.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultFrame {
    /// Task key of the completed shard.
    pub key: Vec<u32>,
    /// Attempt that produced this result.
    pub attempt: u32,
    /// Output rows in the worker's deterministic emission order.
    pub items: Vec<OutputItem>,
    /// Counters of the worker-local join run.
    pub stats: JoinStats,
}

impl ResultFrame {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_key(&mut buf, &self.key);
        put_u32(&mut buf, self.attempt);
        for v in stats_to_wire(&self.stats) {
            put_u64(&mut buf, v);
        }
        put_u32(&mut buf, self.items.len() as u32);
        for item in &self.items {
            match item {
                OutputItem::Link(a, b) => {
                    buf.push(0);
                    put_u32(&mut buf, *a);
                    put_u32(&mut buf, *b);
                }
                OutputItem::Group(ids) => {
                    buf.push(1);
                    put_u32(&mut buf, ids.len() as u32);
                    for &id in ids {
                        put_u32(&mut buf, id);
                    }
                }
            }
        }
        buf
    }

    /// Deserializes a payload produced by [`ResultFrame::encode`].
    ///
    /// # Errors
    /// Returns [`ShardError::Protocol`] for truncated or trailing bytes
    /// and unknown row tags.
    pub fn decode(payload: &[u8]) -> Result<Self, ShardError> {
        let mut c = Cursor::new(payload);
        let key = get_key(&mut c)?;
        let attempt = c.u32()?;
        let mut wire = [0u64; STAT_FIELDS];
        for slot in &mut wire {
            *slot = c.u64()?;
        }
        let stats = stats_from_wire(&wire);
        let n = c.u32()? as usize;
        let mut items = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            match c.u8()? {
                0 => {
                    let a = c.u32()?;
                    let b = c.u32()?;
                    items.push(OutputItem::Link(a, b));
                }
                1 => {
                    let k = c.u32()? as usize;
                    let ids = (0..k).map(|_| c.u32()).collect::<Result<Vec<u32>, ShardError>>()?;
                    items.push(OutputItem::Group(ids));
                }
                tag => return Err(ShardError::Protocol(format!("unknown row tag {tag}"))),
            }
        }
        c.finish()?;
        Ok(ResultFrame { key, attempt, items, stats })
    }
}

/// A typed worker-side failure (e.g. an unsupported task): distinct from
/// a crash so the supervisor can log *why* before retrying.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailFrame {
    /// Task key the worker was running.
    pub key: Vec<u32>,
    /// Attempt that failed.
    pub attempt: u32,
    /// Human-readable failure description.
    pub message: String,
}

impl FailFrame {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_key(&mut buf, &self.key);
        put_u32(&mut buf, self.attempt);
        let msg = self.message.as_bytes();
        put_u32(&mut buf, msg.len() as u32);
        buf.extend_from_slice(msg);
        buf
    }

    /// Deserializes a payload produced by [`FailFrame::encode`].
    ///
    /// # Errors
    /// Returns [`ShardError::Protocol`] for truncated or trailing bytes
    /// or a non-UTF-8 message.
    pub fn decode(payload: &[u8]) -> Result<Self, ShardError> {
        let mut c = Cursor::new(payload);
        let key = get_key(&mut c)?;
        let attempt = c.u32()?;
        let len = c.u32()? as usize;
        let message = String::from_utf8(c.take(len)?.to_vec())
            .map_err(|_| ShardError::Protocol("fail message is not UTF-8".into()))?;
        c.finish()?;
        Ok(FailFrame { key, attempt, message })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_task() -> TaskFrame {
        TaskFrame {
            key: vec![2, 0],
            attempt: 3,
            epsilon: 0.125,
            metric: 1,
            algo: 2,
            window: 10,
            dim: 2,
            heartbeat_ms: 50,
            fault: fault_code::DELAY,
            fault_param: 250,
            pager_fail_every_read: 3,
            pager_attempts: 4,
            points: vec![
                WirePoint { id: 7, owned: true, coords: vec![0.25, 0.75] },
                WirePoint { id: 9, owned: false, coords: vec![0.5, -1.5] },
            ],
        }
    }

    #[test]
    fn task_frame_roundtrip() {
        let task = sample_task();
        let frame = encode_frame(FRAME_TASK, &task.encode());
        let mut r = frame.as_slice();
        match read_frame(&mut r).unwrap() {
            ReadFrame::Frame { frame_type, payload } => {
                assert_eq!(frame_type, FRAME_TASK);
                assert_eq!(TaskFrame::decode(&payload).unwrap(), task);
            }
            ReadFrame::Eof => panic!("expected a frame"),
        }
        assert_eq!(read_frame(&mut r).unwrap(), ReadFrame::Eof, "stream consumed exactly");
    }

    #[test]
    fn result_and_heartbeat_and_fail_roundtrip() {
        let stats =
            JoinStats { links_emitted: 12, io_retries: 3, shard_retries: 1, ..Default::default() };
        let result = ResultFrame {
            key: vec![1],
            attempt: 2,
            items: vec![OutputItem::Link(3, 9), OutputItem::Group(vec![4, 5, 6])],
            stats,
        };
        assert_eq!(ResultFrame::decode(&result.encode()).unwrap(), result);

        let hb = HeartbeatFrame { key: vec![0], attempt: 1, seq: 42 };
        assert_eq!(HeartbeatFrame::decode(&hb.encode()).unwrap(), hb);

        let fail = FailFrame { key: vec![3, 1], attempt: 1, message: "dim 9 unsupported".into() };
        assert_eq!(FailFrame::decode(&fail.encode()).unwrap(), fail);
    }

    #[test]
    fn garbled_byte_is_rejected_by_checksum() {
        let task = sample_task();
        let mut frame = encode_frame(FRAME_TASK, &task.encode());
        let mid = frame.len() / 2;
        frame[mid] ^= 0x40;
        let err = read_frame(&mut frame.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn truncated_frame_is_a_protocol_error_not_eof() {
        let frame = encode_frame(FRAME_HEARTBEAT, &[1, 2, 3]);
        let cut = &frame[..frame.len() - 4];
        let err = read_frame(&mut &cut[..]).unwrap_err();
        assert!(err.to_string().contains("mid-frame") || err.to_string().contains("payload"));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut frame = encode_frame(FRAME_RESULT, &[]);
        frame[0] = 0x00;
        let err = read_frame(&mut frame.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        assert_eq!(read_frame(&mut &[][..]).unwrap(), ReadFrame::Eof);
    }

    #[test]
    fn truncated_payload_decode_fails() {
        let task = sample_task();
        let payload = task.encode();
        assert!(TaskFrame::decode(&payload[..payload.len() - 1]).is_err());
        let mut extended = payload;
        extended.push(0);
        assert!(TaskFrame::decode(&extended).is_err(), "trailing bytes are rejected");
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Reference values of the 64-bit FNV-1a test suite.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
