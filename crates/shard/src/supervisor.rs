//! The fault-tolerant shard supervisor.
//!
//! [`ShardJoin`] plans ε-strip shards over the dataset, launches one
//! worker per shard through a [`WorkerTransport`], and supervises them
//! through a single event channel:
//!
//! * **heartbeats** separate slow from dead — an attempt that goes
//!   silent past the heartbeat grace is reaped and relaunched;
//! * **per-shard deadlines** bound each attempt's wall clock;
//! * **bounded retries** with exponential backoff + deterministic
//!   jitter (the same [`csj_storage::RetryPolicy`] schedule the pager
//!   uses) absorb crashes, corrupt frames and typed failures;
//! * **speculation** races a second worker against a straggler — the
//!   first result wins, and because workers are deterministic the
//!   winner's identity never changes the output;
//! * **adaptive re-split** replaces a shard that timed out twice with
//!   its two halves (skew mitigation, keys `k.0`/`k.1`);
//! * shards that fail beyond the retry budget degrade the run to
//!   [`Completion::Partial`] with owned-point-weighted fractions — the
//!   surviving rows are still lossless over their region.
//!
//! Surviving results merge in task-key order. Worker emission is
//! deterministic and the ownership filter makes boundary emission
//! exactly-once, so two runs with the same plan are row-identical, and
//! the *expanded link set* of any fully-successful run — whatever the
//! shard count or fault schedule — equals the sequential join's
//! (DESIGN.md §10 has the argument).

use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use csj_core::parallel::ParallelAlgo;
use csj_core::{CancelToken, Completion, CsjError, JoinOutput, JoinStats, ShardError, StopReason};
use csj_geom::{Metric, Point};
use csj_storage::RetryPolicy;

use crate::fault::ShardFaultPlan;
use crate::frame::{
    encode_frame, fnv1a64, HeartbeatFrame, ResultFrame, TaskFrame, WirePoint, FRAME_FAIL,
    FRAME_HEARTBEAT, FRAME_RESULT, FRAME_TASK,
};
use crate::plan::{key_string, plan_shards, shard_membership, split_point, ShardSpec};
use crate::transport::{Envelope, WorkerEvent, WorkerHandle, WorkerTransport};

/// Event-loop tick: the longest the supervisor sleeps between liveness
/// passes when no worker frames arrive.
const TICK: Duration = Duration::from_millis(5);

/// A sharded, supervised similarity self-join.
#[derive(Clone, Debug)]
pub struct ShardJoin {
    epsilon: f64,
    metric: Metric,
    algo: ParallelAlgo,
    shards: usize,
    max_attempts: u32,
    backoff: RetryPolicy,
    task_deadline: Option<Duration>,
    heartbeat_interval: Duration,
    heartbeat_grace: u32,
    speculate_after: Option<Duration>,
    fault_plan: ShardFaultPlan,
    pager_fail_every_read: u64,
    pager_attempts: u32,
    cancel: Option<CancelToken>,
    max_workers: usize,
}

impl ShardJoin {
    /// A sharded join with range `epsilon` running `algo` on each shard.
    pub fn new(epsilon: f64, algo: ParallelAlgo) -> Self {
        ShardJoin {
            epsilon,
            metric: Metric::Euclidean,
            algo,
            shards: 2,
            max_attempts: 3,
            backoff: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(20),
                max_backoff: Duration::from_millis(500),
                jitter_seed: 0xC5_1A,
            },
            task_deadline: None,
            heartbeat_interval: Duration::from_millis(25),
            heartbeat_grace: 40,
            speculate_after: None,
            fault_plan: ShardFaultPlan::none(),
            pager_fail_every_read: 0,
            pager_attempts: 4,
            cancel: None,
            max_workers: 0,
        }
    }

    /// Replaces the metric (default L2).
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Number of top-level shards (default 2; ties may collapse some).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Total launch attempts allowed per shard, first try included
    /// (default 3).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Replaces the retry backoff schedule (exponential + deterministic
    /// jitter; see [`RetryPolicy::backoff_for`]).
    pub fn with_backoff(mut self, backoff: RetryPolicy) -> Self {
        self.backoff = backoff;
        self
    }

    /// Per-attempt wall-clock deadline; two deadline strikes trigger an
    /// adaptive re-split of the shard.
    pub fn with_task_deadline(mut self, deadline: Duration) -> Self {
        self.task_deadline = Some(deadline);
        self
    }

    /// Heartbeat interval and grace: an attempt silent for
    /// `interval × grace` is declared lost.
    pub fn with_heartbeat(mut self, interval: Duration, grace: u32) -> Self {
        self.heartbeat_interval = interval.max(Duration::from_millis(1));
        self.heartbeat_grace = grace.max(2);
        self
    }

    /// Launches a speculative twin against any attempt still running
    /// after `after` (first deterministic result wins).
    pub fn with_speculation(mut self, after: Duration) -> Self {
        self.speculate_after = Some(after);
        self
    }

    /// Injects the given process-level fault schedule.
    pub fn with_fault_plan(mut self, plan: ShardFaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Makes every worker run its join through a fault-injecting pager
    /// failing every Nth page read, absorbed by `attempts` bounded
    /// retries (the storage-layer fault plan, reused per shard).
    pub fn with_pager_faults(mut self, fail_every_read: u64, attempts: u32) -> Self {
        self.pager_fail_every_read = fail_every_read;
        self.pager_attempts = attempts.max(1);
        self
    }

    /// Attaches a cooperative cancellation token: a cancel kills the
    /// fleet and reports the merged survivors as partial.
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Caps concurrently running workers (default: `max(shards, 2)`).
    pub fn with_max_workers(mut self, cap: usize) -> Self {
        self.max_workers = cap;
        self
    }

    fn worker_cap(&self) -> usize {
        if self.max_workers > 0 {
            self.max_workers
        } else {
            self.shards.max(2)
        }
    }

    fn metric_code(&self) -> Result<u8, CsjError> {
        match self.metric {
            Metric::Euclidean => Ok(0),
            Metric::Manhattan => Ok(1),
            Metric::Chebyshev => Ok(2),
            Metric::Minkowski(p) => Err(CsjError::InvalidConfig(format!(
                "sharded execution does not support Minkowski({p}) yet"
            ))),
        }
    }

    fn algo_code(&self) -> (u8, u32) {
        match self.algo {
            ParallelAlgo::Ssj => (0, 0),
            ParallelAlgo::Ncsj => (1, 0),
            ParallelAlgo::Csj(g) => (2, g as u32),
        }
    }

    /// Runs the sharded join over `points` on `transport`.
    ///
    /// A fully successful run returns [`Completion::Complete`] output
    /// whose expanded link set equals the sequential join's. Shards
    /// failing beyond the retry budget (or a cancel) degrade to
    /// [`Completion::Partial`] with owned-point-weighted fractions.
    ///
    /// # Errors
    /// Returns [`CsjError::InvalidConfig`] for an unsupported metric
    /// and [`CsjError::Shard`] when the transport cannot spawn workers
    /// at all. Worker crashes, hangs, stragglers and corrupt frames are
    /// *not* errors — they are retried, then degraded to partial.
    pub fn run<const D: usize, T: WorkerTransport>(
        &self,
        points: &[Point<D>],
        transport: &T,
    ) -> Result<ShardedOutput, CsjError> {
        let metric_code = self.metric_code()?;
        let (algo_code, window) = self.algo_code();
        let (tx, rx) = channel::<Envelope>();
        let mut run = Run {
            cfg: self,
            metric_code,
            algo_code,
            window,
            points,
            transport,
            tx,
            tasks: BTreeMap::new(),
            worker_index: HashMap::new(),
            next_worker: 0,
            stats: JoinStats::default(),
            canceled: false,
        };
        for spec in plan_shards(points, self.shards) {
            run.insert_task(spec);
        }
        let result = run.event_loop(&rx);
        run.shutdown();
        result?;
        Ok(run.finish())
    }
}

/// Per-shard supervision summary, in task-key order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardReport {
    /// Dotted task key (`"2"`, `"2.1"` after a re-split).
    pub key: String,
    /// Launch attempts consumed (first try included).
    pub attempts: u32,
    /// Deadline strikes against this shard.
    pub timeouts: u32,
    /// Relaunches after a failed attempt.
    pub retries: u32,
    /// Whether a result was merged.
    pub completed: bool,
    /// Points this shard owns (the completion-fraction weight).
    pub owned_points: usize,
    /// Whether the merged result came from a speculative twin.
    pub speculative_win: bool,
    /// Whether the shard was replaced by a re-split (its children
    /// appear as separate reports; a replaced shard merges nothing).
    pub resplit: bool,
}

/// A sharded run's merged output plus its per-shard reports.
#[derive(Clone, Debug)]
pub struct ShardedOutput {
    /// Merged rows (task-key order), aggregated stats, completion.
    pub output: JoinOutput,
    /// One report per shard that reached a terminal state.
    pub reports: Vec<ShardReport>,
}

struct Attempt<H> {
    worker: u64,
    started: Instant,
    last_seen: Instant,
    speculative: bool,
    handle: H,
}

struct TaskState<H> {
    spec: ShardSpec,
    members: Vec<(u32, bool)>,
    owned_points: usize,
    attempts_used: u32,
    timeouts: u32,
    retries: u32,
    next_launch: Instant,
    running: Vec<Attempt<H>>,
    result: Option<ResultFrame>,
    failed: bool,
    won_speculatively: bool,
    replaced: bool,
}

impl<H> TaskState<H> {
    fn open(&self) -> bool {
        !self.replaced && !self.failed && self.result.is_none()
    }
}

struct Run<'a, const D: usize, T: WorkerTransport> {
    cfg: &'a ShardJoin,
    metric_code: u8,
    algo_code: u8,
    window: u32,
    points: &'a [Point<D>],
    transport: &'a T,
    tx: Sender<Envelope>,
    tasks: BTreeMap<Vec<u32>, TaskState<T::Handle>>,
    worker_index: HashMap<u64, Vec<u32>>,
    next_worker: u64,
    stats: JoinStats,
    canceled: bool,
}

impl<const D: usize, T: WorkerTransport> Run<'_, D, T> {
    fn insert_task(&mut self, spec: ShardSpec) {
        let members = shard_membership(self.points, &spec, self.cfg.epsilon);
        let owned_points = members.iter().filter(|(_, o)| *o).count();
        // A member-less shard (empty dataset) completes trivially — no
        // worker needed.
        let result = members.is_empty().then(|| ResultFrame {
            key: spec.key.clone(),
            attempt: 0,
            items: Vec::new(),
            stats: JoinStats::default(),
        });
        let key = spec.key.clone();
        self.tasks.insert(
            key,
            TaskState {
                spec,
                members,
                owned_points,
                attempts_used: 0,
                timeouts: 0,
                retries: 0,
                next_launch: Instant::now(),
                running: Vec::new(),
                result,
                failed: false,
                won_speculatively: false,
                replaced: false,
            },
        );
    }

    fn event_loop(&mut self, rx: &Receiver<Envelope>) -> Result<(), CsjError> {
        loop {
            if let Some(token) = &self.cfg.cancel {
                if token.is_canceled() {
                    self.canceled = true;
                    return Ok(());
                }
            }
            if !self.tasks.values().any(TaskState::open) {
                return Ok(());
            }
            self.launch_due()?;
            match rx.recv_timeout(TICK) {
                Ok(env) => {
                    self.handle_event(env);
                    while let Ok(env) = rx.try_recv() {
                        self.handle_event(env);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable while we hold `tx`; treat as fatal.
                    return Err(CsjError::Shard(ShardError::Protocol(
                        "supervisor event channel disconnected".into(),
                    )));
                }
            }
            self.liveness_pass();
        }
    }

    fn live_workers(&self) -> usize {
        self.tasks.values().map(|t| t.running.len()).sum()
    }

    fn launch_due(&mut self) -> Result<(), CsjError> {
        let now = Instant::now();
        let cap = self.cfg.worker_cap();
        // Primary launches: open tasks with no running attempt whose
        // backoff gate has passed, in key order (deterministic).
        let due: Vec<Vec<u32>> = self
            .tasks
            .iter()
            .filter(|(_, t)| t.open() && t.running.is_empty() && now >= t.next_launch)
            .map(|(k, _)| k.clone())
            .collect();
        for key in due {
            if self.live_workers() >= cap {
                return Ok(());
            }
            self.launch(&key, false)?;
        }
        // Speculation: race a twin against a straggler that has been
        // running alone for longer than the threshold.
        if let Some(after) = self.cfg.speculate_after {
            let stragglers: Vec<Vec<u32>> = self
                .tasks
                .iter()
                .filter(|(_, t)| {
                    t.open()
                        && t.running.len() == 1
                        && !t.running[0].speculative
                        && now.duration_since(t.running[0].started) >= after
                        && t.attempts_used < self.cfg.max_attempts
                })
                .map(|(k, _)| k.clone())
                .collect();
            for key in stragglers {
                if self.live_workers() >= cap {
                    return Ok(());
                }
                self.launch(&key, true)?;
            }
        }
        Ok(())
    }

    fn launch(&mut self, key: &[u32], speculative: bool) -> Result<(), CsjError> {
        let cfg = self.cfg;
        let (attempt, frame) = {
            let Some(task) = self.tasks.get_mut(key) else { return Ok(()) };
            task.attempts_used += 1;
            let attempt = task.attempts_used;
            let (fault, fault_param) = cfg
                .fault_plan
                .directive(key, attempt)
                .map(crate::fault::FaultKind::to_wire)
                .unwrap_or((crate::frame::fault_code::NONE, 0));
            let points = self.points;
            let frame = TaskFrame {
                key: key.to_vec(),
                attempt,
                epsilon: cfg.epsilon,
                metric: self.metric_code,
                algo: self.algo_code,
                window: self.window,
                dim: D as u8,
                heartbeat_ms: cfg.heartbeat_interval.as_millis().max(1) as u64,
                fault,
                fault_param,
                pager_fail_every_read: cfg.pager_fail_every_read,
                pager_attempts: cfg.pager_attempts,
                points: task
                    .members
                    .iter()
                    .map(|&(id, owned)| WirePoint {
                        id,
                        owned,
                        coords: points[id as usize].coords().to_vec(),
                    })
                    .collect(),
            };
            (attempt, frame)
        };
        let _ = attempt;
        let bytes = encode_frame(FRAME_TASK, &frame.encode());
        let worker = self.next_worker;
        self.next_worker += 1;
        let handle = self.transport.launch(worker, bytes, &self.tx).map_err(CsjError::Shard)?;
        self.worker_index.insert(worker, key.to_vec());
        let now = Instant::now();
        if let Some(task) = self.tasks.get_mut(key) {
            task.running.push(Attempt {
                worker,
                started: now,
                last_seen: now,
                speculative,
                handle,
            });
        }
        Ok(())
    }

    fn handle_event(&mut self, env: Envelope) {
        let Some(key) = self.worker_index.get(&env.worker).cloned() else {
            // A retired worker (speculation loser, post-result EOF):
            // nothing to do.
            return;
        };
        match env.event {
            WorkerEvent::Frame { frame_type: FRAME_HEARTBEAT, payload } => {
                if HeartbeatFrame::decode(&payload).is_ok() {
                    if let Some(task) = self.tasks.get_mut(&key) {
                        if let Some(a) = task.running.iter_mut().find(|a| a.worker == env.worker) {
                            a.last_seen = Instant::now();
                        }
                    }
                } else {
                    self.attempt_down(&key, env.worker);
                }
            }
            WorkerEvent::Frame { frame_type: FRAME_RESULT, payload } => {
                match ResultFrame::decode(&payload) {
                    Ok(frame) if frame.key == key => self.complete(&key, env.worker, frame),
                    // Wrong key or undecodable: as corrupt.
                    _ => self.attempt_down(&key, env.worker),
                }
            }
            WorkerEvent::Frame { frame_type: FRAME_FAIL, .. } => {
                self.attempt_down(&key, env.worker);
            }
            WorkerEvent::Frame { .. } | WorkerEvent::Corrupt(_) => {
                self.attempt_down(&key, env.worker);
            }
            WorkerEvent::Eof => {
                // EOF with the worker still registered means no result
                // arrived: the worker is lost (crash / kill).
                self.attempt_down(&key, env.worker);
            }
        }
    }

    fn complete(&mut self, key: &[u32], worker: u64, frame: ResultFrame) {
        let Some(task) = self.tasks.get_mut(key) else { return };
        if task.result.is_some() {
            return;
        }
        let speculative =
            task.running.iter().find(|a| a.worker == worker).is_some_and(|a| a.speculative);
        if speculative {
            self.stats.shard_speculative_wins += 1;
            task.won_speculatively = true;
        }
        task.result = Some(frame);
        // First deterministic result wins: retire every attempt, the
        // winner included (kill is idempotent; losers' queued frames are
        // ignored once unregistered).
        for mut attempt in task.running.drain(..) {
            attempt.handle.kill();
            self.worker_index.remove(&attempt.worker);
        }
    }

    /// Retires one attempt after a failure (EOF, corrupt frame, typed
    /// fail, liveness strike) and schedules the task's future.
    fn attempt_down(&mut self, key: &[u32], worker: u64) {
        let Some(task) = self.tasks.get_mut(key) else { return };
        let Some(pos) = task.running.iter().position(|a| a.worker == worker) else {
            return;
        };
        let mut attempt = task.running.remove(pos);
        attempt.handle.kill();
        self.worker_index.remove(&worker);
        if task.result.is_some() || !task.running.is_empty() {
            // Already won, or a twin is still racing: no reschedule.
            return;
        }
        self.schedule_retry_or_fail(key);
    }

    fn schedule_retry_or_fail(&mut self, key: &[u32]) {
        let max_attempts = self.cfg.max_attempts;
        let backoff = self.cfg.backoff;
        let Some(task) = self.tasks.get_mut(key) else { return };
        if task.attempts_used >= max_attempts {
            task.failed = true;
            return;
        }
        task.retries += 1;
        self.stats.shard_retries += 1;
        // Deterministic jitter, salted by the task key so concurrent
        // retries of different shards spread apart.
        let salt = fnv1a64(&key.iter().flat_map(|k| k.to_le_bytes()).collect::<Vec<u8>>());
        task.next_launch = Instant::now() + backoff.backoff_for(task.attempts_used, salt);
    }

    fn liveness_pass(&mut self) {
        let now = Instant::now();
        let grace = self.cfg.heartbeat_interval * self.cfg.heartbeat_grace;
        let deadline = self.cfg.task_deadline;
        // Collect strikes first (borrow discipline), then apply.
        let mut lost: Vec<(Vec<u32>, u64)> = Vec::new();
        let mut timed_out: Vec<(Vec<u32>, u64)> = Vec::new();
        for (key, task) in &self.tasks {
            if !task.open() {
                continue;
            }
            for a in &task.running {
                if deadline.is_some_and(|d| now.duration_since(a.started) >= d) {
                    timed_out.push((key.clone(), a.worker));
                } else if now.duration_since(a.last_seen) >= grace {
                    lost.push((key.clone(), a.worker));
                }
            }
        }
        for (key, worker) in lost {
            self.attempt_down(&key, worker);
        }
        for (key, worker) in timed_out {
            self.stats.shard_timeouts += 1;
            if let Some(task) = self.tasks.get_mut(&key) {
                task.timeouts += 1;
            }
            self.attempt_down(&key, worker);
            // Two deadline strikes: the shard is likely skew-heavy —
            // replace it with its two halves instead of retrying as-is.
            let strikes = self.tasks.get(&key).map_or(0, |t| t.timeouts);
            let open = self.tasks.get(&key).is_some_and(TaskState::open);
            if open && strikes >= 2 {
                self.resplit(&key);
            }
        }
    }

    fn resplit(&mut self, key: &[u32]) {
        let Some(task) = self.tasks.get(key) else { return };
        let Some(mid) = split_point(self.points, &task.spec) else {
            return; // unsplittable: keep retrying within the budget
        };
        let (left, right) = task.spec.split_at(mid);
        self.stats.shard_resplits += 1;
        if let Some(task) = self.tasks.get_mut(key) {
            task.replaced = true;
            for mut attempt in task.running.drain(..) {
                attempt.handle.kill();
            }
        }
        // Children start with a fresh attempt budget: they are new,
        // smaller tasks (and new fault-plan addresses).
        self.insert_task(left);
        self.insert_task(right);
    }

    fn shutdown(&mut self) {
        for task in self.tasks.values_mut() {
            for mut attempt in task.running.drain(..) {
                attempt.handle.kill();
            }
        }
        self.worker_index.clear();
    }

    fn finish(self) -> ShardedOutput {
        let mut items = Vec::new();
        let mut stats = self.stats;
        let mut reports = Vec::new();
        let mut total_weight = 0usize;
        let mut done_weight = 0usize;
        let mut all_done = true;
        for (key, task) in &self.tasks {
            reports.push(ShardReport {
                key: key_string(key),
                attempts: task.attempts_used,
                timeouts: task.timeouts,
                retries: task.retries,
                completed: task.result.is_some() && !task.replaced,
                owned_points: task.owned_points,
                speculative_win: task.won_speculatively,
                resplit: task.replaced,
            });
            if task.replaced {
                continue;
            }
            total_weight += task.owned_points;
            match &task.result {
                Some(frame) => {
                    items.extend(frame.items.iter().cloned());
                    stats.absorb(&frame.stats);
                    done_weight += task.owned_points;
                }
                None => all_done = false,
            }
        }
        stats.threads_used = stats.threads_used.max(1);
        let completion = if all_done {
            Completion::Complete
        } else {
            let reason = if self.canceled { StopReason::Canceled } else { StopReason::ShardsLost };
            let fraction =
                if total_weight == 0 { 0.0 } else { done_weight as f64 / total_weight as f64 };
            let links: u64 = items.iter().map(csj_core::OutputItem::implied_links).sum();
            let bytes: u64 = items.iter().map(|i| i.format_bytes(6)).sum();
            Completion::partial(reason, fraction, links, bytes)
        };
        ShardedOutput { output: JoinOutput { items, stats, completion }, reports }
    }
}
