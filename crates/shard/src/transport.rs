//! How the supervisor launches and talks to workers.
//!
//! The supervisor is written against [`WorkerTransport`], so the same
//! state machine drives two very different substrates:
//!
//! * [`ProcessTransport`] — the production path: spawn a worker
//!   *process* (`csj shard-worker`), write the task frame to its stdin,
//!   and decode its stdout on a reader thread. A crash, `kill -9` or
//!   clean exit all surface uniformly as [`WorkerEvent::Eof`].
//! * [`InProcessTransport`] — the hermetic test path: run the same
//!   worker loop on a thread over in-memory pipes. Tests exercise every
//!   supervisor transition without fork/exec cost, and `kill` is a
//!   cooperative flag the worker polls during sleeps.
//!
//! Whatever the substrate, decoded frames arrive at the supervisor as
//! [`Envelope`]s on a single mpsc channel, tagged with the worker id —
//! one receiver, no per-worker polling.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;

use csj_core::ShardError;

use crate::frame::{read_frame, ReadFrame};
use crate::worker::run_worker_with_kill;

/// One decoded occurrence on a worker's output stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerEvent {
    /// A verified frame.
    Frame {
        /// One of the `FRAME_*` constants of [`crate::frame`].
        frame_type: u8,
        /// The frame payload.
        payload: Vec<u8>,
    },
    /// The stream is poisoned: bad magic, checksum mismatch, torn
    /// frame. No further frames will be read from this worker.
    Corrupt(String),
    /// The stream ended: the worker exited (or was killed).
    Eof,
}

/// A [`WorkerEvent`] tagged with the worker id that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Supervisor-assigned worker id (unique per launch).
    pub worker: u64,
    /// What happened.
    pub event: WorkerEvent,
}

/// A handle to a launched worker, used to reap or force-stop it.
pub trait WorkerHandle: Send {
    /// Stops the worker and releases its resources. Idempotent; called
    /// on every retirement (success, failure, speculation loss).
    fn kill(&mut self);
}

/// A substrate that can launch workers for the supervisor.
pub trait WorkerTransport {
    /// The handle type for workers of this transport.
    type Handle: WorkerHandle;

    /// Launches one worker: delivers `task` (an encoded task frame) to
    /// it and streams its decoded output as [`Envelope`]s into
    /// `events`. Returns immediately; all I/O happens on background
    /// threads.
    ///
    /// # Errors
    /// Returns [`ShardError::Spawn`] when the worker cannot be started
    /// at all (missing binary, resource exhaustion). Failures *after*
    /// a successful launch are reported through the event stream.
    fn launch(
        &self,
        worker: u64,
        task: Vec<u8>,
        events: &Sender<Envelope>,
    ) -> Result<Self::Handle, ShardError>;
}

fn pump_frames(worker: u64, mut stream: impl Read, events: &Sender<Envelope>) {
    loop {
        let event = match read_frame(&mut stream) {
            Ok(ReadFrame::Frame { frame_type, payload }) => {
                WorkerEvent::Frame { frame_type, payload }
            }
            Ok(ReadFrame::Eof) => WorkerEvent::Eof,
            Err(e) => WorkerEvent::Corrupt(e.to_string()),
        };
        let terminal = !matches!(event, WorkerEvent::Frame { .. });
        // The supervisor hanging up mid-run (early return) is fine —
        // nothing left to notify.
        let _ = events.send(Envelope { worker, event });
        if terminal {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Process transport.
// ---------------------------------------------------------------------

/// Launches real worker processes and decodes their stdout.
#[derive(Clone, Debug)]
pub struct ProcessTransport {
    program: PathBuf,
    args: Vec<String>,
}

impl ProcessTransport {
    /// A transport spawning `program args…` per worker. The program
    /// must speak the worker side of the frame protocol on
    /// stdin/stdout — in production that is `csj shard-worker`.
    pub fn new(program: impl Into<PathBuf>, args: Vec<String>) -> Self {
        ProcessTransport { program: program.into(), args }
    }
}

/// Handle to a worker process: kill + reap.
#[derive(Debug)]
pub struct ProcessHandle {
    child: Option<Child>,
}

impl WorkerHandle for ProcessHandle {
    fn kill(&mut self) {
        if let Some(mut child) = self.child.take() {
            // Best effort: the process may already have exited (kill on
            // an exited child is a no-op error) — wait() reaps either way.
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Drop for ProcessHandle {
    fn drop(&mut self) {
        self.kill();
    }
}

impl WorkerTransport for ProcessTransport {
    type Handle = ProcessHandle;

    fn launch(
        &self,
        worker: u64,
        task: Vec<u8>,
        events: &Sender<Envelope>,
    ) -> Result<ProcessHandle, ShardError> {
        let mut child = Command::new(&self.program)
            .args(&self.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| ShardError::Spawn(format!("{}: {e}", self.program.display())))?;
        let mut stdin = child
            .stdin
            .take()
            .ok_or_else(|| ShardError::Spawn("worker stdin was not piped".into()))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| ShardError::Spawn("worker stdout was not piped".into()))?;
        let tx = events.clone();
        std::thread::spawn(move || {
            // If the child died before reading its task the write fails
            // with EPIPE; the reader thread then delivers Eof and the
            // supervisor's lost-worker path takes over.
            let _ = stdin.write_all(&task);
            drop(stdin);
            pump_frames(worker, stdout, &tx);
        });
        Ok(ProcessHandle { child: Some(child) })
    }
}

// ---------------------------------------------------------------------
// In-process transport (worker thread over in-memory pipes).
// ---------------------------------------------------------------------

/// A `Write` half of an in-memory pipe: each write is one chunk on a
/// bounded channel (the bound applies crude backpressure, like a pipe
/// buffer).
struct ChannelWriter {
    tx: SyncSender<Vec<u8>>,
}

impl Write for ChannelWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.tx
            .send(buf.to_vec())
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "reader gone"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The matching `Read` half: buffers chunks, EOF when the writer hangs
/// up.
struct ChannelReader {
    rx: Receiver<Vec<u8>>,
    buf: VecDeque<u8>,
}

impl Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        while self.buf.is_empty() {
            match self.rx.recv() {
                Ok(chunk) => self.buf.extend(chunk),
                Err(_) => return Ok(0), // writer dropped: EOF
            }
        }
        let n = out.len().min(self.buf.len());
        for slot in out.iter_mut().take(n) {
            // VecDeque is non-empty for all n pops by construction.
            *slot = self.buf.pop_front().unwrap_or_default();
        }
        Ok(n)
    }
}

/// Runs workers as threads over in-memory pipes — the hermetic test
/// substrate.
#[derive(Clone, Copy, Debug, Default)]
pub struct InProcessTransport;

impl InProcessTransport {
    /// A fresh in-process transport.
    pub fn new() -> Self {
        InProcessTransport
    }
}

/// Handle to an in-process worker: a cooperative kill flag.
#[derive(Debug)]
pub struct ThreadHandle {
    kill: Arc<AtomicBool>,
}

impl WorkerHandle for ThreadHandle {
    fn kill(&mut self) {
        // ORDERING: advisory stop flag polled by the worker during
        // sleeps; no data is published through it, only promptness is
        // affected, so relaxed visibility latency is acceptable.
        self.kill.store(true, Ordering::Relaxed);
    }
}

impl WorkerTransport for InProcessTransport {
    type Handle = ThreadHandle;

    fn launch(
        &self,
        worker: u64,
        task: Vec<u8>,
        events: &Sender<Envelope>,
    ) -> Result<ThreadHandle, ShardError> {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<u8>>(256);
        let kill = Arc::new(AtomicBool::new(false));
        let worker_kill = Arc::clone(&kill);
        std::thread::spawn(move || {
            // A worker error (e.g. its output pipe closed) ends the
            // thread; dropping the writer is the EOF the supervisor sees.
            let _ =
                run_worker_with_kill(std::io::Cursor::new(task), ChannelWriter { tx }, worker_kill);
        });
        let reader = ChannelReader { rx, buf: VecDeque::new() };
        let etx = events.clone();
        std::thread::spawn(move || pump_frames(worker, reader, &etx));
        Ok(ThreadHandle { kill })
    }
}
