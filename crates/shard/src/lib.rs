//! csj-shard: fault-tolerant multi-process sharded execution for
//! compact similarity joins.
//!
//! The crate splits a self-join across worker processes (or threads, in
//! tests) and supervises them so that worker crashes, hangs, stragglers
//! and corrupt output degrade gracefully instead of failing the run:
//!
//! * [`plan`] — ε-boundary-strip slab partitioning with the
//!   min-id-owned exactly-once emission rule;
//! * [`frame`] — the length-prefixed, checksummed stdin/stdout frame
//!   protocol between supervisor and worker;
//! * [`worker`] — the worker side: run the shard-local join, filter to
//!   owned rows, heartbeat, execute injected fault directives;
//! * [`transport`] — process and in-process worker substrates behind
//!   one trait;
//! * [`supervisor`] — heartbeat liveness, deadlines, bounded retries
//!   with deterministic backoff jitter, straggler speculation, adaptive
//!   re-split, and deterministic partial merge;
//! * [`fault`] — the process-level [`ShardFaultPlan`] that makes every
//!   failure path reproducible.
//!
//! The headline contract: a fully successful sharded run produces the
//! same link set as the sequential join — at any shard count, under any
//! fault schedule the retry budget absorbs. Beyond the budget the run
//! returns [`csj_core::Completion::Partial`] with per-shard completed
//! fractions instead of an error.

#![warn(missing_docs)]

pub mod fault;
pub mod frame;
pub mod plan;
pub mod supervisor;
pub mod transport;
pub mod worker;

pub use fault::{FaultKind, ShardFaultPlan};
pub use plan::{plan_shards, shard_membership, ShardSpec};
pub use supervisor::{ShardJoin, ShardReport, ShardedOutput};
pub use transport::{InProcessTransport, ProcessTransport, WorkerTransport};
pub use worker::run_worker;

use csj_core::JoinOutput;

/// The canonical text form of a join output: the expanded link set as
/// sorted `"a b\n"` lines.
///
/// Two outputs with the same canonical form report the same joined
/// pairs, whatever their group representation or row order — this is
/// the form CI compares to assert that a sharded run (under faults)
/// matches the sequential join bit-for-bit.
pub fn canonical_link_lines(output: &JoinOutput) -> String {
    let mut text = String::new();
    for (a, b) in output.expanded_link_set() {
        text.push_str(&format!("{a} {b}\n"));
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use csj_core::OutputItem;

    #[test]
    fn canonical_form_ignores_representation_and_order() {
        let grouped =
            JoinOutput { items: vec![OutputItem::Group(vec![3, 1, 2])], ..Default::default() };
        let linked = JoinOutput {
            items: vec![OutputItem::Link(2, 3), OutputItem::Link(1, 3), OutputItem::Link(1, 2)],
            ..Default::default()
        };
        assert_eq!(canonical_link_lines(&grouped), canonical_link_lines(&linked));
        assert_eq!(canonical_link_lines(&grouped), "1 2\n1 3\n2 3\n");
    }
}
