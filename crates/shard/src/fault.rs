//! Process-level fault injection for sharded runs.
//!
//! A [`ShardFaultPlan`] pins failures to exact `(shard key, attempt)`
//! pairs, so every recovery path — lost worker, straggler speculation,
//! checksum rejection, heartbeat loss — is exercised deterministically:
//! the same plan against the same data always produces the same failure
//! schedule, which is what lets CI assert bit-identical recovery. The
//! directive rides inside the task frame and is executed *by the
//! worker*, mirroring how [`csj_storage::FaultPolicy`] makes the
//! storage layer's faults deterministic.

use std::fmt;
use std::str::FromStr;
use std::time::Duration;

use csj_core::CsjError;

use crate::frame::fault_code;
use crate::plan::key_string;

/// A single worker-side failure mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker exits without a result: the supervisor sees EOF
    /// (lost-worker detection, then retry).
    Kill,
    /// The worker sleeps this long before its result while heartbeating
    /// (a straggler: triggers speculation / deadlines, not liveness).
    Delay(Duration),
    /// The worker corrupts one byte of its result frame (checksum
    /// reject at the supervisor, treated as a failed attempt).
    Garble,
    /// The worker stops heartbeating and hangs (heartbeat-grace
    /// liveness detection must reap it).
    Stall,
}

impl FaultKind {
    /// The wire encoding: `(fault code, parameter)`.
    pub fn to_wire(self) -> (u8, u64) {
        match self {
            FaultKind::Kill => (fault_code::KILL, 0),
            FaultKind::Delay(d) => (fault_code::DELAY, d.as_millis() as u64),
            FaultKind::Garble => (fault_code::GARBLE, 0),
            FaultKind::Stall => (fault_code::STALL, 0),
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct FaultEntry {
    key: Vec<u32>,
    attempt: u32,
    kind: FaultKind,
}

/// A deterministic schedule of worker failures, keyed by
/// `(shard key, attempt)`.
///
/// The text grammar (CLI `--fault-plan`) is `;`-separated entries of
/// `kind:KEY@ATTEMPT[=MILLIS]` with dotted keys:
///
/// ```text
/// kill:0@1;delay:1@1=300;garble:2@2;stall:1.0@1
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardFaultPlan {
    entries: Vec<FaultEntry>,
}

impl ShardFaultPlan {
    /// An empty plan: no injected faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds a kill of shard `key` on attempt `attempt` (builder style).
    pub fn kill(mut self, key: &[u32], attempt: u32) -> Self {
        self.entries.push(FaultEntry { key: key.to_vec(), attempt, kind: FaultKind::Kill });
        self
    }

    /// Adds a straggler delay of shard `key` on attempt `attempt`.
    pub fn delay(mut self, key: &[u32], attempt: u32, by: Duration) -> Self {
        self.entries.push(FaultEntry { key: key.to_vec(), attempt, kind: FaultKind::Delay(by) });
        self
    }

    /// Adds a result-frame garble of shard `key` on attempt `attempt`.
    pub fn garble(mut self, key: &[u32], attempt: u32) -> Self {
        self.entries.push(FaultEntry { key: key.to_vec(), attempt, kind: FaultKind::Garble });
        self
    }

    /// Adds a heartbeat stall of shard `key` on attempt `attempt`.
    pub fn stall(mut self, key: &[u32], attempt: u32) -> Self {
        self.entries.push(FaultEntry { key: key.to_vec(), attempt, kind: FaultKind::Stall });
        self
    }

    /// The fault to inject for this `(key, attempt)`, if any. First
    /// matching entry wins.
    pub fn directive(&self, key: &[u32], attempt: u32) -> Option<FaultKind> {
        self.entries.iter().find(|e| e.key == key && e.attempt == attempt).map(|e| e.kind)
    }
}

impl fmt::Display for ShardFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            let key = key_string(&e.key);
            match e.kind {
                FaultKind::Kill => write!(f, "kill:{key}@{}", e.attempt)?,
                FaultKind::Delay(d) => write!(f, "delay:{key}@{}={}", e.attempt, d.as_millis())?,
                FaultKind::Garble => write!(f, "garble:{key}@{}", e.attempt)?,
                FaultKind::Stall => write!(f, "stall:{key}@{}", e.attempt)?,
            }
        }
        Ok(())
    }
}

fn parse_key(text: &str) -> Result<Vec<u32>, CsjError> {
    text.split('.')
        .map(|part| {
            part.parse::<u32>().map_err(|_| {
                CsjError::InvalidConfig(format!("bad shard key component {part:?} in fault plan"))
            })
        })
        .collect()
}

impl FromStr for ShardFaultPlan {
    type Err = CsjError;

    fn from_str(s: &str) -> Result<Self, CsjError> {
        let mut plan = ShardFaultPlan::none();
        for entry in s.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind, rest) = entry.split_once(':').ok_or_else(|| {
                CsjError::InvalidConfig(format!("fault entry {entry:?} lacks 'kind:'"))
            })?;
            let (target, param) = match rest.split_once('=') {
                Some((t, p)) => (t, Some(p)),
                None => (rest, None),
            };
            let (key_text, attempt_text) = target.split_once('@').ok_or_else(|| {
                CsjError::InvalidConfig(format!("fault entry {entry:?} lacks '@attempt'"))
            })?;
            let key = parse_key(key_text)?;
            let attempt: u32 = attempt_text.parse().map_err(|_| {
                CsjError::InvalidConfig(format!("bad attempt {attempt_text:?} in fault plan"))
            })?;
            let fault = match (kind, param) {
                ("kill", None) => FaultKind::Kill,
                ("garble", None) => FaultKind::Garble,
                ("stall", None) => FaultKind::Stall,
                ("delay", Some(ms)) => {
                    let ms: u64 = ms.parse().map_err(|_| {
                        CsjError::InvalidConfig(format!("bad delay millis {ms:?} in fault plan"))
                    })?;
                    FaultKind::Delay(Duration::from_millis(ms))
                }
                ("delay", None) => {
                    return Err(CsjError::InvalidConfig("delay entries need '=millis'".into()))
                }
                _ => {
                    return Err(CsjError::InvalidConfig(format!(
                        "unknown fault kind {kind:?} (kill|delay|garble|stall)"
                    )))
                }
            };
            plan.entries.push(FaultEntry { key, attempt, kind: fault });
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_roundtrips_through_display() {
        let text = "kill:0@1;delay:1@1=300;garble:2@2;stall:1.0@1";
        let plan: ShardFaultPlan = text.parse().unwrap();
        assert_eq!(plan.to_string(), text);
        assert_eq!(plan.directive(&[0], 1), Some(FaultKind::Kill));
        assert_eq!(plan.directive(&[1], 1), Some(FaultKind::Delay(Duration::from_millis(300))));
        assert_eq!(plan.directive(&[2], 2), Some(FaultKind::Garble));
        assert_eq!(plan.directive(&[1, 0], 1), Some(FaultKind::Stall));
        assert_eq!(plan.directive(&[0], 2), None, "attempt 2 of shard 0 is clean");
        assert_eq!(plan.directive(&[3], 1), None, "shard 3 is clean");
    }

    #[test]
    fn builder_matches_grammar() {
        let built = ShardFaultPlan::none().kill(&[0], 1).delay(&[1], 1, Duration::from_millis(300));
        let parsed: ShardFaultPlan = "kill:0@1;delay:1@1=300".parse().unwrap();
        assert_eq!(built, parsed);
        assert!(ShardFaultPlan::none().is_empty());
        assert!(!built.is_empty());
    }

    #[test]
    fn malformed_entries_are_rejected() {
        for bad in
            ["boom:0@1", "kill:0", "kill:x@1", "kill:0@x", "delay:0@1", "delay:0@1=abc", "kill"]
        {
            assert!(bad.parse::<ShardFaultPlan>().is_err(), "{bad:?} must be rejected");
        }
        let empty: ShardFaultPlan = "".parse().unwrap();
        assert!(empty.is_empty(), "empty string is the empty plan");
    }
}
