//! The shard worker: one task frame in, heartbeats + one result out.
//!
//! A worker reads a single task frame from its input, runs the
//! requested join over the shard's points with the sequential
//! [`ResilientJoin`] engine (lossless by Theorem 1), filters the output
//! down to rows this shard is responsible for, and writes the result
//! frame. While the join runs, a sidecar thread emits heartbeat frames
//! so the supervisor can tell "slow" from "dead".
//!
//! ## Ownership filter (exactly-once boundary links)
//!
//! The shard's point set is its owned interval plus the ε-boundary
//! strip (see [`crate::plan`]). The local join therefore re-discovers
//! links that neighboring shards also see. The worker keeps:
//!
//! * groups whose members are **all owned** — verbatim (compact rows
//!   survive sharding);
//! * of mixed groups, the owned sub-group (when ≥ 2 members), plus each
//!   owned↔halo pair **iff the smaller global id is the owned one** —
//!   routed through a set, so it is emitted once per shard;
//! * links by the same min-id-owned rule.
//!
//! Ownership intervals partition space, so for any cross-shard link
//! exactly one shard owns the min-id endpoint, and that shard provably
//! holds the other endpoint in its strip: each boundary link is emitted
//! exactly once across all shards, with no supervisor-side dedup state.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use csj_core::paged::FaultPagedTree;
use csj_core::parallel::ParallelAlgo;
use csj_core::{CsjError, JoinConfig, JoinOutput, OutputItem, ResilientJoin, ShardError};
use csj_geom::{Metric, Point};
use csj_index::{rstar::RStarTree, RTreeConfig};
use csj_storage::{FaultPolicy, RetryPolicy};

use crate::frame::{
    fault_code, fnv1a64, read_frame, write_frame, FailFrame, HeartbeatFrame, ReadFrame,
    ResultFrame, TaskFrame, FRAME_RESULT, FRAME_TASK,
};

/// Fanout of the worker-local R*-tree.
const WORKER_FANOUT: usize = 8;

/// Granularity of interruptible sleeps (kill-flag polling).
const SLEEP_SLICE: Duration = Duration::from_millis(5);

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Sleeps `total`, waking early when `kill` is raised. Returns `true`
/// when killed.
fn sleep_interruptible(total: Duration, kill: &AtomicBool) -> bool {
    let mut remaining = total;
    while !remaining.is_zero() {
        // ORDERING: advisory stop flag, polled; no data rides on it.
        if kill.load(Ordering::Relaxed) {
            return true;
        }
        let slice = remaining.min(SLEEP_SLICE);
        std::thread::sleep(slice);
        remaining -= slice;
    }
    // ORDERING: as above.
    kill.load(Ordering::Relaxed)
}

/// Runs the worker protocol over `input`/`output` until the single task
/// is answered (or the task stream is empty).
///
/// # Errors
/// Returns [`CsjError::Shard`] for protocol violations on the input
/// stream. Task-level problems (unsupported dimension, storage retries
/// exhausted) are reported to the supervisor as `Fail` frames, not
/// errors — the supervisor owns the retry policy.
pub fn run_worker<R: Read, W: Write + Send + 'static>(input: R, output: W) -> Result<(), CsjError> {
    run_worker_with_kill(input, output, Arc::new(AtomicBool::new(false)))
}

/// [`run_worker`] with a cooperative kill flag, polled during sleeps —
/// the in-process transport's substitute for `SIGKILL`.
///
/// # Errors
/// As [`run_worker`].
pub fn run_worker_with_kill<R: Read, W: Write + Send + 'static>(
    mut input: R,
    output: W,
    kill: Arc<AtomicBool>,
) -> Result<(), CsjError> {
    let payload = match read_frame(&mut input)? {
        ReadFrame::Frame { frame_type: FRAME_TASK, payload } => payload,
        ReadFrame::Frame { frame_type, .. } => {
            return Err(CsjError::Shard(ShardError::Protocol(format!(
                "expected a task frame, got type {frame_type}"
            ))))
        }
        ReadFrame::Eof => return Ok(()), // no task: clean exit
    };
    let task = TaskFrame::decode(&payload)?;
    let output = Arc::new(Mutex::new(output));
    match task.dim {
        2 => run_task::<2, W>(&task, &output, &kill),
        3 => run_task::<3, W>(&task, &output, &kill),
        d => {
            send_fail(&output, &task, format!("unsupported dimension {d}"));
            Ok(())
        }
    }
}

fn send_fail<W: Write>(output: &Arc<Mutex<W>>, task: &TaskFrame, message: String) {
    let frame = FailFrame { key: task.key.clone(), attempt: task.attempt, message };
    // The supervisor hanging up makes the report moot.
    let _ = write_frame(&mut *lock(output), crate::frame::FRAME_FAIL, &frame.encode());
}

/// A guard around the heartbeat sidecar thread: dropping it stops the
/// beats and joins the thread, so the shared writer's refcount drains
/// and process/thread exit translates into EOF at the supervisor.
struct Heartbeats {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeats {
    fn start<W: Write + Send + 'static>(
        output: &Arc<Mutex<W>>,
        key: Vec<u32>,
        attempt: u32,
        interval: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let out = Arc::clone(output);
        let thread = std::thread::spawn(move || {
            let mut seq: u64 = 0;
            loop {
                if sleep_interruptible(interval, &stop_flag) {
                    return;
                }
                let beat = HeartbeatFrame { key: key.clone(), attempt, seq };
                seq += 1;
                if write_frame(&mut *lock(&out), crate::frame::FRAME_HEARTBEAT, &beat.encode())
                    .is_err()
                {
                    return; // supervisor gone: stop beating
                }
            }
        });
        Heartbeats { stop, thread: Some(thread) }
    }
}

impl Drop for Heartbeats {
    fn drop(&mut self) {
        // ORDERING: advisory stop flag for the sidecar loop; the join
        // below is the actual synchronization point.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn decode_metric(code: u8) -> Option<Metric> {
    match code {
        0 => Some(Metric::Euclidean),
        1 => Some(Metric::Manhattan),
        2 => Some(Metric::Chebyshev),
        _ => None,
    }
}

fn decode_algo(code: u8, window: u32) -> Option<ParallelAlgo> {
    match code {
        0 => Some(ParallelAlgo::Ssj),
        1 => Some(ParallelAlgo::Ncsj),
        2 => Some(ParallelAlgo::Csj(window as usize)),
        _ => None,
    }
}

fn run_task<const D: usize, W: Write + Send + 'static>(
    task: &TaskFrame,
    output: &Arc<Mutex<W>>,
    kill: &Arc<AtomicBool>,
) -> Result<(), CsjError> {
    let Some(metric) = decode_metric(task.metric) else {
        send_fail(output, task, format!("unknown metric code {}", task.metric));
        return Ok(());
    };
    let Some(algo) = decode_algo(task.algo, task.window) else {
        send_fail(output, task, format!("unknown algorithm code {}", task.algo));
        return Ok(());
    };

    let heartbeats = Heartbeats::start(
        output,
        task.key.clone(),
        task.attempt,
        Duration::from_millis(task.heartbeat_ms.max(1)),
    );

    match task.fault {
        fault_code::KILL => {
            // Simulated crash: exit without a result. Dropping the
            // heartbeat guard drains the writer → EOF at the supervisor.
            return Ok(());
        }
        fault_code::STALL => {
            // Simulated hang: stop heartbeating, then go silent. Only
            // the supervisor's liveness detection can reap us.
            drop(heartbeats);
            sleep_interruptible(Duration::from_secs(3600), kill);
            return Ok(());
        }
        _ => {}
    }

    let ids: Vec<u32> = task.points.iter().map(|p| p.id).collect();
    let owned: Vec<bool> = task.points.iter().map(|p| p.owned).collect();
    let local: Vec<Point<D>> = task
        .points
        .iter()
        .map(|p| {
            let mut coords = [0.0; D];
            coords.copy_from_slice(&p.coords);
            Point::new(coords)
        })
        .collect();

    let out = match run_local_join::<D>(task, metric, algo, &local) {
        Ok(out) => out,
        Err(e) => {
            // E.g. storage retries exhausted under an injected pager
            // fault plan: report and let the supervisor decide.
            send_fail(output, task, e.to_string());
            return Ok(());
        }
    };

    if task.fault == fault_code::DELAY {
        // Straggler: alive (heartbeating) but slow.
        if sleep_interruptible(Duration::from_millis(task.fault_param), kill) {
            return Ok(());
        }
    }

    let items = filter_owned_rows(out.items, &ids, &owned);
    let result =
        ResultFrame { key: task.key.clone(), attempt: task.attempt, items, stats: out.stats };
    let mut bytes = crate::frame::encode_frame(FRAME_RESULT, &result.encode());
    if task.fault == fault_code::GARBLE {
        // Corrupt one payload byte after the checksum was computed: the
        // supervisor must reject the frame and retry the shard.
        let mid = 7 + (bytes.len() - 15) / 2;
        bytes[mid] ^= 0x5A;
    }
    drop(heartbeats); // last beat before the result; frames stay whole either way
    let mut sink = lock(output);
    sink.write_all(&bytes)
        .and_then(|()| sink.flush())
        .map_err(|e| CsjError::Shard(ShardError::Protocol(format!("result write: {e}"))))
}

fn run_local_join<const D: usize>(
    task: &TaskFrame,
    metric: Metric,
    algo: ParallelAlgo,
    local: &[Point<D>],
) -> Result<JoinOutput, CsjError> {
    if local.is_empty() {
        return Ok(JoinOutput::default());
    }
    let tree = RStarTree::bulk_load_str(local, RTreeConfig::with_max_fanout(WORKER_FANOUT));
    let join = ResilientJoin::with_config(JoinConfig::new(task.epsilon).with_metric(metric), algo);
    if task.pager_fail_every_read > 0 {
        let retry =
            RetryPolicy { max_attempts: task.pager_attempts.max(1), ..RetryPolicy::default() }
                .with_jitter_seed(fnv1a64(
                    &task.key.iter().flat_map(|k| k.to_le_bytes()).collect::<Vec<u8>>(),
                ));
        let faulty = FaultPagedTree::new(
            &tree,
            FaultPolicy::fail_every_read(task.pager_fail_every_read),
            retry,
        );
        join.run_probed(&faulty, &faulty)
    } else {
        join.run(&tree)
    }
}

/// Applies the ownership filter: maps local record ids to global ids
/// and keeps exactly the rows this shard must emit (module docs give
/// the exactly-once argument). Pure and deterministic — cross links are
/// deduplicated through a [`BTreeSet`] and appended in sorted order.
pub fn filter_owned_rows(items: Vec<OutputItem>, ids: &[u32], owned: &[bool]) -> Vec<OutputItem> {
    let mut rows = Vec::new();
    let mut cross: BTreeSet<(u32, u32)> = BTreeSet::new();
    let keep_pair = |a_local: usize, b_local: usize, cross: &mut BTreeSet<(u32, u32)>| {
        let (ga, gb) = (ids[a_local], ids[b_local]);
        let (oa, ob) = (owned[a_local], owned[b_local]);
        let (min_owned, pair) = if ga <= gb { (oa, (ga, gb)) } else { (ob, (gb, ga)) };
        if min_owned {
            cross.insert(pair);
        }
    };
    for item in items {
        match item {
            OutputItem::Link(a, b) => {
                let (a, b) = (a as usize, b as usize);
                if owned[a] && owned[b] {
                    rows.push(OutputItem::Link(ids[a], ids[b]));
                } else {
                    keep_pair(a, b, &mut cross);
                }
            }
            OutputItem::Group(members) => {
                let owned_members: Vec<u32> = members
                    .iter()
                    .filter(|&&m| owned[m as usize])
                    .map(|&m| ids[m as usize])
                    .collect();
                if owned_members.len() == members.len() {
                    // Fully interior group: compact row survives as-is.
                    rows.push(OutputItem::Group(
                        members.iter().map(|&m| ids[m as usize]).collect(),
                    ));
                    continue;
                }
                if owned_members.len() >= 2 {
                    rows.push(OutputItem::Group(owned_members));
                }
                // Owned↔halo pairs go through the min-id-owned rule;
                // halo↔halo pairs belong to other shards entirely.
                for i in 0..members.len() {
                    for j in (i + 1)..members.len() {
                        let (a, b) = (members[i] as usize, members[j] as usize);
                        if owned[a] != owned[b] {
                            keep_pair(a, b, &mut cross);
                        }
                    }
                }
            }
        }
    }
    rows.extend(cross.into_iter().map(|(a, b)| OutputItem::Link(a, b)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_owned_rows_survive_verbatim() {
        let ids = [10, 11, 12];
        let owned = [true, true, true];
        let items = vec![OutputItem::Link(0, 2), OutputItem::Group(vec![0, 1, 2])];
        let kept = filter_owned_rows(items, &ids, &owned);
        assert_eq!(kept, vec![OutputItem::Link(10, 12), OutputItem::Group(vec![10, 11, 12])]);
    }

    #[test]
    fn min_id_owned_rule_keeps_or_drops_cross_links() {
        let ids = [10, 20];
        // Case 1: we own the smaller id → keep.
        let kept = filter_owned_rows(vec![OutputItem::Link(0, 1)], &ids, &[true, false]);
        assert_eq!(kept, vec![OutputItem::Link(10, 20)]);
        // Case 2: we own only the larger id → the other shard emits it.
        let kept = filter_owned_rows(vec![OutputItem::Link(0, 1)], &ids, &[false, true]);
        assert!(kept.is_empty());
        // Case 3: halo-halo → never ours.
        let kept = filter_owned_rows(vec![OutputItem::Link(0, 1)], &ids, &[false, false]);
        assert!(kept.is_empty());
    }

    #[test]
    fn mixed_group_decomposes_into_owned_subgroup_plus_cross_links() {
        let ids = [1, 2, 9];
        let owned = [true, true, false];
        let kept = filter_owned_rows(vec![OutputItem::Group(vec![0, 1, 2])], &ids, &owned);
        // Owned sub-group {1, 2}; cross pairs (1,9) and (2,9) are kept
        // because the min id of each is owned here.
        assert_eq!(
            kept,
            vec![OutputItem::Group(vec![1, 2]), OutputItem::Link(1, 9), OutputItem::Link(2, 9)]
        );
    }

    #[test]
    fn duplicate_cross_links_collapse_within_a_shard() {
        let ids = [1, 9];
        let owned = [true, false];
        // The same boundary pair surfaces via a link row and a group row.
        let items =
            vec![OutputItem::Link(0, 1), OutputItem::Group(vec![0, 1]), OutputItem::Link(1, 0)];
        let kept = filter_owned_rows(items, &ids, &owned);
        assert_eq!(kept, vec![OutputItem::Link(1, 9)], "emitted once despite three sightings");
    }
}
