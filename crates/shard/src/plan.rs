//! Spatial shard planning: ε-boundary-strip slab partitioning.
//!
//! The dataset is cut into contiguous slabs along axis 0 at point-count
//! quantiles (the MapReduce-style decomposition of McCauley &
//! Silvestri). Each shard *owns* the half-open interval `[lo, hi)` and
//! additionally receives every point within ε of it — the boundary
//! strip — as a non-owned *halo* replica. For any link `(a, b)` with
//! `dist(a, b) ≤ ε` the per-axis projection satisfies
//! `|a₀ − b₀| ≤ ε` under every supported metric, so the shard owning
//! either endpoint is guaranteed to hold both and the shard-local join
//! (lossless by Theorem 1) is guaranteed to discover the link.
//!
//! Exactly-once emission then needs no coordination: a worker keeps a
//! represented link iff its **minimum-id endpoint is owned** (see
//! [`crate::worker`]). Ownership intervals partition the axis, so the
//! minimum endpoint has exactly one owner, and that owner sees the
//! other endpoint in its halo — every cross-shard link is emitted by
//! exactly one shard, every interior link by its only shard.

use csj_geom::Point;

/// One shard of the plan: a task key plus the owned interval on axis 0.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSpec {
    /// Hierarchical task key: `[i]` for the i-th top-level slab,
    /// extended by `0`/`1` per adaptive re-split.
    pub key: Vec<u32>,
    /// Inclusive lower bound of the owned interval (`None` = −∞).
    pub lo: Option<f64>,
    /// Exclusive upper bound of the owned interval (`None` = +∞).
    pub hi: Option<f64>,
}

impl ShardSpec {
    /// The one shard of a non-sharded plan: owns the whole axis.
    pub fn whole() -> Self {
        ShardSpec { key: vec![0], lo: None, hi: None }
    }

    /// `true` when this shard owns a point with axis-0 coordinate `x`.
    pub fn owns(&self, x: f64) -> bool {
        self.lo.is_none_or(|lo| x >= lo) && self.hi.is_none_or(|hi| x < hi)
    }

    /// `true` when `x` falls in the shard's member region: the owned
    /// interval expanded by ε on both sides (the boundary strip).
    pub fn in_strip(&self, x: f64, eps: f64) -> bool {
        self.lo.is_none_or(|lo| x >= lo - eps) && self.hi.is_none_or(|hi| x <= hi + eps)
    }

    /// Splits the owned interval at `mid`, yielding children keyed
    /// `key·0` (`[lo, mid)`) and `key·1` (`[mid, hi)`).
    pub fn split_at(&self, mid: f64) -> (ShardSpec, ShardSpec) {
        let mut left_key = self.key.clone();
        left_key.push(0);
        let mut right_key = self.key.clone();
        right_key.push(1);
        (
            ShardSpec { key: left_key, lo: self.lo, hi: Some(mid) },
            ShardSpec { key: right_key, lo: Some(mid), hi: self.hi },
        )
    }

    /// The dotted form of the task key (`"2.0"`), used in reports,
    /// fault plans and error messages.
    pub fn key_string(&self) -> String {
        key_string(&self.key)
    }
}

/// Formats a task key dotted (`[2, 0]` → `"2.0"`).
pub fn key_string(key: &[u32]) -> String {
    key.iter().map(u32::to_string).collect::<Vec<_>>().join(".")
}

/// Plans `shards` slabs over `points` by axis-0 point-count quantiles.
///
/// Duplicate cut candidates (heavily tied coordinates) are collapsed,
/// so the plan may come back with fewer shards than requested — never
/// with an empty owned interval. With `shards <= 1` or too few points
/// the plan is a single all-owning shard.
pub fn plan_shards<const D: usize>(points: &[Point<D>], shards: usize) -> Vec<ShardSpec> {
    if shards <= 1 || points.len() < 2 {
        return vec![ShardSpec::whole()];
    }
    let mut coords: Vec<f64> = points.iter().map(|p| p.coords()[0]).collect();
    coords.sort_unstable_by(f64::total_cmp);
    let mut cuts: Vec<f64> = Vec::new();
    for i in 1..shards {
        let cut = coords[i * coords.len() / shards];
        // A cut equal to the global minimum would create an empty first
        // slab; collapsing duplicates keeps every owned interval
        // non-empty in point-count terms.
        if cut > coords[0] && cuts.last().is_none_or(|&last| cut > last) {
            cuts.push(cut);
        }
    }
    let mut specs = Vec::with_capacity(cuts.len() + 1);
    for i in 0..=cuts.len() {
        specs.push(ShardSpec {
            key: vec![i as u32],
            lo: (i > 0).then(|| cuts[i - 1]),
            hi: (i < cuts.len()).then(|| cuts[i]),
        });
    }
    specs
}

/// The shard's member list: `(global id, owned)` for every point in the
/// ε-expanded interval, in ascending id order (deterministic).
pub fn shard_membership<const D: usize>(
    points: &[Point<D>],
    spec: &ShardSpec,
    eps: f64,
) -> Vec<(u32, bool)> {
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| spec.in_strip(p.coords()[0], eps))
        .map(|(i, p)| (i as u32, spec.owns(p.coords()[0])))
        .collect()
}

/// A coordinate that splits `spec`'s owned points into two non-empty
/// halves (`[lo, mid)` and `[mid, hi)`), or `None` when the shard is
/// unsplittable (fewer than two owned points, or all coordinates tied).
pub fn split_point<const D: usize>(points: &[Point<D>], spec: &ShardSpec) -> Option<f64> {
    let mut owned: Vec<f64> =
        points.iter().map(|p| p.coords()[0]).filter(|&x| spec.owns(x)).collect();
    if owned.len() < 2 {
        return None;
    }
    owned.sort_unstable_by(f64::total_cmp);
    let median = owned[owned.len() / 2];
    if median > owned[0] {
        return Some(median);
    }
    // Median tied with the minimum: take the first strictly larger
    // coordinate so the left half keeps at least the minimum.
    owned.iter().copied().find(|&x| x > owned[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Vec<Point<2>> {
        (0..n).map(|i| Point::new([i as f64 / n as f64, 0.0])).collect()
    }

    #[test]
    fn ownership_partitions_every_point_exactly_once() {
        let pts = line(100);
        for shards in [1, 2, 3, 7, 100, 200] {
            let plan = plan_shards(&pts, shards);
            for p in &pts {
                let owners = plan.iter().filter(|s| s.owns(p.coords()[0])).count();
                assert_eq!(owners, 1, "point {:?} with {shards} shards", p.coords());
            }
        }
    }

    #[test]
    fn strip_membership_includes_the_halo() {
        let pts = line(100);
        let eps = 0.031;
        let plan = plan_shards(&pts, 4);
        assert!(plan.len() > 1);
        for spec in &plan {
            let members = shard_membership(&pts, spec, eps);
            let owned: Vec<u32> = members.iter().filter(|(_, o)| *o).map(|(i, _)| *i).collect();
            assert!(!owned.is_empty(), "no empty shard");
            // Every point within eps (on axis 0) of an owned point is a member.
            for &oid in &owned {
                for (i, p) in pts.iter().enumerate() {
                    if (p.coords()[0] - pts[oid as usize].coords()[0]).abs() <= eps {
                        assert!(
                            members.iter().any(|(m, _)| *m == i as u32),
                            "shard {} misses neighbor {i} of owned {oid}",
                            spec.key_string()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_duplicates_collapse_to_one_shard() {
        let pts: Vec<Point<2>> = (0..40).map(|_| Point::new([0.5, 0.5])).collect();
        let plan = plan_shards(&pts, 8);
        assert_eq!(plan.len(), 1, "all-tied coordinates cannot be cut");
        assert!(plan[0].owns(0.5));
        assert_eq!(split_point(&pts, &plan[0]), None, "unsplittable");
    }

    #[test]
    fn split_produces_two_nonempty_children() {
        let pts = line(50);
        let spec = ShardSpec::whole();
        let mid = split_point(&pts, &spec).expect("50 distinct coords split fine");
        let (left, right) = spec.split_at(mid);
        assert_eq!(left.key, vec![0, 0]);
        assert_eq!(right.key, vec![0, 1]);
        let left_owned = pts.iter().filter(|p| left.owns(p.coords()[0])).count();
        let right_owned = pts.iter().filter(|p| right.owns(p.coords()[0])).count();
        assert!(left_owned > 0 && right_owned > 0);
        assert_eq!(left_owned + right_owned, pts.len());
    }

    #[test]
    fn key_strings_are_dotted() {
        assert_eq!(key_string(&[2]), "2");
        assert_eq!(key_string(&[2, 0, 1]), "2.0.1");
        assert_eq!(key_string(&[]), "");
    }
}
