//! End-to-end tests of `csj shard-join` with *real worker processes*:
//! the supervisor spawns `csj shard-worker` children over the frame
//! protocol, injects faults, and must still match the sequential join.

use std::path::PathBuf;
use std::process::Command;

fn csj() -> Command {
    Command::new(env!("CARGO_BIN_EXE_csj"))
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("csj_shard_cli_{}_{name}", std::process::id()))
}

fn generate(pts: &PathBuf, n: &str, seed: &str) {
    let status = csj()
        .args(["generate", "clusters2d", "--n", n, "--seed", seed, "--out"])
        .arg(pts)
        .status()
        .expect("spawn csj generate");
    assert!(status.success());
}

/// The sequential join's canonical link lines, via `join` + `expand`
/// (expand prints the distinct expanded links in sorted order — the
/// same canonical form `shard-join --format canonical` emits).
fn sequential_canonical(pts: &PathBuf, eps: &str) -> String {
    let out = temp("seq_rows.txt");
    let status = csj()
        .args(["join"])
        .arg(pts)
        .args(["--eps", eps, "--algo", "csj", "--window", "10", "--out"])
        .arg(&out)
        .status()
        .expect("spawn csj join");
    assert!(status.success());
    let expanded = csj().arg("expand").arg(&out).output().expect("spawn csj expand");
    assert!(expanded.status.success());
    let _ = std::fs::remove_file(&out);
    // `expand` streams links in encounter order; canonical form is the
    // same lines sorted numerically.
    let mut pairs: Vec<(u32, u32)> = String::from_utf8(expanded.stdout)
        .expect("utf8 links")
        .lines()
        .map(|l| {
            let (a, b) = l.split_once(' ').expect("'a b' line");
            (a.parse().expect("id"), b.parse().expect("id"))
        })
        .collect();
    pairs.sort_unstable();
    pairs.iter().map(|(a, b)| format!("{a} {b}\n")).collect()
}

#[test]
fn process_workers_with_faults_match_the_sequential_join() {
    let pts = temp("pts.txt");
    generate(&pts, "600", "9");
    let want = sequential_canonical(&pts, "0.02");
    assert!(!want.is_empty(), "baseline must have links");

    // Three shards; shard 0's first worker is killed, shard 1's first
    // worker straggles and loses to a speculative twin. Recovery must be
    // bit-identical.
    let got = csj()
        .args(["shard-join"])
        .arg(&pts)
        .args([
            "--eps",
            "0.02",
            "--algo",
            "csj",
            "--window",
            "10",
            "--shards",
            "3",
            "--max-attempts",
            "3",
            "--fault-plan",
            "kill:0@1;delay:1@1=400",
            "--speculate-after",
            "0.08",
            "--workers",
            "process",
            "--format",
            "canonical",
        ])
        .output()
        .expect("spawn csj shard-join");
    let stderr = String::from_utf8_lossy(&got.stderr).to_string();
    assert!(got.status.success(), "shard-join failed: {stderr}");
    assert_eq!(
        String::from_utf8(got.stdout).expect("utf8"),
        want,
        "sharded canonical output must equal sequential; stderr: {stderr}"
    );
    assert!(stderr.contains("supervisor:"), "per-shard report expected: {stderr}");
    let _ = std::fs::remove_file(&pts);
}

#[test]
fn kill_beyond_budget_exits_zero_with_a_partial_report() {
    let pts = temp("partial_pts.txt");
    generate(&pts, "500", "12");
    let got = csj()
        .args(["shard-join"])
        .arg(&pts)
        .args([
            "--eps",
            "0.02",
            "--shards",
            "3",
            "--max-attempts",
            "2",
            "--fault-plan",
            "kill:0@1;kill:0@2",
            "--workers",
            "process",
            "--format",
            "canonical",
        ])
        .output()
        .expect("spawn csj shard-join");
    let stderr = String::from_utf8_lossy(&got.stderr);
    assert!(got.status.success(), "a lost shard degrades, it does not fail: {stderr}");
    assert!(stderr.contains("partial result"), "stderr must report the degradation: {stderr}");
    assert!(stderr.contains("shards lost beyond retry budget"), "{stderr}");
    assert!(stderr.contains("LOST"), "the lost shard must be named: {stderr}");
    let _ = std::fs::remove_file(&pts);
}

#[test]
fn shard_worker_rejects_garbage_with_the_shard_exit_code() {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = csj()
        .arg("shard-worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn csj shard-worker");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(b"this is not a task frame")
        .expect("write garbage");
    let out = child.wait_with_output().expect("wait worker");
    assert_eq!(out.status.code(), Some(7), "protocol violations use the shard exit code");
}
