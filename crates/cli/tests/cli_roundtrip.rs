//! End-to-end tests of the `csj` binary: generate → join → expand →
//! verify, exercising the actual executable.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::Command;

fn csj() -> Command {
    Command::new(env!("CARGO_BIN_EXE_csj"))
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("csj_cli_{}_{name}", std::process::id()))
}

#[test]
fn generate_join_expand_roundtrip() {
    let pts = temp("pts.txt");
    let out = temp("out.txt");

    // Generate a small clustered dataset.
    let status = csj()
        .args(["generate", "clusters2d", "--n", "800", "--seed", "5", "--out"])
        .arg(&pts)
        .status()
        .expect("spawn csj generate");
    assert!(status.success());

    // Join it compactly.
    let status = csj()
        .args(["join"])
        .arg(&pts)
        .args(["--eps", "0.02", "--algo", "csj", "--window", "10", "--out"])
        .arg(&out)
        .status()
        .expect("spawn csj join");
    assert!(status.success());

    // Expand the compact output.
    let expanded = csj().arg("expand").arg(&out).output().expect("spawn csj expand");
    assert!(expanded.status.success());
    let compact_links: BTreeSet<(u32, u32)> = String::from_utf8(expanded.stdout)
        .unwrap()
        .lines()
        .map(|l| {
            let mut it = l.split(' ');
            (it.next().unwrap().parse().unwrap(), it.next().unwrap().parse().unwrap())
        })
        .collect();

    // Join with SSJ and compare link sets through the same pipeline.
    let ssj_out = temp("ssj_out.txt");
    let status = csj()
        .args(["join"])
        .arg(&pts)
        .args(["--eps", "0.02", "--algo", "ssj", "--out"])
        .arg(&ssj_out)
        .status()
        .expect("spawn csj join ssj");
    assert!(status.success());
    let expanded = csj().arg("expand").arg(&ssj_out).output().expect("spawn csj expand");
    let ssj_links: BTreeSet<(u32, u32)> = String::from_utf8(expanded.stdout)
        .unwrap()
        .lines()
        .map(|l| {
            let mut it = l.split(' ');
            (it.next().unwrap().parse().unwrap(), it.next().unwrap().parse().unwrap())
        })
        .collect();

    assert!(!compact_links.is_empty(), "join must find links on clustered data");
    assert_eq!(compact_links, ssj_links, "compact and standard joins agree");
    // The compact file is smaller.
    let compact_size = std::fs::metadata(&out).unwrap().len();
    let ssj_size = std::fs::metadata(&ssj_out).unwrap().len();
    assert!(compact_size <= ssj_size, "{compact_size} vs {ssj_size}");

    for p in [&pts, &out, &ssj_out] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn verify_subcommand_passes_on_generated_data() {
    let pts = temp("verify_pts.txt");
    let status =
        csj().args(["generate", "sierpinski2d", "--n", "600", "--out"]).arg(&pts).status().unwrap();
    assert!(status.success());
    let output = csj().arg("verify").arg(&pts).args(["--eps", "0.05"]).output().unwrap();
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("verified"), "{stdout}");
    std::fs::remove_file(&pts).ok();
}

#[test]
fn analyze_reports_dimension() {
    let pts = temp("analyze_pts.txt");
    let status =
        csj().args(["generate", "uniform2d", "--n", "3000", "--out"]).arg(&pts).status().unwrap();
    assert!(status.success());
    let output = csj().arg("analyze").arg(&pts).output().unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("points: 3000"));
    assert!(stdout.contains("fractal dimension"));
    std::fs::remove_file(&pts).ok();
}

#[test]
fn errors_are_reported() {
    // Unknown command.
    let output = csj().arg("frobnicate").output().unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown command"));

    // Missing required flag.
    let output = csj().args(["join", "/nonexistent.txt"]).output().unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--eps"));

    // Unknown dataset.
    let output = csj().args(["generate", "nope", "--out", "/tmp/x"]).output().unwrap();
    assert!(!output.status.success());

    // 3-D file read as 2-D.
    let pts = temp("dim_mismatch.txt");
    std::fs::write(&pts, "0.1 0.2 0.3\n").unwrap();
    let output = csj().arg("analyze").arg(&pts).output().unwrap();
    assert!(!output.status.success());
    std::fs::remove_file(&pts).ok();
}

#[test]
fn persisted_index_join_matches_direct_join() {
    let pts = temp("idx_pts.txt");
    let idx = temp("idx.bin");
    let direct = temp("idx_direct.txt");
    let via_index = temp("idx_via.txt");

    assert!(csj()
        .args(["generate", "sierpinski2d", "--n", "1200", "--out"])
        .arg(&pts)
        .status()
        .unwrap()
        .success());
    assert!(csj().arg("index").arg(&pts).arg("--out").arg(&idx).status().unwrap().success());
    assert!(csj()
        .arg("join")
        .arg(&pts)
        .args(["--eps", "0.03", "--out"])
        .arg(&direct)
        .status()
        .unwrap()
        .success());
    assert!(csj()
        .args(["join", "--index"])
        .arg(&idx)
        .args(["--eps", "0.03", "--out"])
        .arg(&via_index)
        .status()
        .unwrap()
        .success());
    let a = std::fs::read(&direct).unwrap();
    let b = std::fs::read(&via_index).unwrap();
    assert_eq!(a, b, "persisted-index join must be byte-identical");
    assert!(!a.is_empty());

    // A corrupted index file is rejected, not silently misread.
    let mut broken = std::fs::read(&idx).unwrap();
    let mid = broken.len() / 2;
    broken[mid] ^= 0xFF;
    std::fs::write(&idx, &broken).unwrap();
    let output =
        csj().args(["join", "--index"]).arg(&idx).args(["--eps", "0.03"]).output().unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("checksum"));

    for p in [&pts, &idx, &direct, &via_index] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn spatial_join2_lossless_through_cli() {
    let left = temp("j2_left.txt");
    let right = temp("j2_right.txt");
    let std_out = temp("j2_std.txt");
    let win_out = temp("j2_win.txt");

    assert!(csj()
        .args(["generate", "clusters2d", "--n", "500", "--seed", "1", "--out"])
        .arg(&left)
        .status()
        .unwrap()
        .success());
    assert!(csj()
        .args(["generate", "clusters2d", "--n", "500", "--seed", "2", "--out"])
        .arg(&right)
        .status()
        .unwrap()
        .success());

    for (mode, out) in [("standard", &std_out), ("windowed", &win_out)] {
        assert!(csj()
            .arg("join2")
            .arg(&left)
            .arg(&right)
            .args(["--eps", "0.05", "--mode", mode, "--out"])
            .arg(out)
            .status()
            .unwrap()
            .success());
    }

    // Expand both via the left|right line format and compare cross pairs.
    let expand = |path: &std::path::Path| -> BTreeSet<(u32, u32)> {
        let text = std::fs::read_to_string(path).unwrap();
        let mut set = BTreeSet::new();
        for line in text.lines() {
            let (l, r) = line.split_once(" | ").expect("left | right format");
            let ls: Vec<u32> = l.split(' ').map(|t| t.parse().unwrap()).collect();
            let rs: Vec<u32> = r.split(' ').map(|t| t.parse().unwrap()).collect();
            for &a in &ls {
                for &b in &rs {
                    set.insert((a, b));
                }
            }
        }
        set
    };
    let std_links = expand(&std_out);
    let win_links = expand(&win_out);
    assert!(!std_links.is_empty());
    assert_eq!(std_links, win_links, "compact spatial join must be lossless");
    assert!(
        std::fs::metadata(&win_out).unwrap().len() <= std::fs::metadata(&std_out).unwrap().len()
    );

    for p in [&left, &right, &std_out, &win_out] {
        std::fs::remove_file(p).ok();
    }
}
