//! `csj` — the compact-similarity-joins command line.
//!
//! ```text
//! csj generate <dataset> --n <N> [--seed <S>] --out <file>
//! csj analyze  <points-file> [--dim 2|3]
//! csj join     <points-file> --eps <E> [--algo ssj|ncsj|csj] [--window g]
//!              [--metric l2|l1|linf] [--tree rstar|rtree|mtree]
//!              [--bulk str|hilbert|omt|none] [--dim 2|3] [--out <file>]
//!              [--max-links <N>] [--max-bytes <N>] [--deadline <secs>]
//!              [--threads <N>|auto]
//! csj verify   <points-file> --eps <E> [--dim 2|3]
//! csj expand   <output-file>
//! csj shard-join <points-file> --eps <E> [--shards <N>] [--algo ...]
//!              [--max-attempts <N>] [--task-deadline <secs>]
//!              [--speculate-after <secs>] [--fault-plan <plan>]
//!              [--workers process|thread] [--format rows|canonical]
//! csj shard-worker            (internal: spoken to over stdin/stdout)
//! ```
//!
//! Point files are whitespace-separated coordinates, one point per line
//! (`#` comments allowed); join output files use the paper's zero-padded
//! id format. Argument parsing is hand-rolled to keep the dependency
//! footprint at zero beyond the workspace crates.
//!
//! Failures exit with a class-specific code (usage 2, input 3, storage 4,
//! index 5, verification 6, shard 7) — see `error.rs`.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod commands;
mod error;
mod opts;

use std::process::ExitCode;

use error::CliError;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some((command, rest)) = args.split_first() else {
        print_usage();
        return Ok(());
    };
    match command.as_str() {
        "generate" => commands::generate(rest),
        "index" => commands::index(rest),
        "analyze" => commands::analyze(rest),
        "join" => commands::join(rest),
        "join2" => commands::join2(rest),
        "verify" => commands::verify(rest),
        "expand" => commands::expand(rest),
        "shard-join" => commands::shard_join(rest),
        "shard-worker" => commands::shard_worker(rest),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => Err(CliError::usage(format!("unknown command {other:?}; see `csj help`"))),
    }
}

fn print_usage() {
    eprintln!(
        "csj — compact similarity joins (ICDE 2008 reproduction)

commands:
  generate <dataset> --n <N> [--seed <S>] --out <file>
      datasets: uniform2d uniform3d sierpinski2d sierpinski3d clusters2d
                roads mg-county lb-county pacific-nw
  analyze <points-file> [--dim 2|3]
      bounds, density map, fractal dimensions (D0, D2)
  index <points-file> --out <index-file> [--bulk str|hilbert|omt|none] [--dim 2|3]
      build an R*-tree once and persist it (reload with join --index)
  join <points-file> --eps <E> [--algo ssj|ncsj|csj] [--window <g>]
       [--metric l2|l1|linf] [--tree rstar|rtree|mtree]
       [--bulk str|hilbert|omt|none] [--dim 2|3] [--out <file>]
       [--max-links <N>] [--max-bytes <N>] [--deadline <secs>]
       [--threads <N>|auto] [--data-dir <dir>] [--buffer-pages <N>]
      run a similarity self-join; stats go to stderr, rows to --out/stdout.
      --data-dir runs out-of-core: the R*-tree is written to real disk
      pages in <dir>/tree.pages and the join touches at most
      --buffer-pages (default 256) resident nodes plus an async-prefetch
      staging budget; rows are bit-identical to the in-memory join.
      --threads runs the work-stealing parallel join (auto = one worker
      per core); output rows are deterministic regardless of thread count.
      budget flags stop the run early at a task boundary: output stays a
      lossless join over the processed region and stderr reports the
      completed fraction plus extrapolated totals (partial results exit 0)
  join --index <index-file> --eps <E> [--algo ...] [--dim 2|3] [--out <file>]
      same, over a persisted index instead of raw points
  join2 <left-file> <right-file> --eps <E> [--mode standard|compact|windowed]
        [--window <g>] [--metric l2|l1|linf] [--dim 2|3] [--out <file>]
      spatial join of two datasets (links pair a left with a right record)
  verify <points-file> --eps <E> [--dim 2|3]
      run CSJ(10) and machine-check Theorems 1 & 2 against brute force
  expand <output-file>
      expand a compact join output back into individual links
  shard-join <points-file> --eps <E> [--algo ssj|ncsj|csj] [--window <g>]
             [--metric l2|l1|linf] [--dim 2|3] [--out <file>]
             [--shards <N>] [--max-attempts <N>] [--task-deadline <secs>]
             [--speculate-after <secs>] [--heartbeat-ms <N>]
             [--fault-plan <plan>] [--workers process|thread]
             [--format rows|canonical]
      fault-tolerant multi-process join: ε-strip shards run in worker
      processes under a supervisor with heartbeats, bounded retries,
      straggler speculation and adaptive re-split. Shards lost beyond
      the retry budget degrade the run to a partial result (exit 0)
      instead of failing it. --fault-plan injects deterministic worker
      faults, e.g. 'kill:0@1;delay:1@1=300;garble:2@2;stall:1.0@1'.
      --format canonical emits the expanded link set as sorted 'a b'
      lines (identical to the sequential join's when the run completes)
  shard-worker
      internal: run one shard task, speaking the checksummed frame
      protocol on stdin/stdout (launched by shard-join, not by hand)

exit codes: 0 ok (including budget-partial and shard-partial results),
2 usage, 3 input, 4 storage, 5 index, 6 verification, 7 shard"
    );
}
