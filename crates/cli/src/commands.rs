//! The `csj` subcommands.
//!
//! Every command returns a classified [`CliError`] so failures exit with
//! a distinct code (see `crate::error`); nothing in here panics on
//! user-controlled input.

use std::io::Write;
use std::time::{Duration, Instant};

use csj_core::csj::CsjJoin;
use csj_core::parallel::ParallelAlgo;
use csj_core::resilient::ResilientReport;
use csj_core::verify::verify_lossless;
use csj_core::{Completion, JoinConfig, ResilientJoin, RunBudget};
use csj_data::fractal;
use csj_geom::{Metric, Point};
use csj_index::mtree::{MTree, MTreeConfig};
use csj_index::persist::PersistError;
use csj_index::{rstar::RStarTree, rtree::RTree, JoinIndex, RTreeConfig};
use csj_storage::{FileSink, IoOp, OutputSink, OutputWriter, StorageError};

use crate::error::CliError;
use crate::opts::{parse_metric, Opts};

/// Maps a flag-parsing error (`Result<_, String>`) to a usage failure.
trait UsageExt<T> {
    fn usage(self) -> Result<T, CliError>;
}

impl<T> UsageExt<T> for Result<T, String> {
    fn usage(self) -> Result<T, CliError> {
        self.map_err(CliError::Usage)
    }
}

fn read_points_input<const D: usize>(file: &str) -> Result<Vec<Point<D>>, CliError> {
    csj_data::io::read_points(file).map_err(|e| CliError::input(format!("{file}: {e}")))
}

/// `csj generate <dataset> --n N [--seed S] --out FILE`
pub fn generate(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(args, &["n", "seed", "out"]).usage()?;
    let dataset = opts.positional(0, "dataset").usage()?;
    let out = opts.require::<String>("out").usage()?;
    let seed = opts.get_or("seed", 42u64).usage()?;

    // The presets carry their paper sizes; --n overrides.
    let write2 = |pts: Vec<Point<2>>| -> Result<usize, CliError> {
        let n = pts.len();
        csj_data::io::write_points(&out, &pts)
            .map_err(|e| StorageError::io_at(IoOp::Write, out.as_ref(), &e))?;
        Ok(n)
    };
    let write3 = |pts: Vec<Point<3>>| -> Result<usize, CliError> {
        let n = pts.len();
        csj_data::io::write_points(&out, &pts)
            .map_err(|e| StorageError::io_at(IoOp::Write, out.as_ref(), &e))?;
        Ok(n)
    };

    let n_flag = opts.get("n").map(|raw| raw.parse::<usize>());
    let n_of = |default: usize| -> Result<usize, CliError> {
        match &n_flag {
            Some(Ok(n)) => Ok(*n),
            Some(Err(e)) => Err(CliError::usage(format!("bad value for --n: {e}"))),
            None => Ok(default),
        }
    };

    let written = match dataset {
        "uniform2d" => write2(csj_data::uniform::uniform::<2>(n_of(10_000)?, seed))?,
        "uniform3d" => write3(csj_data::uniform::uniform::<3>(n_of(10_000)?, seed))?,
        "sierpinski2d" => write2(csj_data::sierpinski::triangle_2d(n_of(100_000)?, seed))?,
        "sierpinski3d" => write3(csj_data::sierpinski::pyramid_3d(n_of(100_000)?, seed))?,
        "clusters2d" => write2(csj_data::clusters::gaussian_mixture::<2>(
            n_of(10_000)?,
            csj_data::clusters::ClusterConfig::default(),
            seed,
        ))?,
        "roads" => write2(csj_data::roads::road_network(&csj_data::roads::RoadConfig {
            n_points: n_of(50_000)?,
            cores: 4,
            core_sigma: 0.07,
            rural_fraction: 0.3,
            grid_snap_prob: 0.8,
            step: 0.003,
            mean_road_len: 0.05,
            seed,
        }))?,
        "mg-county" => write2(csj_data::roads::mg_county())?,
        "lb-county" => write2(csj_data::roads::lb_county())?,
        "pacific-nw" => {
            write2(csj_data::roads::pacific_nw(n_of(csj_data::roads::PACIFIC_NW_SIZE)?))?
        }
        other => return Err(CliError::usage(format!("unknown dataset {other:?}; see `csj help`"))),
    };
    eprintln!("wrote {written} points to {out}");
    Ok(())
}

/// `csj index <points-file> --out FILE [--bulk str|hilbert|omt|none] [--dim 2|3]`
pub fn index(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(args, &["out", "bulk", "dim"]).usage()?;
    match opts.get_or("dim", 2usize).usage()? {
        2 => index_dim::<2>(&opts),
        3 => index_dim::<3>(&opts),
        d => Err(CliError::usage(format!("unsupported dimension {d} (2 or 3)"))),
    }
}

fn index_dim<const D: usize>(opts: &Opts) -> Result<(), CliError> {
    let file = opts.positional(0, "points-file").usage()?;
    let out = opts.require::<String>("out").usage()?;
    let bulk = opts.get("bulk").unwrap_or("str");
    let points: Vec<Point<D>> = read_points_input(file)?;
    let cfg = RTreeConfig::default();
    let start = Instant::now();
    let tree = match bulk {
        "str" => RStarTree::bulk_load_str(&points, cfg),
        "hilbert" => RStarTree::bulk_load_hilbert(&points, cfg),
        "omt" => RStarTree::bulk_load_omt(&points, cfg),
        "none" => RStarTree::from_points(&points, cfg),
        other => return Err(CliError::usage(format!("unknown --bulk {other:?}"))),
    };
    let built_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    tree.save_to_file(&out).map_err(|e| CliError::Index(format!("{out}: {e}")))?;
    let saved_ms = start.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "indexed {} points in {built_ms:.1} ms; saved (checksummed, atomic) to {out} in {saved_ms:.1} ms",
        points.len(),
    );
    Ok(())
}

/// `csj analyze <points-file> [--dim 2|3]`
pub fn analyze(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(args, &["dim"]).usage()?;
    let file = opts.positional(0, "points-file").usage()?;
    match opts.get_or("dim", 2usize).usage()? {
        2 => analyze_dim::<2>(file),
        3 => analyze_dim::<3>(file),
        d => Err(CliError::usage(format!("unsupported dimension {d} (2 or 3)"))),
    }
}

fn analyze_dim<const D: usize>(file: &str) -> Result<(), CliError> {
    let mut points: Vec<Point<D>> = read_points_input(file)?;
    println!("points: {}", points.len());
    let Some(bounds) = csj_geom::Mbr::from_points(&points) else {
        return Ok(()); // empty input: nothing more to report
    };
    println!("bounds: {:?} .. {:?}", bounds.lo.coords(), bounds.hi.coords());
    // Fractal dimensions are computed on the normalized copy.
    csj_data::normalize_unit_cube(&mut points);
    let d0 = fractal::box_counting_dimension(&points, &[2, 3, 4, 5]);
    let d2 = fractal::correlation_dimension(&points, &[0.01, 0.02, 0.04, 0.08]);
    println!("fractal dimension: D0 (box counting) = {d0:.3}, D2 (correlation) = {d2:.3}");
    if D == 2 {
        let proj: Vec<Point<2>> = points.iter().map(|p| Point::new([p[0], p[1]])).collect();
        println!("density map (log scale):");
        print!("{}", density_map(&proj, 64, 20));
    }
    Ok(())
}

/// `csj join <points-file> --eps E [options]`
pub fn join(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(
        args,
        &[
            "eps",
            "algo",
            "window",
            "metric",
            "tree",
            "bulk",
            "dim",
            "out",
            "index",
            "max-links",
            "max-bytes",
            "deadline",
            "threads",
            "data-dir",
            "buffer-pages",
        ],
    )
    .usage()?;
    match opts.get_or("dim", 2usize).usage()? {
        2 => join_dim::<2>(&opts),
        3 => join_dim::<3>(&opts),
        d => Err(CliError::usage(format!("unsupported dimension {d} (2 or 3)"))),
    }
}

/// Builds the resource budget from `--max-links`, `--max-bytes` and
/// `--deadline <seconds>` (all optional; absent means unlimited).
fn parse_budget(opts: &Opts) -> Result<RunBudget, CliError> {
    let mut budget = RunBudget::unlimited();
    if let Some(raw) = opts.get("max-links") {
        let n: u64 =
            raw.parse().map_err(|e| CliError::usage(format!("bad value for --max-links: {e}")))?;
        budget = budget.with_max_links(n);
    }
    if let Some(raw) = opts.get("max-bytes") {
        let n: u64 =
            raw.parse().map_err(|e| CliError::usage(format!("bad value for --max-bytes: {e}")))?;
        budget = budget.with_max_bytes(n);
    }
    if let Some(raw) = opts.get("deadline") {
        let secs: f64 =
            raw.parse().map_err(|e| CliError::usage(format!("bad value for --deadline: {e}")))?;
        if !(secs >= 0.0 && secs.is_finite()) {
            return Err(CliError::usage(
                "--deadline must be a finite, non-negative number of seconds".to_string(),
            ));
        }
        budget = budget.with_deadline(Duration::from_secs_f64(secs));
    }
    Ok(budget)
}

/// Parses `--threads N|auto`: absent means the sequential resilient
/// runner, `auto` means one worker per available core.
fn parse_threads(opts: &Opts) -> Result<Option<usize>, CliError> {
    match opts.get("threads") {
        None => Ok(None),
        Some("auto") => Ok(Some(csj_core::parallel::default_threads())),
        Some(raw) => {
            let n: usize = raw
                .parse()
                .map_err(|e| CliError::usage(format!("bad value for --threads: {e}")))?;
            if n == 0 {
                return Err(CliError::usage(
                    "--threads must be at least 1 (or `auto`)".to_string(),
                ));
            }
            Ok(Some(n))
        }
    }
}

fn join_dim<const D: usize>(opts: &Opts) -> Result<(), CliError> {
    let eps = opts.require::<f64>("eps").usage()?;
    if !(eps >= 0.0 && eps.is_finite()) {
        return Err(CliError::usage("--eps must be finite and non-negative".to_string()));
    }
    if opts.get("data-dir").is_some() {
        return join_outofcore_dim::<D>(opts, eps);
    }
    if opts.get("buffer-pages").is_some() {
        return Err(CliError::usage(
            "--buffer-pages only applies to out-of-core runs; pass --data-dir too".to_string(),
        ));
    }
    let budget = parse_budget(opts)?;
    let threads = parse_threads(opts)?;
    // Persisted-index mode: skip building entirely.
    if let Some(index_file) = opts.get("index") {
        let algo = opts.get("algo").unwrap_or("csj").to_string();
        let window = opts.get_or("window", 10usize).usage()?;
        let metric = parse_metric(opts.get("metric").unwrap_or("l2")).usage()?;
        let out = opts.get("out").map(str::to_string);
        let start = Instant::now();
        let tree = RStarTree::<D>::load_from_file(index_file).map_err(|e| match e {
            // `load_from_file` already names the path in its I/O errors.
            PersistError::Io(detail) => CliError::Index(detail),
            other => CliError::Index(format!("{index_file}: {other}")),
        })?;
        eprintln!(
            "loaded index with {} records in {:.1} ms",
            tree.num_records(),
            start.elapsed().as_secs_f64() * 1e3
        );
        let width = OutputWriter::<csj_storage::CountingSink>::id_width_for(tree.num_records());
        return run_join(&tree, &algo, eps, window, metric, width, out.as_deref(), budget, threads);
    }
    let file = opts.positional(0, "points-file").usage()?;
    let algo = opts.get("algo").unwrap_or("csj").to_string();
    let window = opts.get_or("window", 10usize).usage()?;
    let metric = parse_metric(opts.get("metric").unwrap_or("l2")).usage()?;
    let tree_kind = opts.get("tree").unwrap_or("rstar").to_string();
    let bulk = opts.get("bulk").unwrap_or("str").to_string();
    let out = opts.get("out").map(str::to_string);

    let points: Vec<Point<D>> = read_points_input(file)?;
    eprintln!("loaded {} points from {file}", points.len());
    let width = OutputWriter::<csj_storage::CountingSink>::id_width_for(points.len());
    let cfg = RTreeConfig::default();

    let build_start = Instant::now();
    macro_rules! finish {
        ($tree:expr) => {{
            let tree = $tree;
            eprintln!(
                "index built in {:.1} ms ({} nodes, height {})",
                build_start.elapsed().as_secs_f64() * 1e3,
                tree.root().map_or(0, |r| tree.subtree_node_count(r)),
                tree.height()
            );
            run_join(&tree, &algo, eps, window, metric, width, out.as_deref(), budget, threads)
        }};
    }
    if points.is_empty() {
        eprintln!("empty input; nothing to join");
        return Ok(());
    }
    match (tree_kind.as_str(), bulk.as_str()) {
        ("rstar", "str") => finish!(RStarTree::bulk_load_str(&points, cfg)),
        ("rstar", "hilbert") => finish!(RStarTree::bulk_load_hilbert(&points, cfg)),
        ("rstar", "omt") => finish!(RStarTree::bulk_load_omt(&points, cfg)),
        ("rstar", "none") => finish!(RStarTree::from_points(&points, cfg)),
        ("rtree", _) => finish!(RTree::from_points(&points, cfg)),
        ("mtree", _) => {
            finish!(MTree::from_points(&points, MTreeConfig::default().with_metric(metric)))
        }
        (t, b) => {
            Err(CliError::usage(format!("unsupported --tree {t:?} / --bulk {b:?} combination")))
        }
    }
}

/// `csj join <points-file> --eps E --data-dir DIR [--buffer-pages N]`:
/// the external-memory path. The tree is written to real disk pages in
/// `DIR/tree.pages` and the join runs with at most `--buffer-pages`
/// nodes resident (plus a small async-prefetch staging budget). Output
/// rows are bit-identical to the in-memory sequential join.
fn join_outofcore_dim<const D: usize>(opts: &Opts, eps: f64) -> Result<(), CliError> {
    use csj_core::outofcore::{JoinVariant, OutOfCoreJoin};
    use csj_index::PagedTree;
    use csj_storage::{FileDisk, RetryPolicy, PAGE_SIZE};

    for flag in ["threads", "index", "max-links", "max-bytes", "deadline"] {
        if opts.get(flag).is_some() {
            return Err(CliError::usage(format!(
                "--{flag} is not supported with --data-dir (out-of-core runs are sequential \
                 and unbudgeted)"
            )));
        }
    }
    // `get` returned Some for the caller to dispatch here.
    let data_dir = opts.get("data-dir").unwrap_or(".");
    let buffer_pages = opts.get_or("buffer-pages", 256usize).usage()?;
    if buffer_pages < 2 {
        return Err(CliError::usage(
            "--buffer-pages must be at least 2 (a leaf-pair probe pins two pages)".to_string(),
        ));
    }
    let variant = match opts.get("algo").unwrap_or("csj") {
        "ssj" => JoinVariant::Ssj,
        "ncsj" => JoinVariant::Ncsj,
        "csj" => JoinVariant::Csj { window: opts.get_or("window", 10usize).usage()? },
        other => {
            return Err(CliError::usage(format!("unknown --algo {other:?} (ssj, ncsj or csj)")))
        }
    };
    let metric = parse_metric(opts.get("metric").unwrap_or("l2")).usage()?;
    let tree_kind = opts.get("tree").unwrap_or("rstar");
    if tree_kind != "rstar" {
        return Err(CliError::usage(format!(
            "--tree {tree_kind:?} has no out-of-core page format; use --tree rstar"
        )));
    }
    let bulk = opts.get("bulk").unwrap_or("str").to_string();
    let out = opts.get("out").map(str::to_string);
    let file = opts.positional(0, "points-file").usage()?;

    let points: Vec<Point<D>> = read_points_input(file)?;
    eprintln!("loaded {} points from {file}", points.len());
    if points.is_empty() {
        eprintln!("empty input; nothing to join");
        return Ok(());
    }
    std::fs::create_dir_all(data_dir)
        .map_err(|e| StorageError::io_at(IoOp::Write, std::path::Path::new(data_dir), &e))?;
    let pages_path = std::path::Path::new(data_dir).join("tree.pages");
    let disk = FileDisk::create(&pages_path)?;

    let cfg_tree = RTreeConfig::default();
    let build_start = Instant::now();
    let tree = match bulk.as_str() {
        // STR streams chunks straight to pages; the other loaders build
        // in memory first and serialize.
        "str" => {
            PagedTree::build_str(&points, cfg_tree, disk, RetryPolicy::default(), buffer_pages)
        }
        "hilbert" => {
            let mem = RStarTree::bulk_load_hilbert(&points, cfg_tree);
            PagedTree::from_core(mem.core(), disk, RetryPolicy::default(), buffer_pages)
        }
        "omt" => {
            let mem = RStarTree::bulk_load_omt(&points, cfg_tree);
            PagedTree::from_core(mem.core(), disk, RetryPolicy::default(), buffer_pages)
        }
        other => {
            return Err(CliError::usage(format!(
                "unsupported --bulk {other:?} for out-of-core runs (str, hilbert or omt)"
            )))
        }
    }?;
    eprintln!(
        "paged index built in {:.1} ms ({} node pages on {}, pool {} pages = {} KiB)",
        build_start.elapsed().as_secs_f64() * 1e3,
        tree.meta().node_pages,
        pages_path.display(),
        buffer_pages,
        buffer_pages * PAGE_SIZE / 1024,
    );

    let width = OutputWriter::<csj_storage::CountingSink>::id_width_for(points.len());
    let join = OutOfCoreJoin::new(variant, eps)
        .with_config(JoinConfig::new(eps).with_metric(metric))
        .with_prefetch_budget(32 * PAGE_SIZE);
    let start = Instant::now();
    let (stats, bytes) = match out.as_deref() {
        Some(path) => {
            let mut writer = OutputWriter::new(FileSink::create(path)?, width);
            let stats = join.run_streaming(&tree, &mut writer, Some(&pages_path))?;
            (stats, writer.finish()?.bytes_written())
        }
        None => {
            let mut writer = OutputWriter::new(StdoutSink::new(), width);
            let stats = join.run_streaming(&tree, &mut writer, Some(&pages_path))?;
            (stats, writer.finish()?.bytes_written())
        }
    };
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    let pg = tree.stats();
    eprintln!(
        "out-of-core {} eps={eps}: {:.1} ms, {} bytes, {} links + {} groups, {} distance \
         computations",
        opts.get("algo").unwrap_or("csj"),
        elapsed,
        bytes,
        stats.links_emitted,
        stats.groups_emitted,
        stats.distance_computations
    );
    eprintln!(
        "buffer pool: {} hits / {} misses ({:.1}% hit rate), {} evictions; disk: {} page reads, \
         {} page writes, {} retries; prefetch supplied {} pages",
        pg.pool.hits,
        pg.pool.misses,
        pg.pool.hit_rate() * 100.0,
        pg.pool.evictions,
        pg.disk_reads,
        pg.disk_writes,
        pg.io_retries,
        pg.prefetch_supplied,
    );
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_join<T: JoinIndex<D> + Sync, const D: usize>(
    tree: &T,
    algo: &str,
    eps: f64,
    window: usize,
    metric: Metric,
    width: usize,
    out: Option<&str>,
    budget: RunBudget,
    threads: Option<usize>,
) -> Result<(), CliError> {
    let parallel_algo = match algo {
        "ssj" => ParallelAlgo::Ssj,
        "ncsj" => ParallelAlgo::Ncsj,
        "csj" => ParallelAlgo::Csj(window),
        other => {
            return Err(CliError::usage(format!("unknown --algo {other:?} (ssj, ncsj or csj)")))
        }
    };
    let cfg = JoinConfig::new(eps).with_metric(metric);

    // With --threads, the work-stealing runner collects rows (its tasks
    // complete out of order, so the deterministic merge happens in
    // memory) and the writer drains them afterwards. Without it, the
    // sequential resilient runner streams rows in constant memory.
    let start = Instant::now();
    let (report, bytes) = match threads {
        Some(n) => {
            let join = csj_core::parallel::ParallelJoin::with_config(cfg, parallel_algo)
                .with_threads(n)
                .with_budget(budget)
                .with_id_width(width);
            let output = join.run(tree);
            let bytes = match out {
                Some(path) => {
                    let mut writer = OutputWriter::new(FileSink::create(path)?, width);
                    output.write_to(&mut writer)?;
                    writer.finish()?.bytes_written()
                }
                None => {
                    let mut writer = OutputWriter::new(StdoutSink::new(), width);
                    output.write_to(&mut writer)?;
                    writer.finish()?.bytes_written()
                }
            };
            eprintln!(
                "scheduler: {} threads, {} tasks ({} stolen, {} split)",
                output.stats.threads_used,
                output.stats.tasks_executed,
                output.stats.tasks_stolen,
                output.stats.tasks_split
            );
            (ResilientReport { stats: output.stats, completion: output.completion }, bytes)
        }
        None => {
            let join = ResilientJoin::with_config(cfg, parallel_algo)
                .with_budget(budget)
                .with_id_width(width);
            match out {
                Some(path) => {
                    let mut writer = OutputWriter::new(FileSink::create(path)?, width);
                    let report = join.run_streaming(tree, &mut writer)?;
                    let sink = writer.finish()?;
                    (report, sink.bytes_written())
                }
                None => {
                    let mut writer = OutputWriter::new(StdoutSink::new(), width);
                    let report = join.run_streaming(tree, &mut writer)?;
                    let sink = writer.finish()?;
                    (report, sink.bytes_written())
                }
            }
        }
    };
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "{algo} eps={eps}: {:.1} ms, {} bytes, {} links + {} groups, {} distance computations",
        elapsed,
        bytes,
        report.stats.links_emitted,
        report.stats.groups_emitted,
        report.stats.distance_computations
    );
    if let Completion::Partial { reason, completed_fraction, estimated_links, estimated_bytes } =
        report.completion
    {
        eprintln!(
            "partial result: {reason} after {:.1}% of root tasks; output above is lossless \
             over the processed region; extrapolated totals ≈ {estimated_links:.0} links, \
             {estimated_bytes:.0} bytes",
            completed_fraction * 100.0
        );
    }
    Ok(())
}

/// `csj shard-join <points-file> --eps E [fault-tolerance options]`
pub fn shard_join(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(
        args,
        &[
            "eps",
            "algo",
            "window",
            "metric",
            "dim",
            "out",
            "shards",
            "max-attempts",
            "task-deadline",
            "speculate-after",
            "heartbeat-ms",
            "fault-plan",
            "workers",
            "format",
        ],
    )
    .usage()?;
    match opts.get_or("dim", 2usize).usage()? {
        2 => shard_join_dim::<2>(&opts),
        3 => shard_join_dim::<3>(&opts),
        d => Err(CliError::usage(format!("unsupported dimension {d} (2 or 3)"))),
    }
}

/// Parses an optional `--<key> <seconds>` duration flag.
fn parse_secs_flag(opts: &Opts, key: &str) -> Result<Option<Duration>, CliError> {
    match opts.get(key) {
        None => Ok(None),
        Some(raw) => {
            let secs: f64 =
                raw.parse().map_err(|e| CliError::usage(format!("bad value for --{key}: {e}")))?;
            if !(secs > 0.0 && secs.is_finite()) {
                return Err(CliError::usage(format!(
                    "--{key} must be a finite, positive number of seconds"
                )));
            }
            Ok(Some(Duration::from_secs_f64(secs)))
        }
    }
}

fn shard_join_dim<const D: usize>(opts: &Opts) -> Result<(), CliError> {
    let file = opts.positional(0, "points-file").usage()?;
    let eps = opts.require::<f64>("eps").usage()?;
    if !(eps >= 0.0 && eps.is_finite()) {
        return Err(CliError::usage("--eps must be finite and non-negative".to_string()));
    }
    let window = opts.get_or("window", 10usize).usage()?;
    let algo = match opts.get("algo").unwrap_or("csj") {
        "ssj" => ParallelAlgo::Ssj,
        "ncsj" => ParallelAlgo::Ncsj,
        "csj" => ParallelAlgo::Csj(window),
        other => {
            return Err(CliError::usage(format!("unknown --algo {other:?} (ssj, ncsj or csj)")))
        }
    };
    let metric = parse_metric(opts.get("metric").unwrap_or("l2")).usage()?;
    let fault_plan: csj_shard::ShardFaultPlan = match opts.get("fault-plan") {
        None => csj_shard::ShardFaultPlan::none(),
        Some(raw) => raw.parse().map_err(CliError::from)?,
    };
    let heartbeat_ms = opts.get_or("heartbeat-ms", 25u64).usage()?;

    let mut join = csj_shard::ShardJoin::new(eps, algo)
        .with_metric(metric)
        .with_shards(opts.get_or("shards", 4usize).usage()?)
        .with_max_attempts(opts.get_or("max-attempts", 3u32).usage()?)
        .with_heartbeat(Duration::from_millis(heartbeat_ms.max(1)), 40)
        .with_fault_plan(fault_plan);
    if let Some(deadline) = parse_secs_flag(opts, "task-deadline")? {
        join = join.with_task_deadline(deadline);
    }
    if let Some(after) = parse_secs_flag(opts, "speculate-after")? {
        join = join.with_speculation(after);
    }

    let points: Vec<Point<D>> = read_points_input(file)?;
    eprintln!("loaded {} points from {file}", points.len());
    let start = Instant::now();
    let run = match opts.get("workers").unwrap_or("process") {
        "process" => {
            let exe = std::env::current_exe().map_err(|e| {
                CliError::Shard(csj_core::ShardError::Spawn(format!(
                    "cannot locate own binary for worker launch: {e}"
                )))
            })?;
            let transport = csj_shard::ProcessTransport::new(exe, vec!["shard-worker".to_string()]);
            join.run(&points, &transport)?
        }
        "thread" => join.run(&points, &csj_shard::InProcessTransport::new())?,
        other => {
            return Err(CliError::usage(format!("unknown --workers {other:?} (process or thread)")))
        }
    };
    let elapsed = start.elapsed().as_secs_f64() * 1e3;

    let width = OutputWriter::<csj_storage::CountingSink>::id_width_for(points.len());
    let out = opts.get("out");
    let bytes = match opts.get("format").unwrap_or("rows") {
        "rows" => match out {
            Some(path) => {
                let mut writer = OutputWriter::new(FileSink::create(path)?, width);
                run.output.write_to(&mut writer)?;
                writer.finish()?.bytes_written()
            }
            None => {
                let mut writer = OutputWriter::new(StdoutSink::new(), width);
                run.output.write_to(&mut writer)?;
                writer.finish()?.bytes_written()
            }
        },
        "canonical" => {
            let text = csj_shard::canonical_link_lines(&run.output);
            match out {
                Some(path) => {
                    let mut sink = FileSink::create(path)?;
                    sink.write_bytes(text.as_bytes())?;
                    sink.flush()?;
                }
                None => {
                    let mut sink = StdoutSink::new();
                    sink.write_bytes(text.as_bytes())?;
                    sink.flush()?;
                }
            }
            text.len() as u64
        }
        other => {
            return Err(CliError::usage(format!("unknown --format {other:?} (rows or canonical)")))
        }
    };

    let stats = &run.output.stats;
    for r in &run.reports {
        eprintln!(
            "shard {}: {} owned points, {} attempt(s), {} retr{}, {} timeout(s){}{}{}",
            r.key,
            r.owned_points,
            r.attempts,
            r.retries,
            if r.retries == 1 { "y" } else { "ies" },
            r.timeouts,
            if r.resplit { ", re-split" } else { "" },
            if r.speculative_win { ", speculative win" } else { "" },
            if r.completed { "" } else { ", LOST" },
        );
    }
    eprintln!(
        "supervisor: {} retries, {} timeouts, {} re-splits, {} speculative wins",
        stats.shard_retries,
        stats.shard_timeouts,
        stats.shard_resplits,
        stats.shard_speculative_wins
    );
    eprintln!(
        "sharded {algo:?} eps={eps}: {elapsed:.1} ms, {bytes} bytes, {} links + {} groups, \
         {} distance computations",
        stats.links_emitted, stats.groups_emitted, stats.distance_computations
    );
    if let Completion::Partial { reason, completed_fraction, estimated_links, estimated_bytes } =
        run.output.completion
    {
        eprintln!(
            "partial result: {reason}; {:.1}% of owned points covered; output above is \
             lossless over the surviving shards; extrapolated totals ≈ {estimated_links:.0} \
             links, {estimated_bytes:.0} bytes",
            completed_fraction * 100.0
        );
    }
    Ok(())
}

/// `csj shard-worker` — internal: run one shard task over stdin/stdout.
pub fn shard_worker(args: &[String]) -> Result<(), CliError> {
    if !args.is_empty() {
        return Err(CliError::usage(
            "shard-worker takes no arguments; it is launched by shard-join".to_string(),
        ));
    }
    csj_shard::run_worker(std::io::stdin().lock(), std::io::stdout()).map_err(CliError::from)
}

/// `csj join2 <left> <right> --eps E [--mode ...] [--window g] [--out FILE]`
pub fn join2(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(args, &["eps", "mode", "window", "metric", "dim", "out"]).usage()?;
    match opts.get_or("dim", 2usize).usage()? {
        2 => join2_dim::<2>(&opts),
        3 => join2_dim::<3>(&opts),
        d => Err(CliError::usage(format!("unsupported dimension {d} (2 or 3)"))),
    }
}

fn join2_dim<const D: usize>(opts: &Opts) -> Result<(), CliError> {
    use csj_core::spatial::{SpatialJoin, SpatialMode};

    let left_file = opts.positional(0, "left-file").usage()?;
    let right_file = opts.positional(1, "right-file").usage()?;
    let eps = opts.require::<f64>("eps").usage()?;
    if !(eps >= 0.0 && eps.is_finite()) {
        return Err(CliError::usage("--eps must be finite and non-negative".to_string()));
    }
    let window = opts.get_or("window", 10usize).usage()?;
    let metric = parse_metric(opts.get("metric").unwrap_or("l2")).usage()?;
    let mode = match opts.get("mode").unwrap_or("windowed") {
        "standard" => SpatialMode::Standard,
        "compact" => SpatialMode::Compact,
        "windowed" => SpatialMode::CompactWindowed(window),
        other => return Err(CliError::usage(format!("unknown --mode {other:?}"))),
    };

    let left: Vec<Point<D>> = read_points_input(left_file)?;
    let right: Vec<Point<D>> = read_points_input(right_file)?;
    eprintln!("loaded {} left and {} right points", left.len(), right.len());
    let lt = RStarTree::bulk_load_str(&left, RTreeConfig::default());
    let rt = RStarTree::bulk_load_str(&right, RTreeConfig::default());

    let start = Instant::now();
    let output = SpatialJoin::new(eps, mode).with_metric(metric).run(&lt, &rt);
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    let width =
        OutputWriter::<csj_storage::CountingSink>::id_width_for(left.len().max(right.len()));
    match opts.get("out") {
        Some(path) => {
            let mut sink = FileSink::create(path)?;
            output.write_to(&mut sink, width)?;
            sink.flush()?;
        }
        None => {
            let mut sink = StdoutSink::new();
            output.write_to(&mut sink, width)?;
            sink.flush()?;
        }
    }
    eprintln!(
        "spatial join eps={eps}: {elapsed:.1} ms, {} rows ({} links + {} groups), {} bytes, {} cross links implied",
        output.items.len(),
        output.num_links(),
        output.num_groups(),
        output.total_bytes(width),
        output.expanded_link_set().len()
    );
    Ok(())
}

/// `csj verify <points-file> --eps E [--dim 2|3]`
pub fn verify(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(args, &["eps", "dim"]).usage()?;
    let file = opts.positional(0, "points-file").usage()?;
    let eps = opts.require::<f64>("eps").usage()?;
    if !(eps >= 0.0 && eps.is_finite()) {
        return Err(CliError::usage("--eps must be finite and non-negative".to_string()));
    }
    match opts.get_or("dim", 2usize).usage()? {
        2 => verify_dim::<2>(file, eps),
        3 => verify_dim::<3>(file, eps),
        d => Err(CliError::usage(format!("unsupported dimension {d} (2 or 3)"))),
    }
}

fn verify_dim<const D: usize>(file: &str, eps: f64) -> Result<(), CliError> {
    let points: Vec<Point<D>> = read_points_input(file)?;
    if points.len() > 50_000 {
        eprintln!(
            "note: verification is O(n²) ground truth over {} points; this may take a while",
            points.len()
        );
    }
    let tree = RStarTree::bulk_load_str(&points, RTreeConfig::default());
    let output = CsjJoin::new(eps).with_window(10).run(&tree);
    let report = verify_lossless(&output, &points, eps, Metric::Euclidean)
        .map_err(|e| CliError::Verify(e.to_string()))?;
    println!(
        "verified: {} true links, represented losslessly by {} rows ({} groups checked)",
        report.true_links, report.rows, report.groups_checked
    );
    Ok(())
}

/// `csj expand <output-file>`: compact rows → individual links on stdout.
pub fn expand(args: &[String]) -> Result<(), CliError> {
    let opts = Opts::parse(args, &[]).usage()?;
    if opts.num_positional() != 1 {
        return Err(CliError::usage("expand takes exactly one <output-file>".to_string()));
    }
    let file = opts.positional(0, "output-file").usage()?;
    let text =
        std::fs::read_to_string(file).map_err(|e| CliError::input(format!("{file}: {e}")))?;
    let stdout = std::io::stdout();
    let mut w = std::io::BufWriter::new(stdout.lock());
    let mut seen = std::collections::BTreeSet::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ids: Result<Vec<u32>, _> = line.split_whitespace().map(str::parse).collect();
        let ids = ids.map_err(|e| CliError::input(format!("{file}: line {}: {e}", lineno + 1)))?;
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                let (a, b) = (ids[i].min(ids[j]), ids[i].max(ids[j]));
                if a != b && seen.insert((a, b)) {
                    if let Err(e) = writeln!(w, "{a} {b}") {
                        // Downstream closed the pipe (e.g. `| head`):
                        // that is a normal way to stop, not an error.
                        if e.kind() == std::io::ErrorKind::BrokenPipe {
                            return Ok(());
                        }
                        return Err(StorageError::io(IoOp::Write, &e).into());
                    }
                }
            }
        }
    }
    match w.flush() {
        Err(e) if e.kind() != std::io::ErrorKind::BrokenPipe => {
            return Err(StorageError::io(IoOp::Flush, &e).into())
        }
        _ => {}
    }
    eprintln!("{} distinct links", seen.len());
    Ok(())
}

/// A byte-counting sink over buffered stdout. A broken pipe (downstream
/// `| head` exiting) quietly stops output instead of failing the join.
struct StdoutSink {
    writer: std::io::BufWriter<std::io::Stdout>,
    bytes: u64,
    pipe_closed: bool,
}

impl StdoutSink {
    fn new() -> Self {
        StdoutSink {
            writer: std::io::BufWriter::new(std::io::stdout()),
            bytes: 0,
            pipe_closed: false,
        }
    }
}

impl OutputSink for StdoutSink {
    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.bytes += bytes.len() as u64;
        if self.pipe_closed {
            return Ok(());
        }
        match self.writer.write_all(bytes) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {
                self.pipe_closed = true;
                Ok(())
            }
            Err(e) => Err(StorageError::io(IoOp::Write, &e)),
        }
    }
    fn bytes_written(&self) -> u64 {
        self.bytes
    }
    fn flush(&mut self) -> Result<(), StorageError> {
        if self.pipe_closed {
            return Ok(());
        }
        match self.writer.flush() {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {
                self.pipe_closed = true;
                Ok(())
            }
            Err(e) => Err(StorageError::io(IoOp::Flush, &e)),
        }
    }
}

/// ASCII density map (shared with the bench harness's Figure 4 view).
fn density_map(points: &[Point<2>], width: usize, height: usize) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let mut counts = vec![0usize; width * height];
    for p in points {
        let x = ((p[0] * width as f64) as usize).min(width - 1);
        let y = ((p[1] * height as f64) as usize).min(height - 1);
        counts[(height - 1 - y) * width + x] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::with_capacity((width + 1) * height);
    for row in 0..height {
        for col in 0..width {
            let c = counts[row * width + col];
            let shade = if c == 0 {
                0
            } else {
                1 + ((c as f64).ln() / (max as f64).ln().max(1e-9) * (SHADES.len() - 2) as f64)
                    .round() as usize
            };
            out.push(SHADES[shade.min(SHADES.len() - 1)] as char);
        }
        out.push('\n');
    }
    out
}
