//! The CLI error type: every failure class maps to a distinct exit code
//! so scripts can tell *why* a run failed without parsing stderr.
//!
//! | code | class | examples |
//! |---|---|---|
//! | 2 | usage | unknown flag, bad `--eps`, unknown algorithm |
//! | 3 | input | unreadable/ malformed points file |
//! | 4 | storage | output file creation/write/flush failed |
//! | 5 | index | persisted index corrupt, truncated or mismatched |
//! | 6 | verify | the lossless-ness machine check found a violation |
//! | 7 | shard | sharded execution failed to launch or speak the worker protocol |

use csj_core::{CsjError, ShardError};
use csj_index::persist::PersistError;
use csj_storage::StorageError;

/// A classified CLI failure. Each variant carries exactly the context
/// needed for a one-line diagnostic naming the offending input.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself is wrong (exit 2).
    Usage(String),
    /// A user-supplied data file is missing or malformed (exit 3).
    Input(String),
    /// The storage layer failed writing or flushing output (exit 4).
    Storage(StorageError),
    /// A persisted index could not be saved or loaded (exit 5). The
    /// message names the offending file where it is known.
    Index(String),
    /// The verification machine check failed (exit 6).
    Verify(String),
    /// Sharded execution could not launch workers or the supervisor
    /// channel broke (exit 7). Worker crashes, stragglers and corrupt
    /// frames are *not* this class — they are retried and at worst
    /// degrade the run to a partial result, which exits 0.
    Shard(ShardError),
}

impl CliError {
    /// The process exit code for this failure class.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Input(_) => 3,
            CliError::Storage(_) => 4,
            CliError::Index(_) => 5,
            CliError::Verify(_) => 6,
            CliError::Shard(_) => 7,
        }
    }

    /// A usage error from a plain message.
    pub fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    /// An input error naming the offending file.
    pub fn input(msg: impl Into<String>) -> Self {
        CliError::Input(msg.into())
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Input(msg) => write!(f, "{msg}"),
            CliError::Storage(e) => write!(f, "storage: {e}"),
            CliError::Index(e) => write!(f, "index: {e}"),
            CliError::Verify(msg) => write!(f, "verification failed: {msg}"),
            CliError::Shard(e) => write!(f, "sharded execution: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<StorageError> for CliError {
    fn from(e: StorageError) -> Self {
        CliError::Storage(e)
    }
}

impl From<PersistError> for CliError {
    fn from(e: PersistError) -> Self {
        CliError::Index(e.to_string())
    }
}

impl From<CsjError> for CliError {
    fn from(e: CsjError) -> Self {
        match e {
            CsjError::Storage(s) => CliError::Storage(s),
            CsjError::Persist(p) => CliError::Index(p.to_string()),
            CsjError::InvalidConfig(msg) => CliError::Usage(msg),
            CsjError::Shard(s) => CliError::Shard(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct() {
        let errs = [
            CliError::usage("x"),
            CliError::input("x"),
            CliError::Storage(StorageError::EmptyGroupRow),
            CliError::from(PersistError::ChecksumMismatch),
            CliError::Verify("x".into()),
            CliError::Shard(ShardError::Spawn("x".into())),
        ];
        let mut codes: Vec<u8> = errs.iter().map(CliError::exit_code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len(), "every class needs its own code");
        assert!(!codes.contains(&0) && !codes.contains(&1), "0/1 are reserved");
    }

    #[test]
    fn csj_error_classification() {
        let e: CliError = CsjError::Storage(StorageError::EmptyGroupRow).into();
        assert_eq!(e.exit_code(), 4);
        let e: CliError = CsjError::Persist(PersistError::ChecksumMismatch).into();
        assert_eq!(e.exit_code(), 5);
        let e: CliError = CsjError::InvalidConfig("bad".into()).into();
        assert_eq!(e.exit_code(), 2);
        let e: CliError = CsjError::Shard(ShardError::Protocol("bad frame".into())).into();
        assert_eq!(e.exit_code(), 7);
    }
}
