//! Flag parsing helpers: a tiny `--key value` parser with typed lookups.

use std::collections::HashMap;

/// Parsed command arguments: leading positionals plus `--key value` pairs.
#[derive(Debug, Default)]
pub struct Opts {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Opts {
    /// Parses `args`. Every `--key` must be followed by a value; unknown
    /// keys are validated against `allowed`.
    pub fn parse(args: &[String], allowed: &[&str]) -> Result<Self, String> {
        let mut out = Opts::default();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if !allowed.contains(&key) {
                    return Err(format!(
                        "unknown flag --{key}; allowed: {}",
                        allowed.iter().map(|a| format!("--{a}")).collect::<Vec<_>>().join(" ")
                    ));
                }
                let value = iter.next().ok_or_else(|| format!("--{key} needs a value"))?;
                if out.flags.insert(key.to_string(), value.clone()).is_some() {
                    return Err(format!("--{key} given twice"));
                }
            } else {
                out.positional.push(arg.clone());
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument, required.
    pub fn positional(&self, i: usize, name: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing <{name}> argument"))
    }

    /// Number of positional arguments.
    pub fn num_positional(&self) -> usize {
        self.positional.len()
    }

    /// An optional string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A required, typed flag.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let raw = self.get(key).ok_or_else(|| format!("--{key} is required"))?;
        raw.parse().map_err(|e| format!("bad value for --{key}: {e}"))
    }

    /// An optional, typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|e| format!("bad value for --{key}: {e}")),
        }
    }
}

/// Parses a metric name.
pub fn parse_metric(name: &str) -> Result<csj_geom::Metric, String> {
    match name {
        "l2" | "euclidean" => Ok(csj_geom::Metric::Euclidean),
        "l1" | "manhattan" => Ok(csj_geom::Metric::Manhattan),
        "linf" | "chebyshev" => Ok(csj_geom::Metric::Chebyshev),
        other => Err(format!("unknown metric {other:?} (use l2, l1 or linf)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positional_and_flags() {
        let o = Opts::parse(&strs(&["file.txt", "--eps", "0.5"]), &["eps"]).unwrap();
        assert_eq!(o.positional(0, "file").unwrap(), "file.txt");
        assert_eq!(o.require::<f64>("eps").unwrap(), 0.5);
        assert_eq!(o.num_positional(), 1);
    }

    #[test]
    fn unknown_flag_rejected() {
        let err = Opts::parse(&strs(&["--bogus", "1"]), &["eps"]).unwrap_err();
        assert!(err.contains("--bogus"));
    }

    #[test]
    fn missing_value_rejected() {
        let err = Opts::parse(&strs(&["--eps"]), &["eps"]).unwrap_err();
        assert!(err.contains("needs a value"));
    }

    #[test]
    fn duplicate_flag_rejected() {
        let err = Opts::parse(&strs(&["--eps", "1", "--eps", "2"]), &["eps"]).unwrap_err();
        assert!(err.contains("twice"));
    }

    #[test]
    fn defaults_and_requirements() {
        let o = Opts::parse(&strs(&[]), &["window"]).unwrap();
        assert_eq!(o.get_or("window", 10usize).unwrap(), 10);
        assert!(o.require::<f64>("eps").is_err());
        assert!(o.positional(0, "file").is_err());
    }

    #[test]
    fn metric_names() {
        assert_eq!(parse_metric("l2").unwrap(), csj_geom::Metric::Euclidean);
        assert_eq!(parse_metric("manhattan").unwrap(), csj_geom::Metric::Manhattan);
        assert!(parse_metric("cosine").is_err());
    }
}
