//! Criterion micro-bench for Figure 8 / Experiment 3: computation vs
//! write cost. Benches each algorithm once with a counting sink
//! (computation only) and once writing the real output file.

use criterion::{criterion_group, criterion_main, Criterion};
use csj_bench::datasets::{DatasetPoints, PaperDataset};
use csj_core::{csj::CsjJoin, ncsj::NcsjJoin, ssj::SsjJoin};
use csj_index::{rstar::RStarTree, RTreeConfig};
use csj_storage::{CountingSink, FileSink, OutputWriter};

fn bench_figure8(c: &mut Criterion) {
    let DatasetPoints::D2(pts) = PaperDataset::MgCounty.generate(5_000) else {
        unreachable!("MG County is 2-D")
    };
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
    let eps = 0.1;
    let path = std::env::temp_dir().join("csj_bench_fig8.txt");

    let mut group = c.benchmark_group("figure8_comp_vs_write");
    group.sample_size(10);
    group.bench_function("ssj_compute", |b| {
        b.iter(|| {
            let mut w = OutputWriter::new(CountingSink::new(), 4);
            SsjJoin::new(eps).run_streaming(&tree, &mut w)
        })
    });
    group.bench_function("ssj_with_file_write", |b| {
        b.iter(|| {
            let mut w = OutputWriter::new(FileSink::create(&path).unwrap(), 4);
            let stats = SsjJoin::new(eps).run_streaming(&tree, &mut w);
            let _ = w.finish();
            stats
        })
    });
    group.bench_function("ncsj_compute", |b| {
        b.iter(|| {
            let mut w = OutputWriter::new(CountingSink::new(), 4);
            NcsjJoin::new(eps).run_streaming(&tree, &mut w)
        })
    });
    group.bench_function("csj10_compute", |b| {
        b.iter(|| {
            let mut w = OutputWriter::new(CountingSink::new(), 4);
            CsjJoin::new(eps).with_window(10).run_streaming(&tree, &mut w)
        })
    });
    group.bench_function("csj10_with_file_write", |b| {
        b.iter(|| {
            let mut w = OutputWriter::new(FileSink::create(&path).unwrap(), 4);
            let stats = CsjJoin::new(eps).with_window(10).run_streaming(&tree, &mut w);
            let _ = w.finish();
            stats
        })
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_figure8);
criterion_main!(benches);
