//! Criterion micro-bench for Figure 6: CSJ(g) cost as the window size g
//! grows. The paper's trend: mild (≈linear) time growth in g.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csj_bench::datasets::{DatasetPoints, PaperDataset};
use csj_core::csj::CsjJoin;
use csj_index::{rstar::RStarTree, RTreeConfig};
use csj_storage::{CountingSink, OutputWriter};

fn bench_figure6(c: &mut Criterion) {
    let DatasetPoints::D2(pts) = PaperDataset::MgCounty.generate(5_000) else {
        unreachable!("MG County is 2-D")
    };
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
    let eps = 0.1;
    let mut group = c.benchmark_group("figure6_window_size");
    group.sample_size(10);
    for g in [1usize, 5, 10, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, &g| {
            b.iter(|| {
                let mut w = OutputWriter::new(CountingSink::new(), 4);
                CsjJoin::new(eps).with_window(g).run_streaming(&tree, &mut w)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure6);
criterion_main!(benches);
