//! Criterion micro-bench for the parallel-join extension: sequential vs
//! multi-threaded SSJ and CSJ(10) on the MG County profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csj_bench::datasets::{DatasetPoints, PaperDataset};
use csj_core::parallel::{ParallelAlgo, ParallelJoin};
use csj_core::ssj::SsjJoin;
use csj_index::{rstar::RStarTree, RTreeConfig};

fn bench_parallel(c: &mut Criterion) {
    let DatasetPoints::D2(pts) = PaperDataset::MgCounty.generate(10_000) else {
        unreachable!("MG County is 2-D")
    };
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
    let eps = 0.05;

    let mut group = c.benchmark_group("parallel_join");
    group.sample_size(10);
    group.bench_function("ssj_sequential", |b| b.iter(|| SsjJoin::new(eps).run(&tree)));
    for threads in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("ssj_parallel", threads), &threads, |b, &t| {
            b.iter(|| ParallelJoin::new(eps, ParallelAlgo::Ssj).with_threads(t).run(&tree))
        });
    }
    group.bench_function("csj10_parallel_4t", |b| {
        b.iter(|| ParallelJoin::new(eps, ParallelAlgo::Csj(10)).with_threads(4).run(&tree))
    });
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
