//! Criterion micro-bench for the §VII ε-grid-order extension: plain vs
//! compact vs windowed grid join, against the tree-based CSJ(10).

use criterion::{criterion_group, criterion_main, Criterion};
use csj_core::csj::CsjJoin;
use csj_core::egrid::GridJoin;
use csj_data::sierpinski;
use csj_index::{rstar::RStarTree, RTreeConfig};
use csj_storage::{CountingSink, OutputWriter};

fn bench_egrid(c: &mut Criterion) {
    let pts = sierpinski::pyramid_3d(8_000, 0x53);
    let eps = 0.0625;
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());

    let mut group = c.benchmark_group("egrid_variants");
    group.sample_size(10);
    group.bench_function("grid", |b| b.iter(|| GridJoin::new(eps).run(&pts)));
    group.bench_function("grid_compact", |b| b.iter(|| GridJoin::new(eps).compact().run(&pts)));
    group.bench_function("grid_windowed", |b| {
        b.iter(|| GridJoin::new(eps).with_window(10).run(&pts))
    });
    group.bench_function("tree_csj10", |b| {
        b.iter(|| {
            let mut w = OutputWriter::new(CountingSink::new(), 4);
            CsjJoin::new(eps).with_window(10).run_streaming(&tree, &mut w)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_egrid);
criterion_main!(benches);
