//! Criterion micro-bench for the §V-A group-shape ablation: MBR vs
//! bounding-ball group shapes inside CSJ(10).

use criterion::{criterion_group, criterion_main, Criterion};
use csj_bench::datasets::{DatasetPoints, PaperDataset};
use csj_core::csj::{CsjJoin, GroupShapeKind};
use csj_index::{rstar::RStarTree, RTreeConfig};
use csj_storage::{CountingSink, OutputWriter};

fn bench_shapes(c: &mut Criterion) {
    let DatasetPoints::D2(pts) = PaperDataset::MgCounty.generate(5_000) else {
        unreachable!("MG County is 2-D")
    };
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
    let eps = 0.1;
    let mut group = c.benchmark_group("ablation_group_shapes");
    group.sample_size(10);
    group.bench_function("mbr", |b| {
        b.iter(|| {
            let mut w = OutputWriter::new(CountingSink::new(), 4);
            CsjJoin::new(eps)
                .with_window(10)
                .with_shape(GroupShapeKind::Mbr)
                .run_streaming(&tree, &mut w)
        })
    });
    group.bench_function("ball", |b| {
        b.iter(|| {
            let mut w = OutputWriter::new(CountingSink::new(), 4);
            CsjJoin::new(eps)
                .with_window(10)
                .with_shape(GroupShapeKind::Ball)
                .run_streaming(&tree, &mut w)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_shapes);
criterion_main!(benches);
