//! Criterion micro-bench for Experiment 4: CSJ(10) on the same data
//! indexed by R-tree (linear / quadratic), R*-tree and M-tree. The paper
//! found no significant cross-structure differences.

use criterion::{criterion_group, criterion_main, Criterion};
use csj_bench::datasets::{DatasetPoints, PaperDataset};
use csj_core::csj::CsjJoin;
use csj_index::mtree::{MTree, MTreeConfig};
use csj_index::{rstar::RStarTree, rtree::RTree, RTreeConfig, SplitStrategy};
use csj_storage::{CountingSink, OutputWriter};

fn bench_experiment4(c: &mut Criterion) {
    let DatasetPoints::D2(pts) = PaperDataset::MgCounty.generate(5_000) else {
        unreachable!("MG County is 2-D")
    };
    let eps = 0.125;
    let rtree_lin =
        RTree::from_points(&pts, RTreeConfig::default().with_split(SplitStrategy::Linear));
    let rtree_quad =
        RTree::from_points(&pts, RTreeConfig::default().with_split(SplitStrategy::Quadratic));
    let rstar = RStarTree::from_points(&pts, RTreeConfig::default());
    let mtree = MTree::from_points(&pts, MTreeConfig::default());

    let mut group = c.benchmark_group("experiment4_tree_structures");
    group.sample_size(10);
    group.bench_function("rtree_linear", |b| {
        b.iter(|| {
            let mut w = OutputWriter::new(CountingSink::new(), 4);
            CsjJoin::new(eps).with_window(10).run_streaming(&rtree_lin, &mut w)
        })
    });
    group.bench_function("rtree_quadratic", |b| {
        b.iter(|| {
            let mut w = OutputWriter::new(CountingSink::new(), 4);
            CsjJoin::new(eps).with_window(10).run_streaming(&rtree_quad, &mut w)
        })
    });
    group.bench_function("rstar", |b| {
        b.iter(|| {
            let mut w = OutputWriter::new(CountingSink::new(), 4);
            CsjJoin::new(eps).with_window(10).run_streaming(&rstar, &mut w)
        })
    });
    group.bench_function("mtree", |b| {
        b.iter(|| {
            let mut w = OutputWriter::new(CountingSink::new(), 4);
            CsjJoin::new(eps).with_window(10).run_streaming(&mtree, &mut w)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_experiment4);
criterion_main!(benches);
