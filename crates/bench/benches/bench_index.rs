//! Criterion micro-bench for the index substrate: dynamic insertion vs
//! the three bulk loaders, plus range-query and kNN throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use csj_bench::datasets::{DatasetPoints, PaperDataset};
use csj_geom::{Metric, Point};
use csj_index::{bulk, rstar::RStarTree, RTreeConfig};

fn bench_index(c: &mut Criterion) {
    let DatasetPoints::D2(pts) = PaperDataset::MgCounty.generate(10_000) else {
        unreachable!("MG County is 2-D")
    };
    let cfg = RTreeConfig::default();

    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.bench_function("rstar_dynamic_insert", |b| b.iter(|| RStarTree::from_points(&pts, cfg)));
    group.bench_function("bulk_str", |b| b.iter(|| bulk::str_pack(&pts, cfg)));
    group.bench_function("bulk_hilbert", |b| b.iter(|| bulk::hilbert_pack(&pts, cfg)));
    group.bench_function("bulk_omt", |b| b.iter(|| bulk::omt_pack(&pts, cfg)));
    group.finish();

    let tree = RStarTree::bulk_load_str(&pts, cfg);
    let queries: Vec<Point<2>> = (0..256)
        .map(|i| Point::new([(i as f64 * 0.613).fract(), (i as f64 * 0.287).fract()]))
        .collect();
    let mut group = c.benchmark_group("index_query");
    group.sample_size(20);
    group.bench_function("range_ball_256q", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &queries {
                hits += tree.core().range_query_ball(q, 0.02, Metric::Euclidean).len();
            }
            hits
        })
    });
    group.bench_function("knn10_256q", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &queries {
                hits += tree.core().knn(q, 10, Metric::Euclidean).len();
            }
            hits
        })
    });
    group.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
