//! Criterion micro-bench for Figure 7 / Experiment 2: scalability in N on
//! Sierpinski3D at ε = 0.125. SSJ's cost grows quadratically with N,
//! the compact joins' near-linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csj_core::{csj::CsjJoin, ncsj::NcsjJoin, ssj::SsjJoin};
use csj_data::sierpinski;
use csj_index::{rstar::RStarTree, RTreeConfig};
use csj_storage::{CountingSink, OutputWriter};

fn bench_figure7(c: &mut Criterion) {
    let eps = 0.125;
    let mut group = c.benchmark_group("figure7_scalability");
    group.sample_size(10);
    for n in [2_000usize, 8_000] {
        let pts = sierpinski::pyramid_3d(n, 0x53);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
        group.bench_with_input(BenchmarkId::new("ssj", n), &n, |b, _| {
            b.iter(|| {
                let mut w = OutputWriter::new(CountingSink::new(), 5);
                SsjJoin::new(eps).run_streaming(&tree, &mut w)
            })
        });
        group.bench_with_input(BenchmarkId::new("ncsj", n), &n, |b, _| {
            b.iter(|| {
                let mut w = OutputWriter::new(CountingSink::new(), 5);
                NcsjJoin::new(eps).run_streaming(&tree, &mut w)
            })
        });
        group.bench_with_input(BenchmarkId::new("csj10", n), &n, |b, _| {
            b.iter(|| {
                let mut w = OutputWriter::new(CountingSink::new(), 5);
                CsjJoin::new(eps).with_window(10).run_streaming(&tree, &mut w)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure7);
criterion_main!(benches);
