//! The paper's four evaluation datasets, scale-aware.

use csj_data::{roads, sierpinski};
use csj_geom::Point;

/// The four datasets of §VI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PaperDataset {
    /// Montgomery County road endpoints, 27K, 2-D (synthetic profile).
    MgCounty,
    /// Long Beach County road endpoints, 36K, 2-D (synthetic profile).
    LbCounty,
    /// Sierpinski pyramid, 100K, 3-D (exact reproduction).
    Sierpinski3d,
    /// Pacific NW TIGER road endpoints, 1.5M, 2-D (synthetic profile).
    PacificNw,
}

/// Points of either dimensionality.
pub enum DatasetPoints {
    /// 2-D datasets.
    D2(Vec<Point<2>>),
    /// 3-D datasets.
    D3(Vec<Point<3>>),
}

impl DatasetPoints {
    /// Number of points.
    pub fn len(&self) -> usize {
        match self {
            DatasetPoints::D2(v) => v.len(),
            DatasetPoints::D3(v) => v.len(),
        }
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PaperDataset {
    /// All four datasets in the paper's presentation order.
    pub const ALL: [PaperDataset; 4] = [
        PaperDataset::MgCounty,
        PaperDataset::LbCounty,
        PaperDataset::Sierpinski3d,
        PaperDataset::PacificNw,
    ];

    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::MgCounty => "MG County",
            PaperDataset::LbCounty => "LBeach",
            PaperDataset::Sierpinski3d => "Sierpinski3D",
            PaperDataset::PacificNw => "Pacific NW",
        }
    }

    /// The paper's dataset size.
    pub fn paper_size(&self) -> usize {
        match self {
            PaperDataset::MgCounty => 27_000,
            PaperDataset::LbCounty => 36_000,
            PaperDataset::Sierpinski3d => 100_000,
            PaperDataset::PacificNw => roads::PACIFIC_NW_SIZE,
        }
    }

    /// Generates `n` points of this dataset's distribution.
    pub fn generate(&self, n: usize) -> DatasetPoints {
        match self {
            PaperDataset::MgCounty => DatasetPoints::D2(roads::road_network(&roads::RoadConfig {
                n_points: n,
                cores: 3,
                core_sigma: 0.08,
                rural_fraction: 0.35,
                grid_snap_prob: 0.75,
                step: 0.004,
                mean_road_len: 0.05,
                seed: 0x4D47,
            })),
            PaperDataset::LbCounty => DatasetPoints::D2(roads::road_network(&roads::RoadConfig {
                n_points: n,
                cores: 2,
                core_sigma: 0.12,
                rural_fraction: 0.2,
                grid_snap_prob: 0.9,
                step: 0.003,
                mean_road_len: 0.06,
                seed: 0x4C42,
            })),
            PaperDataset::Sierpinski3d => DatasetPoints::D3(sierpinski::pyramid_3d(n, 0x53)),
            PaperDataset::PacificNw => DatasetPoints::D2(roads::pacific_nw(n)),
        }
    }

    /// The ε sweep the paper uses for this dataset: nine values
    /// log-spaced from 2⁻⁹ to 2⁻¹ — except Pacific NW, whose figure
    /// spans roughly 0.001–0.01 (2⁻¹⁰ … 2⁻⁷).
    pub fn eps_sweep(&self) -> Vec<f64> {
        match self {
            PaperDataset::PacificNw => (0..4).map(|i| (2.0_f64).powi(-10 + i)).collect(),
            _ => (0..9).map(|i| (2.0_f64).powi(-9 + i)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_sizes() {
        assert_eq!(PaperDataset::MgCounty.paper_size(), 27_000);
        assert_eq!(PaperDataset::PacificNw.paper_size(), 1_500_000);
        assert_eq!(PaperDataset::ALL.len(), 4);
    }

    #[test]
    fn generation_respects_n() {
        for ds in PaperDataset::ALL {
            let pts = ds.generate(500);
            assert_eq!(pts.len(), 500, "{}", ds.name());
        }
    }

    #[test]
    fn eps_sweeps_match_paper() {
        let sweep = PaperDataset::MgCounty.eps_sweep();
        assert_eq!(sweep.len(), 9);
        assert_eq!(sweep[0], 2.0_f64.powi(-9));
        assert_eq!(sweep[8], 0.5);
        let pnw = PaperDataset::PacificNw.eps_sweep();
        assert_eq!(pnw.len(), 4);
        assert!(pnw[0] < 0.001 + 1e-9 && pnw[3] <= 0.01);
    }
}
