//! Experiment harness for the Compact Similarity Joins reproduction.
//!
//! One binary per figure/table of the paper (see DESIGN.md §4):
//!
//! | target | reproduces |
//! |---|---|
//! | `figure4` | Fig. 4 — dataset scatter plots (ASCII density maps + stats) |
//! | `figure5` | Fig. 5 / Exp. 1 — time & output size vs ε, per dataset |
//! | `figure6` | Fig. 6 / Exp. 1b — time & size vs window size g |
//! | `figure7` | Fig. 7 / Exp. 2 — scalability in N (Sierpinski3D, ε = 0.125) |
//! | `figure8` | Fig. 8 / Exp. 3 — compute vs write split, page/cache accesses |
//! | `experiment4` | Exp. 4 — R-tree vs R*-tree vs M-tree |
//! | `ablation_shapes` | §V-A — MBR vs ball group shapes |
//! | `ablation_ordering` | §V-B — insertion-order sensitivity |
//! | `ablation_egrid` | §VII — compact ε-grid-order extension |
//!
//! Every binary prints a TSV table to stdout (commentary on stderr), is
//! deterministic given its seed, and accepts `--scale <f>` to shrink the
//! datasets and `--iters <n>` for timing repetitions.

pub mod args;
pub mod datasets;
pub mod harness;
