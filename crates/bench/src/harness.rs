//! Measurement plumbing: timing, per-algorithm runs, TSV output and the
//! ASCII density maps used for Figure 4.

use std::time::Instant;

use csj_core::csj::CsjJoin;
use csj_core::estimate::BudgetedSsj;
use csj_core::ncsj::NcsjJoin;
use csj_geom::Point;
use csj_index::JoinIndex;
use csj_storage::{CostModel, CountingSink, OutputWriter};

/// The algorithms compared throughout the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// Standard similarity join.
    Ssj,
    /// Naive compact join.
    Ncsj,
    /// Compact join with window `g`.
    Csj(usize),
}

impl Algo {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> String {
        match self {
            Algo::Ssj => "SSJ".to_string(),
            Algo::Ncsj => "N-CSJ".to_string(),
            Algo::Csj(g) => format!("CSJ({g})"),
        }
    }
}

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Algorithm run.
    pub algo: String,
    /// Query range.
    pub eps: f64,
    /// Median wall-clock milliseconds over the iterations (computation
    /// only — output is counted, not written).
    pub time_ms: f64,
    /// Output size in bytes (paper text format).
    pub bytes: f64,
    /// Output rows (links + groups).
    pub rows: f64,
    /// Implied links (for SSJ: actual links).
    pub links: f64,
    /// Groups emitted.
    pub groups: f64,
    /// Distance computations performed.
    pub distance_computations: f64,
    /// `true` if the run hit the budget and values are extrapolated
    /// (the paper's filled markers).
    pub estimated: bool,
}

impl Measurement {
    /// Paper-comparable total time: computation plus the 2008-HDD write
    /// model for the output bytes. The paper's runtimes include writing
    /// the result to disk on 2008 hardware, which dominated for SSJ's
    /// exploded outputs; modern NVMe makes real write time negligible,
    /// so the modeled figure is what reproduces the paper's *shape*.
    pub fn model_total_ms(&self) -> f64 {
        self.time_ms + CostModel::hdd_2008().write_time_ms(self.bytes as u64)
    }
}

/// Spread of repeated wall-clock timings: a single mean hides warm-up
/// effects and scheduler noise, so perf reports carry all three.
#[derive(Clone, Copy, Debug)]
pub struct TimeStats {
    /// Fastest iteration, ms.
    pub min_ms: f64,
    /// Median iteration, ms.
    pub median_ms: f64,
    /// Slowest iteration, ms.
    pub max_ms: f64,
}

impl TimeStats {
    /// Min/median/max of pre-collected wall-clock samples (ms). Callers
    /// that interleave legs round-robin (so frequency drift hits every
    /// leg equally) gather their own samples and summarise them here.
    pub fn from_samples_ms(mut samples: Vec<f64>) -> TimeStats {
        assert!(!samples.is_empty());
        samples.sort_by(f64::total_cmp);
        TimeStats {
            min_ms: samples[0],
            median_ms: samples[samples.len() / 2],
            max_ms: samples[samples.len() - 1],
        }
    }
}

/// Min/median/max of `iters` wall-clock timings of `f`, in milliseconds.
pub fn time_stats_ms(iters: usize, mut f: impl FnMut()) -> TimeStats {
    assert!(iters >= 1);
    let times: Vec<f64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    TimeStats::from_samples_ms(times)
}

/// Median of `iters` wall-clock timings of `f`, in milliseconds.
pub fn median_time_ms(iters: usize, f: impl FnMut()) -> f64 {
    time_stats_ms(iters, f).median_ms
}

/// Runs `algo` on `tree` and measures it. SSJ runs under `ssj_budget`
/// links; when exceeded, byte/link/time values are linearly extrapolated
/// and `estimated` is set.
pub fn measure<T: JoinIndex<D>, const D: usize>(
    tree: &T,
    algo: Algo,
    eps: f64,
    iters: usize,
    id_width: usize,
    ssj_budget: u64,
) -> Measurement {
    match algo {
        Algo::Ssj => {
            let runner = BudgetedSsj::new(eps, ssj_budget);
            // One instrumented run for sizes, then timing runs.
            let est = runner.run(tree, id_width);
            let time_ms = median_time_ms(iters, || {
                let _ = runner.run(tree, id_width);
            });
            let scale = 1.0 / est.fraction_done;
            Measurement {
                algo: algo.name(),
                eps,
                time_ms: time_ms * scale,
                bytes: est.measured_bytes as f64 * scale,
                rows: est.measured_links as f64 * scale,
                links: est.measured_links as f64 * scale,
                groups: 0.0,
                distance_computations: est.stats.distance_computations as f64 * scale,
                estimated: !est.completed,
            }
        }
        Algo::Ncsj => {
            let join = NcsjJoin::new(eps);
            let mut writer = OutputWriter::new(CountingSink::new(), id_width);
            let stats = join.run_streaming(tree, &mut writer).expect("counting sink cannot fail");
            let time_ms = median_time_ms(iters, || {
                let mut w = OutputWriter::new(CountingSink::new(), id_width);
                let _ = join.run_streaming(tree, &mut w);
            });
            Measurement {
                algo: algo.name(),
                eps,
                time_ms,
                bytes: writer.bytes_written() as f64,
                rows: stats.rows_emitted() as f64,
                links: stats.links_emitted as f64,
                groups: stats.groups_emitted as f64,
                distance_computations: stats.distance_computations as f64,
                estimated: false,
            }
        }
        Algo::Csj(g) => {
            let join = CsjJoin::new(eps).with_window(g);
            let mut writer = OutputWriter::new(CountingSink::new(), id_width);
            let stats = join.run_streaming(tree, &mut writer).expect("counting sink cannot fail");
            let time_ms = median_time_ms(iters, || {
                let mut w = OutputWriter::new(CountingSink::new(), id_width);
                let _ = join.run_streaming(tree, &mut w);
            });
            Measurement {
                algo: algo.name(),
                eps,
                time_ms,
                bytes: writer.bytes_written() as f64,
                rows: stats.rows_emitted() as f64,
                links: stats.links_emitted as f64,
                groups: stats.groups_emitted as f64,
                distance_computations: stats.distance_computations as f64,
                estimated: false,
            }
        }
    }
}

/// Prints the TSV header used by all experiment binaries.
pub fn print_header(extra: &[&str]) {
    let mut cols = vec![
        "dataset",
        "n",
        "algo",
        "eps",
        "comp_ms",
        "total_ms_hdd_model",
        "bytes",
        "rows",
        "estimated",
    ];
    cols.extend_from_slice(extra);
    println!("{}", cols.join("\t"));
}

/// Prints one measurement row.
pub fn print_row(dataset: &str, n: usize, m: &Measurement, extra: &[String]) {
    let mut cols = vec![
        dataset.to_string(),
        n.to_string(),
        m.algo.clone(),
        format!("{:.6}", m.eps),
        format!("{:.3}", m.time_ms),
        format!("{:.3}", m.model_total_ms()),
        format!("{:.0}", m.bytes),
        format!("{:.0}", m.rows),
        if m.estimated { "yes".to_string() } else { "no".to_string() },
    ];
    cols.extend_from_slice(extra);
    println!("{}", cols.join("\t"));
}

/// An ASCII density map of 2-D points (Figure 4 reproduction): darker
/// characters mean denser cells.
pub fn density_map(points: &[Point<2>], width: usize, height: usize) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let mut counts = vec![0usize; width * height];
    for p in points {
        let x = ((p[0] * width as f64) as usize).min(width - 1);
        // Flip y so the map prints with the origin at the bottom left.
        let y = ((p[1] * height as f64) as usize).min(height - 1);
        counts[(height - 1 - y) * width + x] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::with_capacity((width + 1) * height);
    for row in 0..height {
        for col in 0..width {
            let c = counts[row * width + col];
            // Log scale: road data has extreme density ratios.
            let shade = if c == 0 {
                0
            } else {
                let t = (c as f64).ln() / (max as f64).ln().max(1e-9);
                1 + (t * (SHADES.len() - 2) as f64).round() as usize
            };
            out.push(SHADES[shade.min(SHADES.len() - 1)] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use csj_index::{rstar::RStarTree, RTreeConfig};

    #[test]
    fn algo_names() {
        assert_eq!(Algo::Ssj.name(), "SSJ");
        assert_eq!(Algo::Ncsj.name(), "N-CSJ");
        assert_eq!(Algo::Csj(10).name(), "CSJ(10)");
    }

    #[test]
    fn median_time_positive() {
        let t = median_time_ms(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t >= 0.0);
    }

    #[test]
    fn time_stats_ordered() {
        let s = time_stats_ms(5, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(s.min_ms >= 0.0);
        assert!(s.min_ms <= s.median_ms);
        assert!(s.median_ms <= s.max_ms);
    }

    #[test]
    fn stats_from_samples() {
        let s = TimeStats::from_samples_ms(vec![3.0, 1.0, 2.0]);
        assert_eq!(s.min_ms, 1.0);
        assert_eq!(s.median_ms, 2.0);
        assert_eq!(s.max_ms, 3.0);
    }

    #[test]
    fn measure_consistency_across_algos() {
        let pts: Vec<Point<2>> = (0..600)
            .map(|i| Point::new([(i % 30) as f64 / 30.0, (i / 30) as f64 / 20.0]))
            .collect();
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let eps = 0.08;
        let ssj = measure(&tree, Algo::Ssj, eps, 1, 3, u64::MAX);
        let ncsj = measure(&tree, Algo::Ncsj, eps, 1, 3, u64::MAX);
        let csj = measure(&tree, Algo::Csj(10), eps, 1, 3, u64::MAX);
        assert!(!ssj.estimated);
        assert!(ssj.links > 0.0);
        assert!(csj.bytes <= ncsj.bytes);
        assert!(ncsj.bytes <= ssj.bytes);
    }

    #[test]
    fn budgeted_ssj_flags_estimate() {
        let pts: Vec<Point<2>> = (0..500)
            .map(|i| Point::new([(i % 25) as f64 / 25.0, (i / 25) as f64 / 20.0]))
            .collect();
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let m = measure(&tree, Algo::Ssj, 0.5, 1, 3, 100);
        assert!(m.estimated);
        assert!(m.links >= 100.0);
    }

    #[test]
    fn density_map_shape_and_shading() {
        let pts = vec![Point::new([0.05, 0.05]); 100];
        let map = density_map(&pts, 10, 5);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines.iter().all(|l| l.len() == 10));
        // The dense cell is at the bottom-left.
        assert_eq!(lines[4].as_bytes()[0], b'@');
        assert_eq!(lines[0].as_bytes()[9], b' ');
    }
}
