//! Minimal flag parsing shared by the experiment binaries.

/// Common experiment options.
#[derive(Clone, Debug)]
pub struct CommonArgs {
    /// Dataset scale factor in `(0, 1]`: each dataset uses
    /// `ceil(scale * paper_size)` points.
    pub scale: f64,
    /// Timing repetitions per configuration (the paper used 25).
    pub iters: usize,
    /// SSJ link budget before switching to estimate mode.
    pub ssj_budget: u64,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs { scale: 1.0, iters: 3, ssj_budget: 300_000_000 }
    }
}

impl CommonArgs {
    /// Parses `--scale <f>`, `--iters <n>`, `--ssj-budget <n>` and
    /// `--quick` (shorthand for `--scale 0.1 --iters 1`) from the process
    /// arguments. Unknown flags abort with a usage message.
    pub fn parse() -> Self {
        let mut out = CommonArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--scale" => out.scale = expect_value(&flag, args.next()),
                "--iters" => out.iters = expect_value(&flag, args.next()),
                "--ssj-budget" => out.ssj_budget = expect_value(&flag, args.next()),
                "--quick" => {
                    out.scale = 0.1;
                    out.iters = 1;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --scale <f in (0,1]>  --iters <n>  --ssj-budget <links>  --quick"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; see --help");
                    std::process::exit(2);
                }
            }
        }
        assert!(out.scale > 0.0 && out.scale <= 1.0, "--scale must be in (0, 1]");
        assert!(out.iters >= 1, "--iters must be at least 1");
        out
    }

    /// Applies the scale factor to a paper dataset size.
    pub fn scaled(&self, paper_size: usize) -> usize {
        ((self.scale * paper_size as f64).ceil() as usize).max(1)
    }
}

fn expect_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T
where
    T::Err: std::fmt::Display,
{
    let raw = value.unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    });
    raw.parse().unwrap_or_else(|e| {
        eprintln!("bad value for {flag}: {e}");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = CommonArgs::default();
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.iters, 3);
    }

    #[test]
    fn scaled_sizes() {
        let a = CommonArgs { scale: 0.1, ..Default::default() };
        assert_eq!(a.scaled(27_000), 2700);
        assert_eq!(a.scaled(5), 1);
        let a = CommonArgs { scale: 1.0, ..Default::default() };
        assert_eq!(a.scaled(27_000), 27_000);
    }
}
