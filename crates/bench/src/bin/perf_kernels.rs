//! Kernel-dispatch and merge-path benchmarks (`BENCH_kernels.json`).
//!
//! Two parts:
//!
//! 1. The SSJ leaf probe three ways — naive scalar loop over records,
//!    chunked AoS kernel, and the dispatched SoA kernel (AVX2/NEON when
//!    the host has it, scalar otherwise or under `CSJ_KERNEL=scalar`).
//!    All three legs must produce identical hit lists and comparison
//!    counts; agreement is asserted, not assumed, so a CI run on either
//!    dispatch path is also a correctness check.
//! 2. The CSJ(10)-vs-N-CSJ single-thread wall-time gap on the three
//!    baseline workloads — the headline number for the merge-path
//!    rebuild (LinkProbe + whole-window slab probe + ring window). Each
//!    leg streams the paper text format to a real file: the paper's
//!    cost model is "the join writes its result", so the compact
//!    format's smaller output is part of the measured work, not an
//!    afterthought. Iterations are interleaved round-robin so clock
//!    frequency drift biases both algorithms equally, and min/median/
//!    max are reported per leg. The pre-rebuild medians (in-memory
//!    counting-sink methodology, `BENCH_parallel.json`) are embedded
//!    for the before/after comparison — the *ratio* is the comparable
//!    figure across the methodology change.
//!
//! ```text
//! perf_kernels [--smoke] [--out <file>] [--n <points>] [--iters <n>]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use csj_bench::harness::{time_stats_ms, TimeStats};
use csj_core::csj::CsjJoin;
use csj_core::ncsj::NcsjJoin;
use csj_core::parallel::{ParallelAlgo, ParallelJoin};
use csj_geom::{DistKernel, KernelPath, Metric, Point, RecordId, SoaBuffer};
use csj_index::{rstar::RStarTree, LeafEntry, RTreeConfig};
use csj_storage::{FileSink, OutputWriter};

struct Args {
    smoke: bool,
    out: String,
    n: usize,
    iters: usize,
}

fn parse_args() -> Args {
    let mut out = Args { smoke: false, out: "BENCH_kernels.json".to_string(), n: 20_000, iters: 3 };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--smoke" => {
                out.smoke = true;
                out.n = 2_000;
                out.iters = 1;
            }
            "--out" => out.out = value("--out"),
            "--n" => out.n = value("--n").parse().expect("--n takes a point count"),
            "--iters" => out.iters = value("--iters").parse().expect("--iters takes a count"),
            "--help" | "-h" => {
                eprintln!("options: --smoke  --out <file>  --n <points>  --iters <n>");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
    }
    out
}

/// Deterministic multiplicative-congruential stream in `[0, 1)`.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        // Numerical Recipes LCG; top 53 bits as a unit float.
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Same skew shape as `perf_baseline`: 80% of the points in one dense
/// cluster, the rest uniform background.
fn skewed_cluster(n: usize, seed: u64) -> Vec<Point<2>> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|i| {
            if i % 5 != 0 {
                Point::new([0.5 + rng.next_f64() * 0.03, 0.5 + rng.next_f64() * 0.03])
            } else {
                Point::new([rng.next_f64(), rng.next_f64()])
            }
        })
        .collect()
}

fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// A probe leg: fills comparison count and hit list for one pass.
type Leg<'a> = &'a dyn Fn(&mut u64, &mut Vec<(usize, usize)>);

/// The three probe legs over an identical dense leaf, with agreement
/// asserted between every pair.
struct Microbench {
    points: usize,
    pairs: u64,
    hits: usize,
    scalar_ms: f64,
    chunked_ms: f64,
    dispatched_ms: f64,
}

fn kernel_microbench(iters: usize, n: usize) -> Microbench {
    let mut rng = Lcg(7);
    let entries: Vec<LeafEntry<2>> = (0..n)
        .map(|i| {
            LeafEntry::new(
                i as RecordId,
                Point::new([rng.next_f64() * 0.05, rng.next_f64() * 0.05]),
            )
        })
        .collect();
    let pts: Vec<Point<2>> = entries.iter().map(|e| e.point).collect();
    let soa = SoaBuffer::from_points(&pts);
    let eps = 0.002;
    let metric = Metric::Euclidean;

    let scalar = |comparisons: &mut u64, hits: &mut Vec<(usize, usize)>| {
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                *comparisons += 1;
                if metric.within(&pts[i], &pts[j], eps) {
                    hits.push((i, j));
                }
            }
        }
    };
    let kernel = DistKernel::new(metric, eps);
    let chunked = |comparisons: &mut u64, hits: &mut Vec<(usize, usize)>| {
        kernel
            .self_join_points::<2, std::convert::Infallible>(&pts, comparisons, |i, j| {
                hits.push((i, j));
                Ok(())
            })
            .expect("infallible");
    };
    let dispatched = |comparisons: &mut u64, hits: &mut Vec<(usize, usize)>| {
        kernel
            .self_join::<2, std::convert::Infallible>(soa.view(), comparisons, |i, j| {
                hits.push((i, j));
                Ok(())
            })
            .expect("infallible");
    };

    // Agreement first: the benchmark is only meaningful if the legs
    // compute the same join.
    let mut reference: Vec<(usize, usize)> = Vec::new();
    let mut ref_comps = 0u64;
    scalar(&mut ref_comps, &mut reference);
    for (name, leg) in [("chunked", &chunked as Leg), ("dispatched", &dispatched)] {
        let mut comps = 0u64;
        let mut hits = Vec::new();
        leg(&mut comps, &mut hits);
        assert_eq!(comps, ref_comps, "{name} leg comparison count diverged from scalar");
        assert_eq!(hits, reference, "{name} leg hit list diverged from scalar");
    }

    let time = |leg: Leg| {
        time_stats_ms(iters, || {
            let mut comps = 0u64;
            let mut hits = Vec::new();
            leg(&mut comps, &mut hits);
            std::hint::black_box((comps, hits));
        })
        .median_ms
    };
    Microbench {
        points: n,
        pairs: (n as u64 * (n as u64 - 1)) / 2,
        hits: reference.len(),
        scalar_ms: time(&scalar),
        chunked_ms: time(&chunked),
        dispatched_ms: time(&dispatched),
    }
}

struct Workload {
    name: &'static str,
    points: Vec<Point<2>>,
    eps: f64,
    /// Single-thread medians from the committed pre-rebuild
    /// `BENCH_parallel.json` (full run, n = 20000): (N-CSJ, CSJ(10)).
    before_ms: (f64, f64),
}

fn workloads(n: usize) -> Vec<Workload> {
    vec![
        Workload {
            name: "uniform",
            points: csj_data::uniform::uniform::<2>(n, 42),
            eps: 0.01,
            before_ms: (10.212, 22.600),
        },
        Workload {
            name: "skewed-cluster",
            points: skewed_cluster(n, 42),
            eps: 0.0004,
            before_ms: (9.261, 22.307),
        },
        Workload {
            name: "sierpinski",
            points: csj_data::sierpinski::triangle_2d(n, 42),
            eps: 0.008,
            before_ms: (12.193, 49.731),
        },
    ]
}

struct GapRow {
    ncsj: TimeStats,
    csj: TimeStats,
    bytes_ncsj: u64,
    bytes_csj: u64,
    links: u64,
    groups_ncsj: u64,
    groups_csj: u64,
    merge_attempts: u64,
    merges_succeeded: u64,
}

/// CSJ(10) and N-CSJ on one workload: an untimed collected run first
/// (lossless guarantee asserted — identical expanded link sets — and
/// the merge counters recorded), then `iters` interleaved rounds of
/// sequential streaming runs writing the paper text format to
/// `target/perf_kernels_out.txt`.
fn merge_gap(w: &Workload, iters: usize) -> GapRow {
    let tree = RStarTree::bulk_load_str(&w.points, RTreeConfig::with_max_fanout(170));

    // Correctness before speed: collect both outputs in memory once and
    // check they imply the same link set.
    let collect = |algo: ParallelAlgo| ParallelJoin::new(w.eps, algo).with_threads(1).run(&tree);
    let ncsj_out = collect(ParallelAlgo::Ncsj);
    let csj_out = collect(ParallelAlgo::Csj(10));
    let link_set = ncsj_out.expanded_link_set();
    assert_eq!(
        csj_out.expanded_link_set(),
        link_set,
        "CSJ(10) and N-CSJ must expand to the same link set ({})",
        w.name
    );

    let out_path = "target/perf_kernels_out.txt";
    std::fs::create_dir_all("target").expect("create target dir");
    let id_width = w.points.len().saturating_sub(1).to_string().len().max(1);
    let mut samples: [Vec<f64>; 2] = [Vec::with_capacity(iters), Vec::with_capacity(iters)];
    let mut bytes = [0u64; 2];
    for _ in 0..iters {
        for (leg, leg_samples) in samples.iter_mut().enumerate() {
            let sink = FileSink::create(out_path).expect("create bench output file");
            let mut wtr = OutputWriter::new(sink, id_width);
            let start = Instant::now();
            let stats = if leg == 0 {
                NcsjJoin::new(w.eps).run_streaming(&tree, &mut wtr)
            } else {
                CsjJoin::new(w.eps).with_window(10).run_streaming(&tree, &mut wtr)
            };
            wtr.finish().expect("flush bench output");
            leg_samples.push(start.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(stats.expect("file sink write"));
            bytes[leg] = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
        }
    }
    let [ncsj_samples, csj_samples] = samples;
    GapRow {
        ncsj: TimeStats::from_samples_ms(ncsj_samples),
        csj: TimeStats::from_samples_ms(csj_samples),
        bytes_ncsj: bytes[0],
        bytes_csj: bytes[1],
        links: link_set.len() as u64,
        groups_ncsj: ncsj_out.stats.groups_emitted,
        groups_csj: csj_out.stats.groups_emitted,
        merge_attempts: csj_out.stats.merge_attempts,
        merges_succeeded: csj_out.stats.merges_succeeded,
    }
}

fn main() {
    let args = parse_args();
    let path = KernelPath::detect();
    eprintln!(
        "# perf_kernels: n={}, iters={}, smoke={}, kernel_path={}",
        args.n,
        args.iters,
        args.smoke,
        path.name()
    );

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"bench\": \"perf_kernels\",\n  \"smoke\": {},\n  \"n\": {},\n  \"iters\": {},\n  \
         \"host_parallelism\": {},\n  \"rustc_version\": \"{}\",\n  \"target_arch\": \"{}\",\n  \
         \"kernel_path\": \"{}\",",
        args.smoke,
        args.n,
        args.iters,
        csj_core::parallel::default_threads(),
        rustc_version(),
        std::env::consts::ARCH,
        path.name(),
    );

    let micro_n = if args.smoke { 500 } else { 3_000 };
    let m = kernel_microbench(args.iters, micro_n);
    let _ = writeln!(
        json,
        "  \"kernel_microbench\": {{\"points\": {}, \"pairs\": {}, \"hits\": {}, \
         \"scalar_ms\": {:.3}, \"chunked_ms\": {:.3}, \"dispatched_ms\": {:.3}, \
         \"chunked_speedup\": {:.3}, \"dispatched_speedup\": {:.3}}},",
        m.points,
        m.pairs,
        m.hits,
        m.scalar_ms,
        m.chunked_ms,
        m.dispatched_ms,
        m.scalar_ms / m.chunked_ms,
        m.scalar_ms / m.dispatched_ms,
    );
    eprintln!(
        "# microbench ({} pts): scalar {:.2} ms, chunked {:.2} ms ({:.2}x), {} {:.2} ms ({:.2}x)",
        m.points,
        m.scalar_ms,
        m.chunked_ms,
        m.scalar_ms / m.chunked_ms,
        path.name(),
        m.dispatched_ms,
        m.scalar_ms / m.dispatched_ms,
    );

    json.push_str(
        "  \"merge_gap_sink\": \"file (paper text format, write time included)\",\n  \
         \"merge_gap\": [\n",
    );
    let all = workloads(args.n);
    for (wi, w) in all.iter().enumerate() {
        let row = merge_gap(w, args.iters);
        // Min-of-N is the noise-robust estimator on hosts with clock
        // frequency drift (the floor is reproducible; the median soaks
        // up whatever the governor was doing). Full per-leg spreads are
        // in the row for anyone who wants the median ratio instead.
        let ratio = row.csj.min_ms / row.ncsj.min_ms;
        let before_ratio = w.before_ms.1 / w.before_ms.0;
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"n\": {}, \"eps\": {}, \"threads\": 1, \
             \"links\": {}, \"groups_ncsj\": {}, \"groups_csj10\": {}, \
             \"bytes_ncsj\": {}, \"bytes_csj10\": {}, \
             \"merge_attempts\": {}, \"merges_succeeded\": {}, \
             \"ncsj_ms_min\": {:.3}, \"ncsj_ms_median\": {:.3}, \"ncsj_ms_max\": {:.3}, \
             \"csj10_ms_min\": {:.3}, \"csj10_ms_median\": {:.3}, \"csj10_ms_max\": {:.3}, \
             \"csj10_over_ncsj\": {:.3}, \"before_ncsj_ms_median\": {:.3}, \
             \"before_csj10_ms_median\": {:.3}, \"before_csj10_over_ncsj\": {:.3}}}{}",
            w.name,
            w.points.len(),
            w.eps,
            row.links,
            row.groups_ncsj,
            row.groups_csj,
            row.bytes_ncsj,
            row.bytes_csj,
            row.merge_attempts,
            row.merges_succeeded,
            row.ncsj.min_ms,
            row.ncsj.median_ms,
            row.ncsj.max_ms,
            row.csj.min_ms,
            row.csj.median_ms,
            row.csj.max_ms,
            ratio,
            w.before_ms.0,
            w.before_ms.1,
            before_ratio,
            if wi + 1 == all.len() { "" } else { "," },
        );
        eprintln!(
            "# {:<15} N-CSJ {:.1} ms vs CSJ(10) {:.1} ms: {ratio:.2}x (was {before_ratio:.2}x)",
            w.name, row.ncsj.median_ms, row.csj.median_ms,
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.out, &json).expect("write benchmark output");
    eprintln!("# wrote {}", args.out);
}
