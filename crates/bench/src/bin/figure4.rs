//! Figure 4 reproduction: scatter plots of the four datasets, rendered
//! as ASCII density maps plus summary statistics.

use csj_bench::args::CommonArgs;
use csj_bench::datasets::{DatasetPoints, PaperDataset};
use csj_bench::harness::density_map;
use csj_geom::Point;

fn main() {
    let args = CommonArgs::parse();
    for ds in PaperDataset::ALL {
        let n = args.scaled(ds.paper_size());
        let points = ds.generate(n);
        println!("=== {} (n = {}) ===", ds.name(), n);
        match &points {
            DatasetPoints::D2(pts) => {
                summarize(pts);
                println!("{}", density_map(pts, 72, 24));
            }
            DatasetPoints::D3(pts) => {
                // Project onto (x, y) like the paper's 2-D rendering of
                // the pyramid.
                let proj: Vec<Point<2>> = pts.iter().map(|p| Point::new([p[0], p[1]])).collect();
                summarize3(pts);
                println!("{}", density_map(&proj, 72, 24));
            }
        }
    }
}

fn summarize(pts: &[Point<2>]) {
    let (mut cx, mut cy) = (0.0, 0.0);
    for p in pts {
        cx += p[0];
        cy += p[1];
    }
    let n = pts.len() as f64;
    println!(
        "centroid = ({:.3}, {:.3})  occupancy_skew(20x20 top decile) = {:.2}",
        cx / n,
        cy / n,
        skew(pts)
    );
}

fn summarize3(pts: &[Point<3>]) {
    let mut c = [0.0; 3];
    for p in pts {
        for d in 0..3 {
            c[d] += p[d];
        }
    }
    let n = pts.len() as f64;
    println!("centroid = ({:.3}, {:.3}, {:.3})", c[0] / n, c[1] / n, c[2] / n);
}

fn skew(pts: &[Point<2>]) -> f64 {
    let grid = 20usize;
    let mut counts = vec![0usize; grid * grid];
    for p in pts {
        let x = ((p[0] * grid as f64) as usize).min(grid - 1);
        let y = ((p[1] * grid as f64) as usize).min(grid - 1);
        counts[y * grid + x] += 1;
    }
    counts.sort_unstable_by(|a, b| b.cmp(a));
    counts.iter().take(grid * grid / 10).sum::<usize>() as f64 / pts.len() as f64
}
