//! §V-B ablation: insertion-order sensitivity of the grouping.
//!
//! Two parts:
//!
//! 1. The paper's worked example — 10 points on a line, ε = 7, links
//!    added in sorted order — reproduced exactly, showing the ~50%
//!    redundancy a bad order causes.
//! 2. The same dataset indexed four ways (dynamic R*-tree, STR, Hilbert
//!    and OMT bulk loads). Each ordering changes which links CSJ(g) sees
//!    first, and therefore the output size; the spread measures how much
//!    the grouping depends on the traversal order.

use csj_bench::args::CommonArgs;
use csj_bench::datasets::{DatasetPoints, PaperDataset};
use csj_core::csj::CsjJoin;
use csj_core::group::{GroupWindow, LinkProbe, MbrShape, OpenGroup};
use csj_geom::{Metric, Point};
use csj_index::{rstar::RStarTree, RTreeConfig};
use csj_storage::{CountingSink, OutputWriter};

fn main() {
    let args = CommonArgs::parse();
    line_example();
    tree_order_comparison(&args);
}

/// Part 1: the §V-B example. Points 1..10 on the real line, ε = 7.
fn line_example() {
    let metric = Metric::Euclidean;
    let eps = 7.0;
    let points: Vec<Point<1>> = (1..=10).map(|i| Point::new([i as f64])).collect();

    // Links in sorted order (1-2, 1-3, …, 9-10), merged greedily into an
    // unbounded window — the paper's "first group in which they fit".
    let mut window: GroupWindow<MbrShape<1>, 1> = GroupWindow::new(usize::MAX);
    let mut attempts = 0u64;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            if metric.distance(&points[i], &points[j]) <= eps {
                let (a, b) = (i as u32 + 1, j as u32 + 1);
                let link = LinkProbe::new(a, &points[i], b, &points[j]);
                if !window.try_merge_link(&link, eps, metric, &mut attempts) {
                    let g = OpenGroup::from_link(a, &points[i], b, &points[j], metric);
                    let _ = window.push(g);
                }
            }
        }
    }
    let groups: Vec<Vec<u32>> = window.drain().map(|g| g.into_sorted_members()).collect();
    println!("# §V-B line example (eps = 7): sorted-order insertion");
    let total: usize = groups.iter().map(Vec::len).sum();
    for g in &groups {
        println!("#   group: {g:?}");
    }
    println!("# groups = {}, total members written = {total}", groups.len());
    println!(
        "# optimal for this instance: 3 groups, 20 members (e.g. {{1..8}}, {{2,9}}, {{3..10}})"
    );
}

/// Part 2: the traversal order induced by each index build.
fn tree_order_comparison(args: &CommonArgs) {
    let ds = PaperDataset::MgCounty;
    let n = args.scaled(ds.paper_size());
    let DatasetPoints::D2(pts) = ds.generate(n) else { unreachable!("MG County is 2-D") };
    let width = OutputWriter::<CountingSink>::id_width_for(n);
    let eps = 0.1;

    println!("build\teps\tbytes\tgroups\tmerges_succeeded");
    let builds: [(&str, RStarTree<2>); 4] = [
        ("dynamic-r*", RStarTree::from_points(&pts, RTreeConfig::default())),
        ("bulk-str", RStarTree::bulk_load_str(&pts, RTreeConfig::default())),
        ("bulk-hilbert", RStarTree::bulk_load_hilbert(&pts, RTreeConfig::default())),
        ("bulk-omt", RStarTree::bulk_load_omt(&pts, RTreeConfig::default())),
    ];
    for (name, tree) in &builds {
        let join = CsjJoin::new(eps).with_window(10);
        let mut writer = OutputWriter::new(CountingSink::new(), width);
        let stats = join.run_streaming(tree, &mut writer).expect("counting sink cannot fail");
        println!(
            "{name}\t{eps:.3}\t{}\t{}\t{}",
            writer.bytes_written(),
            stats.groups_emitted,
            stats.merges_succeeded
        );
    }
}
