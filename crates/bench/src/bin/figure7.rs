//! Figure 7 / Experiment 2: scalability in the number of data points.
//!
//! Sierpinski3D draws of increasing size, fixed ε = 0.125. SSJ's output
//! (and time) grows quadratically — the output explosion — while N-CSJ
//! and CSJ(10) stay near-linear.

use csj_bench::args::CommonArgs;
use csj_bench::harness::{measure, print_header, print_row, Algo};
use csj_data::sierpinski;
use csj_index::{rstar::RStarTree, RTreeConfig};
use csj_storage::{CountingSink, OutputWriter};

/// The paper sweeps up to 5·10⁵ points.
const SIZES: [usize; 6] = [10_000, 25_000, 50_000, 100_000, 250_000, 500_000];
const EPS: f64 = 0.125;

fn main() {
    let args = CommonArgs::parse();
    print_header(&[]);
    for paper_n in SIZES {
        let n = args.scaled(paper_n);
        let pts = sierpinski::pyramid_3d(n, 0x53);
        let width = OutputWriter::<CountingSink>::id_width_for(n);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
        for algo in [Algo::Ssj, Algo::Ncsj, Algo::Csj(10)] {
            let m = measure(&tree, algo, EPS, args.iters, width, args.ssj_budget);
            print_row("Sierpinski3D", n, &m, &[]);
        }
    }
}
