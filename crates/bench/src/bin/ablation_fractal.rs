//! The paper's stated future-work question (§VIII): response time and
//! output as a function of the query range ε *and* of the intrinsic
//! ("fractal") dimensionality of the data.
//!
//! For datasets of known intrinsic dimension — a line (1), the Sierpinski
//! triangle (log₂3 ≈ 1.585), uniform 2-D (2), the Sierpinski pyramid (2,
//! embedded in 3-D) and uniform 3-D (3) — this binary:
//!
//! 1. estimates D0 (box counting) and D2 (correlation dimension);
//! 2. sweeps ε and fits the power-law exponent of the SSJ output
//!    (`ln links` vs `ln ε`), which theory says should equal D2;
//! 3. reports CSJ(10)'s cost alongside, showing the compact join's
//!    response curve is much flatter than SSJ's.

use csj_bench::args::CommonArgs;
use csj_bench::harness::{measure, Algo};
use csj_core::csj::CsjJoin;
use csj_data::fractal::{box_counting_dimension, correlation_dimension, lsq_slope};
use csj_data::{sierpinski, uniform::uniform};
use csj_geom::Point;
use csj_index::{rstar::RStarTree, JoinIndex, RTreeConfig};
use csj_storage::{CountingSink, OutputWriter};

fn main() {
    let args = CommonArgs::parse();
    let n = args.scaled(30_000);

    println!("dataset\tembed_dim\ttheory_dim\tD0_boxcount\tD2_correlation\tssj_output_exponent\tcsj_time_ratio_eps_x8");
    let line: Vec<Point<2>> = (0..n).map(|i| Point::new([i as f64 / n as f64, 0.5])).collect();
    run("line", 2, 1.0, &line, &args);
    run("sierpinski-triangle", 2, 1.585, &sierpinski::triangle_2d(n, 7), &args);
    run("uniform-2d", 2, 2.0, &uniform::<2>(n, 7), &args);
    run3("sierpinski-pyramid", 3, 2.0, &sierpinski::pyramid_3d(n, 7), &args);
    run3("uniform-3d", 3, 3.0, &uniform::<3>(n, 7), &args);
}

fn radii() -> Vec<f64> {
    vec![0.01, 0.02, 0.04, 0.08]
}

fn eps_sweep() -> Vec<f64> {
    (0..5).map(|i| 0.01 * 2f64.powi(i)).collect() // 0.01 .. 0.16
}

fn run(name: &str, embed: usize, theory: f64, pts: &[Point<2>], args: &CommonArgs) {
    let d0 = box_counting_dimension(pts, &[2, 3, 4, 5]);
    let d2 = correlation_dimension(pts, &radii());
    let tree = RStarTree::bulk_load_str(pts, RTreeConfig::default());
    report(name, embed, theory, d0, d2, &tree, args);
}

fn run3(name: &str, embed: usize, theory: f64, pts: &[Point<3>], args: &CommonArgs) {
    let d0 = box_counting_dimension(pts, &[2, 3, 4]);
    let d2 = correlation_dimension(pts, &radii());
    let tree = RStarTree::bulk_load_str(pts, RTreeConfig::default());
    report(name, embed, theory, d0, d2, &tree, args);
}

fn report<T: JoinIndex<D>, const D: usize>(
    name: &str,
    embed: usize,
    theory: f64,
    d0: f64,
    d2: f64,
    tree: &T,
    args: &CommonArgs,
) {
    let width = OutputWriter::<CountingSink>::id_width_for(tree.num_records());
    // SSJ output vs eps: fit ln(links) = D2 * ln(eps) + c.
    let mut ln_eps = Vec::new();
    let mut ln_links = Vec::new();
    for eps in eps_sweep() {
        let m = measure(tree, Algo::Ssj, eps, 1, width, args.ssj_budget);
        if m.links > 0.0 {
            ln_eps.push(eps.ln());
            ln_links.push(m.links.ln());
        }
    }
    let exponent = lsq_slope(&ln_eps, &ln_links);

    // CSJ response flatness: time at eps * 8 over time at eps.
    let t_lo = time_csj(tree, 0.02, args);
    let t_hi = time_csj(tree, 0.16, args);
    let ratio = t_hi / t_lo.max(1e-9);

    println!("{name}\t{embed}\t{theory:.3}\t{d0:.3}\t{d2:.3}\t{exponent:.3}\t{ratio:.2}");
}

fn time_csj<T: JoinIndex<D>, const D: usize>(tree: &T, eps: f64, args: &CommonArgs) -> f64 {
    csj_bench::harness::median_time_ms(args.iters, || {
        let mut w = OutputWriter::new(CountingSink::new(), 5);
        let _ = CsjJoin::new(eps).with_window(10).run_streaming(tree, &mut w);
    })
}
