//! §V-A ablation: MBR vs bounding-ball group shapes.
//!
//! The paper argues for hyper-rectangles (constant-time updates, shapes
//! shared with the index) over circles (more area per group, expensive
//! optimal centers). This ablation quantifies the trade on MG County:
//! output bytes, groups created, merge success rate and runtime for both
//! shapes across the ε sweep.

use csj_bench::args::CommonArgs;
use csj_bench::datasets::{DatasetPoints, PaperDataset};
use csj_bench::harness::median_time_ms;
use csj_core::csj::{CsjJoin, GroupShapeKind};
use csj_index::{rstar::RStarTree, RTreeConfig};
use csj_storage::{CountingSink, OutputWriter};

fn main() {
    let args = CommonArgs::parse();
    let ds = PaperDataset::MgCounty;
    let n = args.scaled(ds.paper_size());
    let DatasetPoints::D2(pts) = ds.generate(n) else { unreachable!("MG County is 2-D") };
    let width = OutputWriter::<CountingSink>::id_width_for(n);
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());

    println!("shape\teps\ttime_ms\tbytes\tgroups\tmerge_attempts\tmerges_succeeded");
    for eps in ds.eps_sweep() {
        for (label, join) in [
            ("mbr", CsjJoin::new(eps).with_window(10).with_shape(GroupShapeKind::Mbr)),
            ("mbr-tight", CsjJoin::new(eps).with_window(10).with_tight_groups()),
            ("ball", CsjJoin::new(eps).with_window(10).with_shape(GroupShapeKind::Ball)),
        ] {
            let mut writer = OutputWriter::new(CountingSink::new(), width);
            let stats = join.run_streaming(&tree, &mut writer).expect("counting sink cannot fail");
            let time_ms = median_time_ms(args.iters, || {
                let mut w = OutputWriter::new(CountingSink::new(), width);
                let _ = join.run_streaming(&tree, &mut w);
            });
            println!(
                "{label}\t{eps:.6}\t{time_ms:.3}\t{}\t{}\t{}\t{}",
                writer.bytes_written(),
                stats.groups_emitted,
                stats.merge_attempts,
                stats.merges_succeeded
            );
        }
    }
}
