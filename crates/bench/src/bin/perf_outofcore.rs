//! Out-of-core join benchmark (`BENCH_outofcore.json`).
//!
//! The tentpole measurement for the external-memory engine: the paper's
//! Pacific-NW-scale road network (1.5M points) is bulk-loaded straight
//! onto real disk pages (`PagedTree::build_str` over a `FileDisk`),
//! then N-CSJ and CSJ(10) run with the buffer pool capped at a shrinking
//! fraction of the index footprint — 1/64 down to 1/8 — with async
//! prefetch on. For each pool size the run reports throughput
//! (encoded links/sec) and the page-fault curve (pool misses,
//! evictions, physical reads), plus the in-memory engine's run as the
//! identity/throughput reference.
//!
//! Every out-of-core leg must report byte-for-byte the same join stats
//! as the in-memory engine (links, groups, distance computations) —
//! asserted here, so a CI smoke run is also a correctness check; the
//! `--smoke` mode additionally diffs the two output files.
//!
//! ```text
//! perf_outofcore [--smoke] [--out <file>] [--n <points>] [--eps <E>]
//!                [--data-dir <dir>]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use csj_core::outofcore::{JoinVariant, OutOfCoreJoin};
use csj_core::{JoinConfig, JoinStats};
use csj_index::{PagedStats, PagedTree, RTreeConfig};
use csj_storage::{FileDisk, FileSink, OutputSink, OutputWriter, RetryPolicy, PAGE_SIZE};

struct Args {
    smoke: bool,
    out: String,
    n: usize,
    eps: f64,
    data_dir: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        smoke: false,
        out: "BENCH_outofcore.json".to_string(),
        n: csj_data::roads::PACIFIC_NW_SIZE,
        eps: 0.0005,
        data_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--smoke" => {
                out.smoke = true;
                out.n = 50_000;
            }
            "--out" => out.out = value("--out"),
            "--n" => out.n = value("--n").parse().expect("--n takes a point count"),
            "--eps" => out.eps = value("--eps").parse().expect("--eps takes a number"),
            "--data-dir" => out.data_dir = Some(value("--data-dir")),
            "--help" | "-h" => {
                eprintln!(
                    "options: --smoke  --out <file>  --n <points>  --eps <E>  --data-dir <dir>"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
    }
    out
}

fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Total links the output encodes: individual rows plus the pairs
/// implied by group rows.
fn encoded_links(stats: &JoinStats) -> u64 {
    stats.links_emitted + stats.links_in_groups
}

struct Leg {
    variant_name: &'static str,
    pool_pages: usize,
    pool_fraction: f64,
    wall_ms: f64,
    links_per_sec: f64,
    output_bytes: u64,
    stats: JoinStats,
    paged: PagedStats,
    prefetch_budget_pages: usize,
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = parse_args();
    let dir = args.data_dir.clone().map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("csj_perf_outofcore_{}", std::process::id()))
    });
    std::fs::create_dir_all(&dir).expect("create data dir");
    let pages_path = dir.join("tree.pages");

    eprintln!("generating pacific-nw profile at n={}...", args.n);
    let pts = csj_data::roads::pacific_nw(args.n);
    let eps = args.eps;
    let cfg_tree = RTreeConfig::default();

    // Build the page file once; every leg reopens it read-only with its
    // own pool size. The build pool is generous — building is not what
    // this benchmark measures.
    let t0 = Instant::now();
    let built = PagedTree::build_str(
        &pts,
        cfg_tree,
        FileDisk::create(&pages_path).expect("create page file"),
        RetryPolicy::default(),
        4096,
    )
    .expect("bulk load to pages");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let node_pages = built.meta().node_pages;
    let footprint_bytes = (node_pages + 1) * PAGE_SIZE as u64;
    eprintln!(
        "page file: {} node pages ({:.1} MiB) built in {:.0} ms",
        node_pages,
        footprint_bytes as f64 / (1024.0 * 1024.0),
        build_ms
    );
    drop(built);

    // In-memory reference: same traversal, arena-resident nodes. Its
    // stats are the identity baseline every out-of-core leg must match.
    let rtree = csj_index::rstar::RStarTree::bulk_load_str(&pts, cfg_tree);
    let mut reference: Vec<(&'static str, JoinStats, f64, u64)> = Vec::new();
    for (name, variant) in [("ncsj", JoinVariant::Ncsj), ("csj10", JoinVariant::Csj { window: 10 })]
    {
        let out_path = dir.join(format!("mem_{name}.txt"));
        let width = OutputWriter::<FileSink>::id_width_for(pts.len());
        let mut writer =
            OutputWriter::new(FileSink::create(&out_path).expect("output file"), width);
        let t = Instant::now();
        let stats = match variant {
            JoinVariant::Ncsj => csj_core::NcsjJoin::new(eps)
                .run_streaming(&rtree, &mut writer)
                .expect("in-memory ncsj"),
            JoinVariant::Csj { window } => csj_core::CsjJoin::new(eps)
                .with_window(window)
                .run_streaming(&rtree, &mut writer)
                .expect("in-memory csj"),
            JoinVariant::Ssj => unreachable!("ssj is not benchmarked"),
        };
        let wall = t.elapsed().as_secs_f64() * 1e3;
        let bytes = writer.finish().expect("flush").bytes_written();
        eprintln!(
            "in-memory {name}: {wall:.0} ms, {} encoded links, {} bytes",
            encoded_links(&stats),
            bytes
        );
        reference.push((name, stats, wall, bytes));
    }

    // Pool curve: 1/64 .. 1/8 of the index footprint (the acceptance
    // ceiling), smallest first so the hardest configuration runs first.
    let fractions: &[u64] = if args.smoke { &[64, 8] } else { &[64, 32, 16, 8] };
    let mut legs: Vec<Leg> = Vec::new();
    for &frac in fractions {
        let pool = ((node_pages / frac).max(4)) as usize;
        for (name, variant) in
            [("ncsj", JoinVariant::Ncsj), ("csj10", JoinVariant::Csj { window: 10 })]
        {
            let tree = PagedTree::<2, _>::open(
                FileDisk::open(&pages_path).expect("open page file"),
                RetryPolicy::default(),
                pool,
            )
            .expect("open paged tree");
            let prefetch_pages = (pool / 4).max(8);
            let join = OutOfCoreJoin::new(variant, eps)
                .with_config(JoinConfig::new(eps))
                .with_prefetch_budget(prefetch_pages * PAGE_SIZE);
            let out_path = dir.join(format!("ooc_{name}_{frac}.txt"));
            let width = OutputWriter::<FileSink>::id_width_for(pts.len());
            let mut writer =
                OutputWriter::new(FileSink::create(&out_path).expect("output file"), width);
            let t = Instant::now();
            let stats = join
                .run_streaming(&tree, &mut writer, Some(&pages_path))
                .expect("out-of-core join");
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;
            let output_bytes = writer.finish().expect("flush").bytes_written();
            let paged = tree.stats();

            // Identity gate: the out-of-core engine must reproduce the
            // in-memory run exactly.
            let (_, ref_stats, _, ref_bytes) =
                reference.iter().find(|(n, ..)| *n == name).expect("reference leg");
            assert_eq!(stats.links_emitted, ref_stats.links_emitted, "{name} links diverged");
            assert_eq!(stats.groups_emitted, ref_stats.groups_emitted, "{name} groups diverged");
            assert_eq!(
                stats.distance_computations, ref_stats.distance_computations,
                "{name} comparisons diverged"
            );
            assert_eq!(output_bytes, *ref_bytes, "{name} output bytes diverged");
            if args.smoke {
                let mem = std::fs::read(dir.join(format!("mem_{name}.txt"))).expect("read");
                let ooc = std::fs::read(&out_path).expect("read");
                assert!(mem == ooc, "{name} output files diverged at pool=1/{frac}");
            }
            let _ = std::fs::remove_file(&out_path);

            let secs = wall_ms / 1e3;
            eprintln!(
                "pool 1/{frac} ({pool} pages) {name}: {wall_ms:.0} ms, {:.0} links/s, \
                 {} misses / {} hits ({:.1}% hit rate), {} evictions, {} prefetched",
                encoded_links(&stats) as f64 / secs,
                paged.pool.misses,
                paged.pool.hits,
                paged.pool.hit_rate() * 100.0,
                paged.pool.evictions,
                paged.prefetch_supplied
            );
            legs.push(Leg {
                variant_name: name,
                pool_pages: pool,
                pool_fraction: 1.0 / frac as f64,
                wall_ms,
                links_per_sec: encoded_links(&stats) as f64 / secs,
                output_bytes,
                stats,
                paged,
                prefetch_budget_pages: prefetch_pages,
            });
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"outofcore\",");
    let _ = writeln!(json, "  \"rustc\": \"{}\",", rustc_version());
    let _ = writeln!(json, "  \"smoke\": {},", args.smoke);
    let _ = writeln!(json, "  \"dataset\": \"pacific-nw\",");
    let _ = writeln!(json, "  \"n\": {},", args.n);
    let _ = writeln!(json, "  \"eps\": {},", eps);
    let _ = writeln!(json, "  \"page_size\": {},", PAGE_SIZE);
    let _ = writeln!(json, "  \"node_pages\": {},", node_pages);
    let _ = writeln!(json, "  \"footprint_bytes\": {},", footprint_bytes);
    let _ = writeln!(json, "  \"build_ms\": {:.1},", build_ms);
    let _ = writeln!(json, "  \"in_memory\": [");
    for (i, (name, stats, wall, bytes)) in reference.iter().enumerate() {
        let comma = if i + 1 == reference.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"algo\": \"{name}\", \"wall_ms\": {wall:.1}, \"links\": {}, \
             \"groups\": {}, \"output_bytes\": {bytes}, \"links_per_sec\": {:.0}}}{comma}",
            encoded_links(stats),
            stats.groups_emitted,
            encoded_links(stats) as f64 / (wall / 1e3)
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"pool_curve\": [");
    for (i, leg) in legs.iter().enumerate() {
        let comma = if i + 1 == legs.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"algo\": \"{}\", \"pool_pages\": {}, \"pool_fraction\": {:.5}, \
             \"prefetch_budget_pages\": {}, \"wall_ms\": {:.1}, \"links_per_sec\": {:.0}, \
             \"output_bytes\": {}, \"links\": {}, \"groups\": {}, \"pool_hits\": {}, \
             \"pool_misses\": {}, \"hit_rate\": {:.4}, \"evictions\": {}, \"disk_reads\": {}, \
             \"io_retries\": {}, \"prefetch_supplied\": {}}}{comma}",
            leg.variant_name,
            leg.pool_pages,
            leg.pool_fraction,
            leg.prefetch_budget_pages,
            leg.wall_ms,
            leg.links_per_sec,
            leg.output_bytes,
            encoded_links(&leg.stats),
            leg.stats.groups_emitted,
            leg.paged.pool.hits,
            leg.paged.pool.misses,
            leg.paged.pool.hit_rate(),
            leg.paged.pool.evictions,
            leg.paged.disk_reads,
            leg.paged.io_retries,
            leg.paged.prefetch_supplied
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&args.out, &json).expect("write json");
    eprintln!("wrote {}", args.out);

    // Temp-dir hygiene: remove everything this run created unless the
    // caller chose the directory.
    for (name, ..) in &reference {
        let _ = std::fs::remove_file(dir.join(format!("mem_{name}.txt")));
    }
    if args.data_dir.is_none() {
        let _ = std::fs::remove_file(&pages_path);
        let _ = std::fs::remove_dir(&dir);
    }
}
