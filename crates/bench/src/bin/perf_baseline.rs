//! Reproducible performance baseline for the parallel join stack.
//!
//! Runs {uniform, skewed-cluster, sierpinski} × {SSJ, N-CSJ, CSJ(10)} ×
//! {1, N threads} through the work-stealing [`ParallelJoin`], compares
//! the work-stealing runner against the retired static-split baseline
//! (scalar leaf probes), and microbenchmarks the batched distance kernel
//! against the scalar probe loop. Results land in `BENCH_parallel.json`
//! (see DESIGN.md for the field reference).
//!
//! ```text
//! perf_baseline [--smoke] [--out <file>] [--n <points>] [--iters <n>] [--threads <n>]
//! ```
//!
//! `--smoke` shrinks the workloads for CI (one iteration, small n); the
//! committed baseline is produced by a full release-mode run.

use std::fmt::Write as _;
use std::time::Instant;

use csj_bench::harness::{median_time_ms, time_stats_ms, TimeStats};
use csj_core::parallel::baseline::StaticParallelJoin;
use csj_core::parallel::{ParallelAlgo, ParallelJoin};
use csj_core::JoinConfig;
use csj_geom::{DistKernel, KernelPath, Metric, Point, RecordId, SoaBuffer};
use csj_index::{rstar::RStarTree, LeafEntry, RTreeConfig};

/// `rustc --version` of the toolchain on PATH — the one that (normally)
/// built this binary. Perf numbers without the compiler version are not
/// reproducible claims.
fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Compile-time target features relevant to the distance kernels.
fn compiled_features() -> &'static str {
    if cfg!(target_feature = "avx2") {
        "avx2"
    } else if cfg!(target_feature = "neon") {
        "neon"
    } else if cfg!(target_feature = "sse2") {
        "sse2"
    } else {
        "baseline"
    }
}

struct Args {
    smoke: bool,
    out: String,
    n: usize,
    iters: usize,
    threads: usize,
}

fn parse_args() -> Args {
    let mut out = Args {
        smoke: false,
        out: "BENCH_parallel.json".to_string(),
        n: 20_000,
        iters: 3,
        threads: 8,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--smoke" => {
                out.smoke = true;
                out.n = 2_000;
                out.iters = 1;
            }
            "--out" => out.out = value("--out"),
            "--n" => out.n = value("--n").parse().expect("--n takes a point count"),
            "--iters" => out.iters = value("--iters").parse().expect("--iters takes a count"),
            "--threads" => {
                out.threads = value("--threads").parse().expect("--threads takes a count")
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --smoke  --out <file>  --n <points>  --iters <n>  --threads <n>"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
    }
    out
}

/// Deterministic multiplicative-congruential stream in `[0, 1)`.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        // Numerical Recipes LCG; top 53 bits as a unit float.
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// 80% of the points in one dense cluster, the rest uniform background —
/// the skew shape where a static task split pins one worker.
fn skewed_cluster(n: usize, seed: u64) -> Vec<Point<2>> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|i| {
            if i % 5 != 0 {
                Point::new([0.5 + rng.next_f64() * 0.03, 0.5 + rng.next_f64() * 0.03])
            } else {
                Point::new([rng.next_f64(), rng.next_f64()])
            }
        })
        .collect()
}

/// Page-sized leaves, as in the paper's disk-resident R-trees (a 4 KB
/// page holds ~170 two-dimensional entries). Large leaves also put the
/// run time where the joins spend it on real data: leaf probing.
fn bench_tree_config() -> RTreeConfig {
    RTreeConfig::with_max_fanout(170)
}

struct Workload {
    name: &'static str,
    points: Vec<Point<2>>,
    eps: f64,
}

fn workloads(n: usize) -> Vec<Workload> {
    vec![
        Workload { name: "uniform", points: csj_data::uniform::uniform::<2>(n, 42), eps: 0.01 },
        Workload { name: "skewed-cluster", points: skewed_cluster(n, 42), eps: 0.0004 },
        Workload {
            name: "sierpinski",
            points: csj_data::sierpinski::triangle_2d(n, 42),
            eps: 0.008,
        },
    ]
}

struct RunRow {
    algo: String,
    threads: usize,
    wall: TimeStats,
    links: u64,
    links_per_sec: f64,
    speedup_vs_sequential: f64,
    threads_used: u64,
    tasks_executed: u64,
    tasks_stolen: u64,
    tasks_split: u64,
}

fn algo_name(algo: ParallelAlgo) -> String {
    match algo {
        ParallelAlgo::Ssj => "SSJ".to_string(),
        ParallelAlgo::Ncsj => "N-CSJ".to_string(),
        ParallelAlgo::Csj(g) => format!("CSJ({g})"),
    }
}

fn measure_grid(w: &Workload, iters: usize, max_threads: usize) -> Vec<RunRow> {
    let tree = RStarTree::bulk_load_str(&w.points, bench_tree_config());
    let mut rows = Vec::new();
    for algo in [ParallelAlgo::Ssj, ParallelAlgo::Ncsj, ParallelAlgo::Csj(10)] {
        let mut sequential_ms = f64::NAN;
        for threads in [1, max_threads] {
            let join = ParallelJoin::new(w.eps, algo).with_threads(threads);
            let out = join.run(&tree);
            let wall = time_stats_ms(iters, || {
                std::hint::black_box(join.run(&tree));
            });
            if threads == 1 {
                sequential_ms = wall.median_ms;
            }
            let links = out.stats.links_emitted + out.stats.links_in_groups;
            rows.push(RunRow {
                algo: algo_name(algo),
                threads,
                wall,
                links,
                links_per_sec: links as f64 / (wall.median_ms / 1e3),
                speedup_vs_sequential: sequential_ms / wall.median_ms,
                threads_used: out.stats.threads_used,
                tasks_executed: out.stats.tasks_executed,
                tasks_stolen: out.stats.tasks_stolen,
                tasks_split: out.stats.tasks_split,
            });
            eprintln!(
                "# {:<15} {:<8} threads={threads}: {:.1} ms median ({:.1}..{:.1}), {links} links, \
                 {} tasks ({} stolen, {} split)",
                w.name,
                rows.last().expect("just pushed").algo,
                wall.median_ms,
                wall.min_ms,
                wall.max_ms,
                out.stats.tasks_executed,
                out.stats.tasks_stolen,
                out.stats.tasks_split,
            );
        }
    }
    rows
}

/// Static-split + scalar probes versus work-stealing + batched kernel,
/// N-CSJ on the skewed cluster — the headline speedup.
fn baseline_comparison(w: &Workload, iters: usize, threads: usize) -> (f64, f64) {
    let tree = RStarTree::bulk_load_str(&w.points, bench_tree_config());
    let scalar_cfg = JoinConfig::new(w.eps).with_scalar_leaf_probe();
    let old = StaticParallelJoin::with_config(scalar_cfg, ParallelAlgo::Ncsj).with_threads(threads);
    let new = ParallelJoin::new(w.eps, ParallelAlgo::Ncsj).with_threads(threads);
    // Both runners produce the same expanded link set; measure wall time.
    let static_ms = median_time_ms(iters, || {
        std::hint::black_box(old.run(&tree));
    });
    let stealing_ms = median_time_ms(iters, || {
        std::hint::black_box(new.run(&tree));
    });
    (static_ms, stealing_ms)
}

/// The SSJ leaf probe in isolation, both engine code paths faithfully:
/// the scalar arm iterates interleaved [`LeafEntry`] records, counts each
/// predicate evaluation and pushes hit id pairs; the batched arm runs the
/// ε²-kernel over the leaf's contiguous point mirror, as
/// `Engine::leaf_self_kernel` does.
fn kernel_microbench(iters: usize, n: usize) -> (usize, u64, f64, f64) {
    let mut rng = Lcg(7);
    // A tight box: every pair is a near-miss or a hit, like a dense leaf.
    let entries: Vec<LeafEntry<2>> = (0..n)
        .map(|i| {
            LeafEntry::new(
                i as RecordId,
                Point::new([rng.next_f64() * 0.05, rng.next_f64() * 0.05]),
            )
        })
        .collect();
    let pts: Vec<Point<2>> = entries.iter().map(|e| e.point).collect();
    let soa = SoaBuffer::from_points(&pts);
    // Sparse hit rate (~1%): the common leaf-probe regime, where the
    // distance evaluations rather than the hit emission dominate.
    let eps = 0.002;
    let metric = Metric::Euclidean;

    let scalar_ms = median_time_ms(iters, || {
        let mut comparisons = 0u64;
        let mut hits: Vec<(RecordId, RecordId)> = Vec::new();
        for i in 0..entries.len() {
            for j in (i + 1)..entries.len() {
                comparisons += 1;
                if metric.within(&entries[i].point, &entries[j].point, eps) {
                    hits.push((entries[i].id, entries[j].id));
                }
            }
        }
        std::hint::black_box((comparisons, hits));
    });
    let kernel = DistKernel::new(metric, eps);
    let batched_ms = median_time_ms(iters, || {
        let mut comparisons = 0u64;
        let mut hits: Vec<(RecordId, RecordId)> = Vec::new();
        kernel
            .self_join::<2, std::convert::Infallible>(soa.view(), &mut comparisons, |i, j| {
                hits.push((entries[i].id, entries[j].id));
                Ok(())
            })
            .expect("infallible");
        std::hint::black_box((comparisons, hits));
    });
    let pairs = (n as u64 * (n as u64 - 1)) / 2;
    (n, pairs, scalar_ms, batched_ms)
}

fn push_row(json: &mut String, row: &RunRow, last: bool) {
    let _ = writeln!(
        json,
        "      {{\"algo\": \"{}\", \"threads\": {}, \"wall_ms_min\": {:.3}, \
         \"wall_ms_median\": {:.3}, \"wall_ms_max\": {:.3}, \"links\": {}, \
         \"links_per_sec\": {:.1}, \"speedup_vs_sequential\": {:.3}, \"threads_used\": {}, \
         \"tasks_executed\": {}, \"tasks_stolen\": {}, \"tasks_split\": {}}}{}",
        row.algo,
        row.threads,
        row.wall.min_ms,
        row.wall.median_ms,
        row.wall.max_ms,
        row.links,
        row.links_per_sec,
        row.speedup_vs_sequential,
        row.threads_used,
        row.tasks_executed,
        row.tasks_stolen,
        row.tasks_split,
        if last { "" } else { "," },
    );
}

fn main() {
    let args = parse_args();
    eprintln!(
        "# perf_baseline: n={}, iters={}, threads={}, smoke={}",
        args.n, args.iters, args.threads, args.smoke
    );

    let host_parallelism = csj_core::parallel::default_threads();
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"bench\": \"perf_baseline\",\n  \"smoke\": {},\n  \"n\": {},\n  \"iters\": {},\n  \
         \"host_parallelism\": {},\n  \"rustc_version\": \"{}\",\n  \"target_arch\": \"{}\",\n  \
         \"target_features_compiled\": \"{}\",\n  \"kernel_path\": \"{}\",",
        args.smoke,
        args.n,
        args.iters,
        host_parallelism,
        rustc_version(),
        std::env::consts::ARCH,
        compiled_features(),
        KernelPath::detect().name(),
    );
    if host_parallelism == 1 {
        json.push_str(
            "  \"single_core_warning\": \"HOST HAS 1 CPU: all multi-thread rows are \
             oversubscribed on one core; speedup_vs_sequential is meaningless here\",\n",
        );
        eprintln!(
            "# WARNING: host_parallelism == 1 — multi-thread numbers below measure \
             oversubscription, not parallel speedup"
        );
    }

    json.push_str("  \"workloads\": [\n");
    let all = workloads(args.n);
    for (wi, w) in all.iter().enumerate() {
        let started = Instant::now();
        let rows = measure_grid(w, args.iters, args.threads);
        eprintln!("# {} grid done in {:.1} s", w.name, started.elapsed().as_secs_f64());
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"n\": {}, \"eps\": {}, \"runs\": [",
            w.name,
            w.points.len(),
            w.eps
        );
        for (i, row) in rows.iter().enumerate() {
            push_row(&mut json, row, i + 1 == rows.len());
        }
        let _ = writeln!(json, "    ]}}{}", if wi + 1 == all.len() { "" } else { "," });
    }
    json.push_str("  ],\n");

    let skew = &all[1];
    assert_eq!(skew.name, "skewed-cluster");
    let (static_ms, stealing_ms) = baseline_comparison(skew, args.iters, args.threads);
    let _ = writeln!(
        json,
        "  \"baseline_comparison\": {{\"workload\": \"skewed-cluster\", \"algo\": \"N-CSJ\", \
         \"threads\": {}, \"static_scalar_wall_ms\": {:.3}, \"work_stealing_wall_ms\": {:.3}, \
         \"speedup\": {:.3}}},",
        args.threads,
        static_ms,
        stealing_ms,
        static_ms / stealing_ms,
    );
    eprintln!(
        "# baseline comparison: static+scalar {static_ms:.1} ms vs work-stealing+kernel \
         {stealing_ms:.1} ms ({:.2}x)",
        static_ms / stealing_ms
    );

    let micro_n = if args.smoke { 500 } else { 3_000 };
    let (n, pairs, scalar_ms, batched_ms) = kernel_microbench(args.iters, micro_n);
    let _ = writeln!(
        json,
        "  \"kernel_microbench\": {{\"points\": {n}, \"pairs\": {pairs}, \"scalar_ms\": {:.3}, \
         \"batched_ms\": {:.3}, \"speedup\": {:.3}}}",
        scalar_ms,
        batched_ms,
        scalar_ms / batched_ms,
    );
    eprintln!(
        "# kernel microbench: scalar {scalar_ms:.2} ms vs batched {batched_ms:.2} ms ({:.2}x)",
        scalar_ms / batched_ms
    );

    json.push_str("}\n");
    std::fs::write(&args.out, &json).expect("write benchmark output");
    eprintln!("# wrote {}", args.out);
}
