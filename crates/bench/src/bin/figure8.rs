//! Figure 8 / Experiment 3: where the savings come from.
//!
//! MG County at ε = 0.1. For SSJ, N-CSJ and CSJ(1/10/100) we report:
//!
//! * computation time (output counted, never materialized);
//! * disk write time — both measured (writing the real output file to a
//!   temp path) and modeled with the 2008-HDD cost model, since modern
//!   NVMe drives compress the I/O share the paper saw;
//! * node/page accesses, and buffer-pool misses when the access log is
//!   replayed through LRU pools of several capacities — reproducing the
//!   paper's finding that page and cache access counts are essentially
//!   identical across the algorithms.

use csj_bench::args::CommonArgs;
use csj_bench::datasets::{DatasetPoints, PaperDataset};
use csj_bench::harness::median_time_ms;
use csj_core::csj::CsjJoin;
use csj_core::ncsj::NcsjJoin;
use csj_core::ssj::SsjJoin;
use csj_index::{rstar::RStarTree, JoinIndex, RTreeConfig};
use csj_storage::{BufferPool, CostModel, CountingSink, FileSink, OutputWriter, PageId};

const EPS: f64 = 0.1;
const POOL_SIZES: [usize; 3] = [8, 64, 512];

fn main() {
    let args = CommonArgs::parse();
    let ds = PaperDataset::MgCounty;
    let n = args.scaled(ds.paper_size());
    let DatasetPoints::D2(pts) = ds.generate(n) else { unreachable!("MG County is 2-D") };
    let width = OutputWriter::<CountingSink>::id_width_for(n);
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());

    println!(
        "algo\tcomp_ms\twrite_ms_measured\twrite_ms_hdd_model\tbytes\tnode_accesses\t{}",
        POOL_SIZES.map(|c| format!("misses@{c}")).join("\t")
    );

    for algo in ["SSJ", "N-CSJ", "CSJ(1)", "CSJ(10)", "CSJ(100)"] {
        // 1. Computation time + byte count (counting sink).
        let mut counting = OutputWriter::new(CountingSink::new(), width);
        let stats = run(algo, &tree, &mut counting, true);
        let bytes = counting.bytes_written();
        let comp_ms = median_time_ms(args.iters, || {
            let mut w = OutputWriter::new(CountingSink::new(), width);
            let _ = run(algo, &tree, &mut w, false);
        });

        // 2. Measured write time: same run against a real file.
        let path =
            std::env::temp_dir().join(format!("csj_fig8_{}.txt", algo.replace(['(', ')'], "_")));
        let total_ms = median_time_ms(args.iters, || {
            let mut w = OutputWriter::new(FileSink::create(&path).expect("temp file"), width);
            let _ = run(algo, &tree, &mut w, false);
            let sink = w.finish();
            drop(sink);
        });
        std::fs::remove_file(&path).ok();
        let write_ms_measured = (total_ms - comp_ms).max(0.0);

        // 3. Modeled write time (2008-class HDD).
        let write_ms_model = CostModel::hdd_2008().write_time_ms(bytes);

        // 4. Page accesses: replay the node-access log through LRU pools.
        let log = stats.access_log.as_deref().unwrap_or(&[]);
        let misses: Vec<String> = POOL_SIZES
            .iter()
            .map(|&cap| {
                let mut pool = BufferPool::new(cap);
                let s = pool.replay(log.iter().map(|&id| PageId(id as u64)));
                s.misses.to_string()
            })
            .collect();

        println!(
            "{algo}\t{comp_ms:.3}\t{write_ms_measured:.3}\t{write_ms_model:.3}\t{bytes}\t{}\t{}",
            log.len(),
            misses.join("\t")
        );
    }
}

fn run<T: JoinIndex<2>, S: csj_storage::OutputSink>(
    algo: &str,
    tree: &T,
    writer: &mut OutputWriter<S>,
    with_log: bool,
) -> csj_core::JoinStats {
    match algo {
        "SSJ" => {
            let mut j = SsjJoin::new(EPS);
            if with_log {
                j = j.with_access_log();
            }
            j.run_streaming(tree, writer).expect("counting sink cannot fail")
        }
        "N-CSJ" => {
            let mut j = NcsjJoin::new(EPS);
            if with_log {
                j = j.with_access_log();
            }
            j.run_streaming(tree, writer).expect("counting sink cannot fail")
        }
        other => {
            let g: usize = other
                .trim_start_matches("CSJ(")
                .trim_end_matches(')')
                .parse()
                .expect("CSJ(g) label");
            let mut j = CsjJoin::new(EPS).with_window(g);
            if with_log {
                j = j.with_access_log();
            }
            j.run_streaming(tree, writer).expect("counting sink cannot fail")
        }
    }
}
