//! Figure 6 / Experiment 1b: CSJ(g) runtime and output size as a
//! function of the window size g, on MG County.
//!
//! The paper's finding: ~20% output reduction by g ≈ 10 with negligible
//! time cost; no further savings beyond.

use csj_bench::args::CommonArgs;
use csj_bench::datasets::{DatasetPoints, PaperDataset};
use csj_bench::harness::{measure, print_header, print_row, Algo};
use csj_index::{rstar::RStarTree, RTreeConfig};
use csj_storage::{CountingSink, OutputWriter};

/// The paper evaluates g ∈ {1, 2, 3, 4, 5, 10, 20, 50, 100}.
const WINDOWS: [usize; 9] = [1, 2, 3, 4, 5, 10, 20, 50, 100];

fn main() {
    let args = CommonArgs::parse();
    let ds = PaperDataset::MgCounty;
    let n = args.scaled(ds.paper_size());
    let DatasetPoints::D2(pts) = ds.generate(n) else { unreachable!("MG County is 2-D") };
    let width = OutputWriter::<CountingSink>::id_width_for(n);
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());

    // Figure 8 (same dataset) uses ε = 0.1; Figure 6's sweep is at a
    // comparable moderately large range where merging matters.
    let eps = 0.1;
    print_header(&["g"]);
    for g in WINDOWS {
        let m = measure(&tree, Algo::Csj(g), eps, args.iters, width, args.ssj_budget);
        print_row(ds.name(), n, &m, &[g.to_string()]);
    }
}
