//! Figure 5 / Experiment 1: runtime and output size vs query range for
//! SSJ, N-CSJ and CSJ(10), on all four datasets.
//!
//! One TSV row per (dataset, ε, algorithm). `estimated = yes` rows
//! correspond to the paper's filled markers (SSJ exceeded the budget).

use csj_bench::args::CommonArgs;
use csj_bench::datasets::{DatasetPoints, PaperDataset};
use csj_bench::harness::{measure, print_header, print_row, Algo};
use csj_index::{JoinIndex, RTreeConfig};
use csj_storage::{CountingSink, OutputWriter};

fn main() {
    let args = CommonArgs::parse();
    print_header(&[]);
    for ds in PaperDataset::ALL {
        let n = args.scaled(ds.paper_size());
        eprintln!("# generating {} (n = {n})", ds.name());
        let points = ds.generate(n);
        let width = OutputWriter::<CountingSink>::id_width_for(n);
        let config = RTreeConfig::default();
        match points {
            DatasetPoints::D2(pts) => {
                let tree = csj_index::rstar::RStarTree::bulk_load_str(&pts, config);
                run_sweep(&tree, ds, n, width, &args);
            }
            DatasetPoints::D3(pts) => {
                let tree = csj_index::rstar::RStarTree::bulk_load_str(&pts, config);
                run_sweep(&tree, ds, n, width, &args);
            }
        }
    }
}

fn run_sweep<T: JoinIndex<D>, const D: usize>(
    tree: &T,
    ds: PaperDataset,
    n: usize,
    width: usize,
    args: &CommonArgs,
) {
    for eps in ds.eps_sweep() {
        for algo in [Algo::Ssj, Algo::Ncsj, Algo::Csj(10)] {
            let m = measure(tree, algo, eps, args.iters, width, args.ssj_budget);
            print_row(ds.name(), n, &m, &[]);
        }
    }
}
