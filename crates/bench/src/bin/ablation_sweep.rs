//! Ablation for the plane-sweep access ordering (the optimization the
//! paper cites as Brinkhoff et al. \[1\]: "optimally ordering the access
//! of children in branch nodes and the objects in leaf nodes").
//!
//! Compares SSJ and CSJ(10) with the sweep on and off across the ε
//! sweep: distance computations skipped, wall time, and (for CSJ) the
//! output-size effect of the changed traversal order.

use csj_bench::args::CommonArgs;
use csj_bench::datasets::{DatasetPoints, PaperDataset};
use csj_bench::harness::median_time_ms;
use csj_core::csj::CsjJoin;
use csj_core::ssj::SsjJoin;
use csj_index::{rstar::RStarTree, RTreeConfig};
use csj_storage::{CountingSink, OutputWriter};

fn main() {
    let args = CommonArgs::parse();
    let ds = PaperDataset::MgCounty;
    let n = args.scaled(ds.paper_size());
    let DatasetPoints::D2(pts) = ds.generate(n) else { unreachable!("MG County is 2-D") };
    let width = OutputWriter::<CountingSink>::id_width_for(n);
    let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());

    println!("algo\tsweep\teps\ttime_ms\tdistance_computations\tbytes");
    for eps in ds.eps_sweep() {
        for sweep in [false, true] {
            // SSJ.
            let ssj = if sweep { SsjJoin::new(eps).with_plane_sweep() } else { SsjJoin::new(eps) };
            let mut w = OutputWriter::new(CountingSink::new(), width);
            let stats = ssj.run_streaming(&tree, &mut w).expect("counting sink cannot fail");
            let t = median_time_ms(args.iters, || {
                let mut w = OutputWriter::new(CountingSink::new(), width);
                let _ = ssj.run_streaming(&tree, &mut w);
            });
            println!(
                "SSJ\t{}\t{eps:.6}\t{t:.3}\t{}\t{}",
                sweep,
                stats.distance_computations,
                w.bytes_written()
            );

            // CSJ(10).
            let csj = if sweep {
                CsjJoin::new(eps).with_window(10).with_plane_sweep()
            } else {
                CsjJoin::new(eps).with_window(10)
            };
            let mut w = OutputWriter::new(CountingSink::new(), width);
            let stats = csj.run_streaming(&tree, &mut w).expect("counting sink cannot fail");
            let t = median_time_ms(args.iters, || {
                let mut w = OutputWriter::new(CountingSink::new(), width);
                let _ = csj.run_streaming(&tree, &mut w);
            });
            println!(
                "CSJ(10)\t{}\t{eps:.6}\t{t:.3}\t{}\t{}",
                sweep,
                stats.distance_computations,
                w.bytes_written()
            );
        }
    }
}
