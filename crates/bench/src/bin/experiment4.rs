//! Experiment 4: different tree structures.
//!
//! Runs SSJ, N-CSJ and CSJ(10) over the same data indexed by a Guttman
//! R-tree (linear and quadratic splits), an R*-tree and an M-tree. The
//! paper found "no significant difference in any of the performance
//! measures" across structures; the output sizes here are directly
//! comparable and the times should be within a small factor.
//!
//! The M-tree is built by repeated insertion (it has no bulk loader), so
//! this experiment defaults Pacific NW to a 100K draw; use `--scale` to
//! change all sizes proportionally.

use csj_bench::args::CommonArgs;
use csj_bench::datasets::{DatasetPoints, PaperDataset};
use csj_bench::harness::{measure, Algo};
use csj_geom::Point;
use csj_index::mtree::{MTree, MTreeConfig};
use csj_index::quadtree::{QuadTree, QuadTreeConfig};
use csj_index::{rstar::RStarTree, rtree::RTree, JoinIndex, RTreeConfig, SplitStrategy};
use csj_storage::{CountingSink, OutputWriter};

fn main() {
    let args = CommonArgs::parse();
    println!("dataset\tn\ttree\talgo\teps\tcomp_ms\ttotal_ms_hdd_model\tbytes\trows\testimated");
    for ds in PaperDataset::ALL {
        let paper_n = match ds {
            // M-tree insertion at 1.5M is disproportionate; the paper's
            // claim is about relative behaviour, which 100K preserves.
            PaperDataset::PacificNw => 100_000,
            _ => ds.paper_size(),
        };
        let n = args.scaled(paper_n);
        eprintln!("# generating {} (n = {n})", ds.name());
        match ds.generate(n) {
            DatasetPoints::D2(pts) => run_all(ds, &pts, &args),
            DatasetPoints::D3(pts) => run_all(ds, &pts, &args),
        }
    }
}

fn run_all<const D: usize>(ds: PaperDataset, pts: &[Point<D>], args: &CommonArgs) {
    let n = pts.len();
    let width = OutputWriter::<CountingSink>::id_width_for(n);
    // A moderately large range where the compact joins diverge from SSJ.
    let eps = match ds {
        PaperDataset::PacificNw => 0.01,
        _ => 0.125,
    };

    let rtree_lin =
        RTree::from_points(pts, RTreeConfig::default().with_split(SplitStrategy::Linear));
    report(ds, n, "R-tree(linear)", &rtree_lin, eps, args, width);
    drop(rtree_lin);

    let rtree_quad =
        RTree::from_points(pts, RTreeConfig::default().with_split(SplitStrategy::Quadratic));
    report(ds, n, "R-tree(quadratic)", &rtree_quad, eps, args, width);
    drop(rtree_quad);

    let rstar = RStarTree::from_points(pts, RTreeConfig::default());
    report(ds, n, "R*-tree", &rstar, eps, args, width);
    drop(rstar);

    let mtree = MTree::from_points(pts, MTreeConfig::default());
    report(ds, n, "M-tree", &mtree, eps, args, width);
    drop(mtree);

    let qtree = QuadTree::build(pts, QuadTreeConfig::default());
    report(ds, n, "PR-quadtree", &qtree, eps, args, width);
}

fn report<T: JoinIndex<D>, const D: usize>(
    ds: PaperDataset,
    n: usize,
    tree_name: &str,
    tree: &T,
    eps: f64,
    args: &CommonArgs,
    width: usize,
) {
    for algo in [Algo::Ssj, Algo::Ncsj, Algo::Csj(10)] {
        let m = measure(tree, algo, eps, args.iters, width, args.ssj_budget);
        println!(
            "{}\t{}\t{}\t{}\t{:.6}\t{:.3}\t{:.3}\t{:.0}\t{:.0}\t{}",
            ds.name(),
            n,
            tree_name,
            m.algo,
            m.eps,
            m.time_ms,
            m.model_total_ms(),
            m.bytes,
            m.rows,
            if m.estimated { "yes" } else { "no" }
        );
    }
}
