//! §VII ablation: the compact extension of the (index-free)
//! ε-grid-order join.
//!
//! Compares, on Sierpinski3D and a uniform control set: the plain grid
//! join, the compact grid join (early termination-as-a-group in
//! JoinBuffer), the windowed compact grid join, and the tree-based
//! CSJ(10) — showing the compact-output idea is index-independent.

use csj_bench::args::CommonArgs;
use csj_bench::harness::median_time_ms;
use csj_core::csj::CsjJoin;
use csj_core::egrid::GridJoin;
use csj_data::sierpinski;
use csj_data::uniform::uniform;
use csj_geom::Point;
use csj_index::{rstar::RStarTree, RTreeConfig};
use csj_storage::{CountingSink, OutputWriter};

fn main() {
    let args = CommonArgs::parse();
    println!("dataset\tmethod\teps\ttime_ms\tbytes\trows");
    let n3 = args.scaled(50_000);
    run_dataset("Sierpinski3D", &sierpinski::pyramid_3d(n3, 0x53), 0.0625, &args);
    let n2 = args.scaled(50_000);
    run_dataset("Uniform2D", &uniform::<2>(n2, 7), 0.03125, &args);
}

fn run_dataset<const D: usize>(name: &str, pts: &[Point<D>], eps: f64, args: &CommonArgs) {
    let width = OutputWriter::<CountingSink>::id_width_for(pts.len());

    let variants: [(&str, GridJoin); 3] = [
        ("grid", GridJoin::new(eps)),
        ("grid-compact", GridJoin::new(eps).compact()),
        ("grid-compact-w10", GridJoin::new(eps).with_window(10)),
    ];
    for (label, join) in variants {
        let out = join.run(pts);
        let time_ms = median_time_ms(args.iters, || {
            let _ = join.run(pts);
        });
        println!(
            "{name}\t{label}\t{eps:.6}\t{time_ms:.3}\t{}\t{}",
            out.total_bytes(width),
            out.items.len()
        );
    }

    // Tree-based CSJ(10) for comparison.
    let tree = RStarTree::bulk_load_str(pts, RTreeConfig::default());
    let join = CsjJoin::new(eps).with_window(10);
    let mut writer = OutputWriter::new(CountingSink::new(), width);
    let stats = join.run_streaming(&tree, &mut writer).expect("counting sink cannot fail");
    let time_ms = median_time_ms(args.iters, || {
        let mut w = OutputWriter::new(CountingSink::new(), width);
        let _ = join.run_streaming(&tree, &mut w);
    });
    println!(
        "{name}\ttree-csj10\t{eps:.6}\t{time_ms:.3}\t{}\t{}",
        writer.bytes_written(),
        stats.rows_emitted()
    );
}
