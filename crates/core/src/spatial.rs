//! Dual-tree spatial joins (§IV-D "Algorithm Extensions").
//!
//! The self-join algorithms adapt to joins of *two* datasets by invoking
//! only the two-node subroutine on a root from each tree. Links pair a
//! left record with a right record; a compact group is a pair of record
//! sets `(L, R)` such that every `l ∈ L, r ∈ R` satisfies the range —
//! "an entire sub-region from each type of tree is within the query
//! range". A group therefore encodes `|L| · |R|` cross links.

use std::collections::VecDeque;
use std::collections::{BTreeSet, HashSet};

use csj_geom::{Mbr, Metric, Point, RecordId};
use csj_index::{JoinIndex, NodeId};

use crate::stats::JoinStats;
use crate::JoinConfig;

/// One output row of a spatial join.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpatialItem {
    /// A qualifying cross pair `(left record, right record)`.
    Link(RecordId, RecordId),
    /// All of `left × right` qualifies.
    Group {
        /// Records from the left dataset.
        left: Vec<RecordId>,
        /// Records from the right dataset.
        right: Vec<RecordId>,
    },
}

impl SpatialItem {
    /// Number of cross links this row implies.
    pub fn implied_links(&self) -> u64 {
        match self {
            SpatialItem::Link(..) => 1,
            SpatialItem::Group { left, right } => left.len() as u64 * right.len() as u64,
        }
    }

    /// Bytes in the text format `<left ids> | <right ids>\n` with
    /// fixed-width ids: `k` ids cost `k·width + k` bytes (separators and
    /// the newline included), plus 2 bytes for `"| "`.
    pub fn format_bytes(&self, width: usize) -> u64 {
        match self {
            SpatialItem::Link(..) => (2 * width + 2 + 2) as u64,
            SpatialItem::Group { left, right } => {
                let k = left.len() + right.len();
                (k * width + k + 2) as u64
            }
        }
    }
}

/// Collected result of a spatial join.
#[derive(Clone, Debug, Default)]
pub struct SpatialOutput {
    /// Output rows in emission order.
    pub items: Vec<SpatialItem>,
    /// Operation counters.
    pub stats: JoinStats,
}

impl SpatialOutput {
    /// Number of link rows.
    pub fn num_links(&self) -> usize {
        self.items.iter().filter(|i| matches!(i, SpatialItem::Link(..))).count()
    }

    /// Number of group rows.
    pub fn num_groups(&self) -> usize {
        self.items.iter().filter(|i| matches!(i, SpatialItem::Group { .. })).count()
    }

    /// Expands to the deduplicated `(left, right)` link set.
    pub fn expanded_link_set(&self) -> BTreeSet<(RecordId, RecordId)> {
        let mut set = BTreeSet::new();
        for item in &self.items {
            match item {
                SpatialItem::Link(a, b) => {
                    set.insert((*a, *b));
                }
                SpatialItem::Group { left, right } => {
                    for &l in left {
                        for &r in right {
                            set.insert((l, r));
                        }
                    }
                }
            }
        }
        set
    }

    /// Output size in bytes of the text encoding.
    pub fn total_bytes(&self, width: usize) -> u64 {
        self.items.iter().map(|i| i.format_bytes(width)).sum()
    }

    /// Streams the rows into `sink` in the text format
    /// `<left ids> | <right ids>\n` with `width`-digit zero-padded ids.
    /// A sink failure surfaces as `Err`; rows already written remain
    /// valid output.
    ///
    /// # Errors
    /// Returns [`csj_storage::StorageError`] from the first failing sink
    /// write.
    pub fn write_to<S: csj_storage::OutputSink>(
        &self,
        sink: &mut S,
        width: usize,
    ) -> Result<(), csj_storage::StorageError> {
        let mut line = Vec::with_capacity(256);
        let push_id = |line: &mut Vec<u8>, id: RecordId| {
            let s = format!("{id:0width$}");
            line.extend_from_slice(s.as_bytes());
        };
        for item in &self.items {
            line.clear();
            match item {
                SpatialItem::Link(l, r) => {
                    push_id(&mut line, *l);
                    line.extend_from_slice(b" | ");
                    push_id(&mut line, *r);
                }
                SpatialItem::Group { left, right } => {
                    for (i, &id) in left.iter().enumerate() {
                        if i > 0 {
                            line.push(b' ');
                        }
                        push_id(&mut line, id);
                    }
                    line.extend_from_slice(b" | ");
                    for (i, &id) in right.iter().enumerate() {
                        if i > 0 {
                            line.push(b' ');
                        }
                        push_id(&mut line, id);
                    }
                }
            }
            line.push(b'\n');
            sink.write_bytes(&line)?;
        }
        Ok(())
    }
}

/// Algorithm variant for the spatial join.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpatialMode {
    /// Enumerate every cross link (the SSJ analogue).
    Standard,
    /// Early-stop qualifying node pairs into groups (the N-CSJ analogue).
    Compact,
    /// Compact plus merging residual links into the `g` most recent
    /// groups (the CSJ(g) analogue).
    CompactWindowed(usize),
}

/// A spatial (two-dataset) similarity join.
///
/// ```
/// use csj_core::spatial::{SpatialJoin, SpatialMode};
/// use csj_geom::Point;
/// use csj_index::{rstar::RStarTree, RTreeConfig};
///
/// let left: Vec<Point<2>> = (0..50).map(|i| Point::new([i as f64 * 0.02, 0.0])).collect();
/// let right: Vec<Point<2>> = (0..50).map(|i| Point::new([i as f64 * 0.02, 0.01])).collect();
/// let lt = RStarTree::from_points(&left, RTreeConfig::with_max_fanout(8));
/// let rt = RStarTree::from_points(&right, RTreeConfig::with_max_fanout(8));
/// let out = SpatialJoin::new(0.05, SpatialMode::CompactWindowed(10)).run(&lt, &rt);
/// assert!(!out.expanded_link_set().is_empty());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SpatialJoin {
    cfg: JoinConfig,
    mode: SpatialMode,
}

/// An open cross-group in the windowed spatial join.
#[derive(Clone, Debug)]
struct OpenCrossGroup<const D: usize> {
    left: Vec<RecordId>,
    left_seen: HashSet<RecordId>,
    right: Vec<RecordId>,
    right_seen: HashSet<RecordId>,
    mbr: Mbr<D>,
}

impl<const D: usize> OpenCrossGroup<D> {
    fn try_merge(
        &mut self,
        l: RecordId,
        pl: &Point<D>,
        r: RecordId,
        pr: &Point<D>,
        eps: f64,
        metric: Metric,
    ) -> bool {
        let mut grown = self.mbr;
        grown.expand_to_point(pl);
        grown.expand_to_point(pr);
        if metric.mbr_diameter(&grown) > eps {
            return false;
        }
        self.mbr = grown;
        if self.left_seen.insert(l) {
            self.left.push(l);
        }
        if self.right_seen.insert(r) {
            self.right.push(r);
        }
        true
    }
}

impl SpatialJoin {
    /// A spatial join with range `epsilon` in the given mode.
    pub fn new(epsilon: f64, mode: SpatialMode) -> Self {
        SpatialJoin { cfg: JoinConfig::new(epsilon), mode }
    }

    /// Replaces the metric.
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.cfg.metric = metric;
        self
    }

    /// Runs the join of two trees (which may be of different index
    /// types). Left record ids come from `left`, right ids from `right`.
    pub fn run<L, R, const D: usize>(&self, left: &L, right: &R) -> SpatialOutput
    where
        L: JoinIndex<D>,
        R: JoinIndex<D>,
    {
        let mut runner = Runner {
            left,
            right,
            eps: self.cfg.epsilon,
            metric: self.cfg.metric,
            mode: self.mode,
            window: VecDeque::new(),
            out: SpatialOutput::default(),
        };
        if let (Some(lr), Some(rr)) = (left.root(), right.root()) {
            if runner.min_dist(lr, rr) <= runner.eps {
                runner.join_pair(lr, rr);
            }
        }
        runner.flush_window();
        runner.out
    }
}

struct Runner<'a, L, R, const D: usize> {
    left: &'a L,
    right: &'a R,
    eps: f64,
    metric: Metric,
    mode: SpatialMode,
    window: VecDeque<OpenCrossGroup<D>>,
    out: SpatialOutput,
}

impl<L, R, const D: usize> Runner<'_, L, R, D>
where
    L: JoinIndex<D>,
    R: JoinIndex<D>,
{
    fn min_dist(&self, a: NodeId, b: NodeId) -> f64 {
        self.metric.min_dist_mbr(&self.left.node_mbr(a), &self.right.node_mbr(b))
    }

    fn pair_diameter(&self, a: NodeId, b: NodeId) -> f64 {
        self.metric.max_dist_mbr(&self.left.node_mbr(a), &self.right.node_mbr(b))
    }

    fn join_pair(&mut self, a: NodeId, b: NodeId) {
        self.out.stats.pair_visits += 1;
        let compact = !matches!(self.mode, SpatialMode::Standard);
        if compact && self.pair_diameter(a, b) <= self.eps {
            self.out.stats.early_stops_pair += 1;
            let mut l = Vec::new();
            let mut r = Vec::new();
            self.left.collect_record_ids(a, &mut l);
            self.right.collect_record_ids(b, &mut r);
            let mbr = self.left.node_mbr(a).union(&self.right.node_mbr(b));
            self.emit_group(l, r, mbr);
            return;
        }
        match (self.left.is_leaf(a), self.right.is_leaf(b)) {
            (true, true) => {
                let ea = self.left.leaf_entries(a).to_vec();
                let eb = self.right.leaf_entries(b).to_vec();
                for x in &ea {
                    for y in &eb {
                        self.out.stats.distance_computations += 1;
                        if self.metric.within(&x.point, &y.point, self.eps) {
                            self.emit_link(x.id, &x.point, y.id, &y.point);
                        }
                    }
                }
            }
            (true, false) => {
                for c in self.right.children(b).to_vec() {
                    if self.min_dist(a, c) <= self.eps {
                        self.join_pair(a, c);
                    } else {
                        self.out.stats.pairs_pruned += 1;
                    }
                }
            }
            (false, true) => {
                for c in self.left.children(a).to_vec() {
                    if self.min_dist(c, b) <= self.eps {
                        self.join_pair(c, b);
                    } else {
                        self.out.stats.pairs_pruned += 1;
                    }
                }
            }
            (false, false) => {
                let ca = self.left.children(a).to_vec();
                let cb = self.right.children(b).to_vec();
                for &x in &ca {
                    for &y in &cb {
                        if self.min_dist(x, y) <= self.eps {
                            self.join_pair(x, y);
                        } else {
                            self.out.stats.pairs_pruned += 1;
                        }
                    }
                }
            }
        }
    }

    fn emit_link(&mut self, l: RecordId, pl: &Point<D>, r: RecordId, pr: &Point<D>) {
        let g = match self.mode {
            SpatialMode::CompactWindowed(g) => g,
            _ => 0,
        };
        if g > 0 {
            for group in self.window.iter_mut().rev() {
                self.out.stats.merge_attempts += 1;
                if group.try_merge(l, pl, r, pr, self.eps, self.metric) {
                    self.out.stats.merges_succeeded += 1;
                    return;
                }
            }
            let group = OpenCrossGroup {
                left: vec![l],
                left_seen: HashSet::from([l]),
                right: vec![r],
                right_seen: HashSet::from([r]),
                mbr: Mbr::from_corners(pl, pr),
            };
            self.push_group(group, g);
        } else {
            self.out.stats.links_emitted += 1;
            self.out.items.push(SpatialItem::Link(l, r));
        }
    }

    /// Emits a node-pair group; in windowed mode it enters the window
    /// (seeded with the covering node shapes) so later links can merge in.
    fn emit_group(&mut self, left: Vec<RecordId>, right: Vec<RecordId>, mbr: Mbr<D>) {
        if left.is_empty() || right.is_empty() {
            return;
        }
        if let SpatialMode::CompactWindowed(g) = self.mode {
            if g > 0 {
                let left_seen: HashSet<RecordId> = left.iter().copied().collect();
                let right_seen: HashSet<RecordId> = right.iter().copied().collect();
                let group = OpenCrossGroup { left, left_seen, right, right_seen, mbr };
                self.push_group(group, g);
                return;
            }
        }
        self.finalize_group(left, right);
    }

    fn push_group(&mut self, group: OpenCrossGroup<D>, g: usize) {
        self.window.push_back(group);
        if self.window.len() > g {
            // csj-lint: allow(panic-safety) — len > g ≥ 0 guarantees the
            // window is non-empty when eviction triggers.
            let evicted = self.window.pop_front().expect("non-empty window");
            self.finalize_group(evicted.left, evicted.right);
        }
    }

    fn finalize_group(&mut self, left: Vec<RecordId>, right: Vec<RecordId>) {
        self.out.stats.groups_emitted += 1;
        self.out.stats.group_members_emitted += (left.len() + right.len()) as u64;
        self.out.items.push(SpatialItem::Group { left, right });
    }

    fn flush_window(&mut self) {
        while let Some(g) = self.window.pop_front() {
            self.finalize_group(g.left, g.right);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_cross_links;
    use csj_index::{
        mtree::{MTree, MTreeConfig},
        rstar::RStarTree,
        rtree::RTree,
        RTreeConfig,
    };

    fn left_points(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Point::new([t, (t * 31.0).sin() * 0.03])
            })
            .collect()
    }

    fn right_points(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Point::new([t, 0.02 + (t * 17.0).cos() * 0.03])
            })
            .collect()
    }

    #[test]
    fn all_modes_lossless() {
        let (lp, rp) = (left_points(150), right_points(170));
        let lt = RStarTree::from_points(&lp, RTreeConfig::with_max_fanout(6));
        let rt = RStarTree::from_points(&rp, RTreeConfig::with_max_fanout(6));
        for eps in [0.01, 0.05, 0.2] {
            let want = brute_force_cross_links(&lp, &rp, eps, Metric::Euclidean);
            for mode in
                [SpatialMode::Standard, SpatialMode::Compact, SpatialMode::CompactWindowed(10)]
            {
                let out = SpatialJoin::new(eps, mode).run(&lt, &rt);
                assert_eq!(out.expanded_link_set(), want, "eps={eps} mode={mode:?}");
            }
        }
    }

    #[test]
    fn compact_output_no_larger() {
        let (lp, rp) = (left_points(250), right_points(250));
        let lt = RStarTree::from_points(&lp, RTreeConfig::with_max_fanout(8));
        let rt = RStarTree::from_points(&rp, RTreeConfig::with_max_fanout(8));
        let eps = 0.08;
        let std_out = SpatialJoin::new(eps, SpatialMode::Standard).run(&lt, &rt);
        let cmp_out = SpatialJoin::new(eps, SpatialMode::Compact).run(&lt, &rt);
        let win_out = SpatialJoin::new(eps, SpatialMode::CompactWindowed(10)).run(&lt, &rt);
        let w = 3;
        assert!(cmp_out.total_bytes(w) <= std_out.total_bytes(w));
        assert!(win_out.total_bytes(w) <= cmp_out.total_bytes(w));
    }

    #[test]
    fn disjoint_datasets_empty_output() {
        let lp = vec![Point::new([0.0, 0.0]), Point::new([0.1, 0.0])];
        let rp = vec![Point::new([5.0, 5.0]), Point::new([5.1, 5.0])];
        let lt = RStarTree::from_points(&lp, RTreeConfig::with_max_fanout(4));
        let rt = RStarTree::from_points(&rp, RTreeConfig::with_max_fanout(4));
        let out = SpatialJoin::new(0.2, SpatialMode::CompactWindowed(5)).run(&lt, &rt);
        assert!(out.items.is_empty());
    }

    #[test]
    fn empty_tree_sides() {
        let lp = vec![Point::new([0.0, 0.0])];
        let lt = RStarTree::from_points(&lp, RTreeConfig::with_max_fanout(4));
        let empty = RStarTree::<2>::new(RTreeConfig::default());
        let out = SpatialJoin::new(1.0, SpatialMode::Standard).run(&lt, &empty);
        assert!(out.items.is_empty());
        let out = SpatialJoin::new(1.0, SpatialMode::Standard).run(&empty, &lt);
        assert!(out.items.is_empty());
    }

    #[test]
    fn mixed_tree_types() {
        // A spatial join across *different* index structures: R-tree
        // against M-tree (the trait makes this free).
        let (lp, rp) = (left_points(100), right_points(100));
        let lt = RTree::from_points(&lp, RTreeConfig::with_max_fanout(6));
        let rt = MTree::from_points(&rp, MTreeConfig::with_max_fanout(6));
        let eps = 0.06;
        let want = brute_force_cross_links(&lp, &rp, eps, Metric::Euclidean);
        let out = SpatialJoin::new(eps, SpatialMode::CompactWindowed(10)).run(&lt, &rt);
        assert_eq!(out.expanded_link_set(), want);
    }

    #[test]
    fn identical_datasets_include_self_pairs() {
        // Unlike the self-join, the cross join of a dataset with itself
        // reports (i, i) pairs — distance zero qualifies.
        let lp = left_points(20);
        let lt = RStarTree::from_points(&lp, RTreeConfig::with_max_fanout(4));
        let out = SpatialJoin::new(0.001, SpatialMode::Standard).run(&lt, &lt);
        let set = out.expanded_link_set();
        for i in 0..20u32 {
            assert!(set.contains(&(i, i)), "self pair ({i},{i})");
        }
    }

    #[test]
    fn group_byte_format_accounting() {
        let link = SpatialItem::Link(1, 2);
        assert_eq!(link.format_bytes(4), 12, "two ids + separators + '| '");
        let group = SpatialItem::Group { left: vec![1, 2], right: vec![3] };
        assert_eq!(group.format_bytes(4), 17);
        assert_eq!(group.implied_links(), 2);
    }

    #[test]
    fn write_to_matches_byte_accounting() {
        use csj_storage::{OutputSink, VecSink};
        let out = SpatialOutput {
            items: vec![
                SpatialItem::Link(1, 22),
                SpatialItem::Group { left: vec![3, 4], right: vec![5] },
            ],
            stats: JoinStats::default(),
        };
        let width = 4;
        let mut sink = VecSink::new();
        out.write_to(&mut sink, width).expect("vec sink cannot fail");
        assert_eq!(sink.as_str(), "0001 | 0022\n0003 0004 | 0005\n");
        assert_eq!(sink.bytes_written(), out.total_bytes(width));
    }

    #[test]
    fn different_density_distributions() {
        // The paper: when the two data sets distribute differently, the
        // inclusion check often fails and few groups form — but the
        // result stays correct.
        let lp: Vec<Point<2>> = (0..120)
            .map(|i| Point::new([(i % 11) as f64 / 11.0, (i / 11) as f64 / 11.0]))
            .collect();
        let rp: Vec<Point<2>> = (0..120)
            .map(|i| Point::new([0.5 + (i % 12) as f64 * 1e-3, 0.5 + (i / 12) as f64 * 1e-3]))
            .collect();
        let lt = RStarTree::from_points(&lp, RTreeConfig::with_max_fanout(8));
        let rt = RStarTree::from_points(&rp, RTreeConfig::with_max_fanout(8));
        let eps = 0.05;
        let want = brute_force_cross_links(&lp, &rp, eps, Metric::Euclidean);
        let out = SpatialJoin::new(eps, SpatialMode::CompactWindowed(10)).run(&lt, &rt);
        assert_eq!(out.expanded_link_set(), want);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::brute::brute_force_cross_links;
    use csj_index::{rstar::RStarTree, RTreeConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The spatial join is lossless in every mode on arbitrary data.
        #[test]
        fn spatial_join_lossless(
            lp in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 0..80),
            rp in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 0..80),
            eps in 0.0f64..0.5,
            mode in 0usize..3,
        ) {
            let lp: Vec<Point<2>> = lp.into_iter().map(Point::new).collect();
            let rp: Vec<Point<2>> = rp.into_iter().map(Point::new).collect();
            let lt = RStarTree::from_points(&lp, RTreeConfig::with_max_fanout(5));
            let rt = RStarTree::from_points(&rp, RTreeConfig::with_max_fanout(5));
            let mode = match mode {
                0 => SpatialMode::Standard,
                1 => SpatialMode::Compact,
                _ => SpatialMode::CompactWindowed(7),
            };
            let out = SpatialJoin::new(eps, mode).run(&lt, &rt);
            prop_assert_eq!(
                out.expanded_link_set(),
                brute_force_cross_links(&lp, &rp, eps, Metric::Euclidean)
            );
        }
    }
}
