//! Budgeted SSJ runs with extrapolated estimates.
//!
//! In the paper's Figures 5 and 7, several SSJ points are *estimates*
//! (filled markers): the run crashed after exceeding free disk space. Our
//! harness reproduces those points with a link budget: the traversal is
//! split into root-level tasks, aborted once the budget is exceeded, and
//! the totals are extrapolated linearly from the completed fraction.

use csj_index::JoinIndex;
use csj_storage::{CountingSink, OutputWriter};

use crate::engine::{infallible, DirectEmit, Engine, StreamSink};
use crate::stats::JoinStats;
use crate::JoinConfig;

/// Result of a budgeted SSJ run.
#[derive(Clone, Debug)]
pub struct SsjEstimate {
    /// `true` if the run finished within budget (values are then exact).
    pub completed: bool,
    /// Links actually emitted before the stop.
    pub measured_links: u64,
    /// Bytes actually emitted before the stop.
    pub measured_bytes: u64,
    /// Fraction of root-level tasks completed, in `(0, 1]`.
    pub fraction_done: f64,
    /// Counters accumulated up to the stop.
    pub stats: JoinStats,
}

impl SsjEstimate {
    /// Estimated total link count (exact when `completed`).
    pub fn estimated_links(&self) -> f64 {
        self.measured_links as f64 / self.fraction_done
    }

    /// Estimated total output bytes (exact when `completed`).
    pub fn estimated_bytes(&self) -> f64 {
        self.measured_bytes as f64 / self.fraction_done
    }
}

/// An SSJ runner that stops once `max_links` links have been emitted.
#[derive(Clone, Copy, Debug)]
pub struct BudgetedSsj {
    cfg: JoinConfig,
    max_links: u64,
}

impl BudgetedSsj {
    /// A budgeted SSJ with range `epsilon` and the given link budget.
    pub fn new(epsilon: f64, max_links: u64) -> Self {
        assert!(max_links > 0, "budget must be positive");
        BudgetedSsj { cfg: JoinConfig::new(epsilon), max_links }
    }

    /// A budgeted SSJ from an explicit configuration.
    pub fn with_config(cfg: JoinConfig, max_links: u64) -> Self {
        BudgetedSsj { cfg, max_links }
    }

    /// Runs SSJ (output counted, not stored) until completion or budget
    /// exhaustion. `id_width` is the zero-padding width used for byte
    /// accounting.
    pub fn run<T: JoinIndex<D>, const D: usize>(&self, tree: &T, id_width: usize) -> SsjEstimate {
        let mut writer = OutputWriter::new(CountingSink::new(), id_width);
        let mut engine =
            Engine::new(tree, self.cfg, false, DirectEmit, StreamSink::new(&mut writer));

        let Some(root) = tree.root() else {
            return SsjEstimate {
                completed: true,
                measured_links: 0,
                measured_bytes: 0,
                fraction_done: 1.0,
                stats: engine.stats,
            };
        };

        // Root-level task list: child self-joins plus qualifying child
        // pairs. A leaf root is a single task.
        enum Task {
            SelfJoin(csj_index::NodeId),
            PairJoin(csj_index::NodeId, csj_index::NodeId),
        }
        let mut tasks: Vec<Task> = Vec::new();
        if tree.is_leaf(root) {
            tasks.push(Task::SelfJoin(root));
        } else {
            let children = tree.children(root).to_vec();
            for (i, &a) in children.iter().enumerate() {
                tasks.push(Task::SelfJoin(a));
                for &b in &children[(i + 1)..] {
                    if tree.min_dist(a, b, self.cfg.metric) <= self.cfg.epsilon {
                        tasks.push(Task::PairJoin(a, b));
                    }
                }
            }
        }

        let total = tasks.len().max(1);
        let mut done = 0usize;
        let mut completed = true;
        for task in tasks {
            // A counting sink cannot fail, so the engine results are
            // infallible here.
            match task {
                Task::SelfJoin(n) => infallible(engine.join_node(n)),
                Task::PairJoin(a, b) => infallible(engine.join_pair(a, b)),
            }
            done += 1;
            if engine.stats.links_emitted >= self.max_links && done < total {
                completed = false;
                break;
            }
        }
        infallible(engine.finish_only());

        let stats = std::mem::take(&mut engine.stats);
        drop(engine);
        SsjEstimate {
            completed,
            measured_links: stats.links_emitted,
            measured_bytes: writer.bytes_written(),
            fraction_done: done as f64 / total as f64,
            stats,
        }
    }
}

/// Convenience: exact SSJ link count and byte size without storing output
/// (a [`BudgetedSsj`] with an unlimited budget).
pub fn ssj_exact_size<T: JoinIndex<D>, const D: usize>(
    tree: &T,
    epsilon: f64,
    id_width: usize,
) -> (u64, u64) {
    let est = BudgetedSsj::new(epsilon, u64::MAX).run(tree, id_width);
    debug_assert!(est.completed);
    (est.measured_links, est.measured_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssj::SsjJoin;
    use csj_geom::Point;
    use csj_index::{rstar::RStarTree, RTreeConfig};

    fn pts(n: usize) -> Vec<Point<2>> {
        (0..n).map(|i| Point::new([(i % 17) as f64 / 17.0, (i % 23) as f64 / 23.0])).collect()
    }

    #[test]
    fn unlimited_budget_is_exact() {
        let points = pts(400);
        let tree = RStarTree::from_points(&points, RTreeConfig::with_max_fanout(8));
        let eps = 0.2;
        let exact = SsjJoin::new(eps).run(&tree);
        let est = BudgetedSsj::new(eps, u64::MAX).run(&tree, 3);
        assert!(est.completed);
        assert_eq!(est.fraction_done, 1.0);
        assert_eq!(est.measured_links, exact.num_links() as u64);
        assert_eq!(est.measured_bytes, exact.total_bytes(3));
        assert_eq!(est.estimated_links(), exact.num_links() as f64);
    }

    #[test]
    fn tight_budget_stops_early_and_extrapolates() {
        let points = pts(600);
        let tree = RStarTree::from_points(&points, RTreeConfig::with_max_fanout(8));
        let eps = 0.3;
        let exact_links = SsjJoin::new(eps).run(&tree).num_links() as f64;
        let est = BudgetedSsj::new(eps, 50).run(&tree, 3);
        assert!(!est.completed);
        assert!(est.fraction_done > 0.0 && est.fraction_done < 1.0);
        assert!(est.measured_links >= 50);
        // The extrapolation is crude but must be the right order of
        // magnitude on roughly uniform data.
        let ratio = est.estimated_links() / exact_links;
        assert!(
            (0.1..10.0).contains(&ratio),
            "estimate {} vs exact {exact_links} (ratio {ratio})",
            est.estimated_links()
        );
    }

    #[test]
    fn empty_tree_completes() {
        let tree = RStarTree::<2>::new(RTreeConfig::default());
        let est = BudgetedSsj::new(0.1, 100).run(&tree, 3);
        assert!(est.completed);
        assert_eq!(est.measured_links, 0);
    }

    #[test]
    fn exact_size_helper_matches_run() {
        let points = pts(200);
        let tree = RStarTree::from_points(&points, RTreeConfig::with_max_fanout(6));
        let out = SsjJoin::new(0.15).run(&tree);
        let (links, bytes) = ssj_exact_size(&tree, 0.15, 3);
        assert_eq!(links, out.num_links() as u64);
        assert_eq!(bytes, out.total_bytes(3));
    }
}
