//! Parallel similarity joins (extension beyond the paper).
//!
//! The recursion of Figure 3 decomposes naturally: expand the tree a few
//! levels into independent *tasks* (subtree self-joins and qualifying
//! subtree pairs), then run the ordinary [`Engine`] on each task from a
//! worker pool. Results are reassembled in task order, so output is
//! deterministic regardless of scheduling.
//!
//! Correctness is unchanged: SSJ and N-CSJ share no state across tasks;
//! for CSJ(g), each task gets its own fresh window — windows only affect
//! *compaction* (which links land in which group), never the represented
//! link set, so the parallel CSJ is still lossless. Its output is
//! slightly larger than the sequential run's because merges cannot cross
//! task boundaries.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use csj_index::{JoinIndex, NodeId};

use crate::budget::{BudgetUsage, CancelToken, Completion, RunBudget, StopReason};
use crate::engine::{infallible, CollectSink, DirectEmit, Engine, LinkHandler, WindowedEmit};
use crate::group::MbrShape;
use crate::output::{JoinOutput, OutputItem};
use crate::stats::JoinStats;
use crate::JoinConfig;

/// Which algorithm the parallel runner executes per task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParallelAlgo {
    /// Standard similarity join.
    Ssj,
    /// Naive compact join.
    Ncsj,
    /// Compact join; every task gets a fresh window of this size.
    Csj(usize),
}

/// A parallel similarity self-join.
///
/// ```
/// use csj_core::parallel::{ParallelAlgo, ParallelJoin};
/// use csj_core::ssj::SsjJoin;
/// use csj_geom::Point;
/// use csj_index::{rstar::RStarTree, RTreeConfig};
///
/// let pts: Vec<Point<2>> = (0..2000)
///     .map(|i| Point::new([(i % 50) as f64 / 50.0, (i / 50) as f64 / 40.0]))
///     .collect();
/// let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
/// let par = ParallelJoin::new(0.05, ParallelAlgo::Ssj).with_threads(4).run(&tree);
/// let seq = SsjJoin::new(0.05).run(&tree);
/// assert_eq!(par.expanded_link_set(), seq.expanded_link_set());
/// ```
#[derive(Clone, Debug)]
pub struct ParallelJoin {
    cfg: JoinConfig,
    algo: ParallelAlgo,
    threads: usize,
    budget: RunBudget,
    cancel: Option<CancelToken>,
    id_width: usize,
}

enum Task {
    SelfJoin(NodeId),
    PairJoin(NodeId, NodeId),
}

impl ParallelJoin {
    /// A parallel join with range `epsilon`.
    pub fn new(epsilon: f64, algo: ParallelAlgo) -> Self {
        Self::with_config(JoinConfig::new(epsilon), algo)
    }

    /// A parallel join from an explicit configuration.
    pub fn with_config(cfg: JoinConfig, algo: ParallelAlgo) -> Self {
        ParallelJoin {
            cfg,
            algo,
            threads: 4,
            budget: RunBudget::unlimited(),
            cancel: None,
            id_width: 6,
        }
    }

    /// Sets the worker count (default 4; clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the metric.
    pub fn with_metric(mut self, metric: csj_geom::Metric) -> Self {
        self.cfg.metric = metric;
        self
    }

    /// Applies a resource budget, checked at task boundaries: when a limit
    /// trips, in-flight tasks finish (lossless over the processed region)
    /// and the result comes back [`Completion::Partial`].
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a cancellation token. Cancel takes effect *inside* a
    /// running task (the engine checks between recursion steps), so the
    /// join stops within one task's worth of work.
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Sets the id width used for byte-budget accounting (default 6).
    pub fn with_id_width(mut self, width: usize) -> Self {
        self.id_width = width;
        self
    }

    /// Runs the join. Output rows appear in deterministic (task) order.
    ///
    /// With a budget or cancel token attached, the run may stop early; the
    /// returned [`JoinOutput::completion`] says so, and the rows produced
    /// remain lossless over the processed region.
    pub fn run<T: JoinIndex<D> + Sync, const D: usize>(&self, tree: &T) -> JoinOutput {
        let tasks = self.expand_tasks(tree);
        if tasks.is_empty() {
            return JoinOutput::default();
        }
        // `completed` is true when the engine ran the task to the end
        // (false only under a mid-task cancel).
        type TaskResult = (Vec<OutputItem>, JoinStats, bool);
        let start = Instant::now();
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let stop_reason: Mutex<Option<StopReason>> = Mutex::new(None);
        let (links, groups, bytes) = (AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0));
        let results: Mutex<Vec<Option<TaskResult>>> =
            Mutex::new((0..tasks.len()).map(|_| None).collect());
        let record_stop = |reason: StopReason| {
            stop.store(true, Ordering::Relaxed);
            let mut guard = stop_reason.lock().expect("stop reason lock poisoned");
            guard.get_or_insert(reason);
        };

        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(tasks.len()) {
                scope.spawn(|| loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // Task-boundary checks: cancel and budget.
                    if self.cancel.as_ref().is_some_and(CancelToken::is_canceled) {
                        record_stop(StopReason::Canceled);
                        break;
                    }
                    if !self.budget.is_unlimited() {
                        let usage = BudgetUsage {
                            links: links.load(Ordering::Relaxed),
                            groups: groups.load(Ordering::Relaxed),
                            bytes: bytes.load(Ordering::Relaxed),
                        };
                        if let Some(r) = self.budget.exceeded_by(&usage, start.elapsed()) {
                            record_stop(r);
                            break;
                        }
                    }
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(idx) else { break };
                    let (items, stats, completed) = self.run_task(tree, task);
                    if !completed {
                        record_stop(StopReason::Canceled);
                    }
                    links.fetch_add(stats.links_emitted + stats.links_in_groups, Ordering::Relaxed);
                    groups.fetch_add(stats.groups_emitted, Ordering::Relaxed);
                    let task_bytes: u64 = items.iter().map(|i| i.format_bytes(self.id_width)).sum();
                    bytes.fetch_add(task_bytes, Ordering::Relaxed);
                    results.lock().expect("worker panicked holding results")[idx] =
                        Some((items, stats, completed));
                });
            }
        });

        let mut output =
            JoinOutput { stats: JoinStats::new(self.cfg.record_access_log), ..Default::default() };
        let total = tasks.len();
        let mut done = 0usize;
        for slot in results.into_inner().expect("poisoned results") {
            let Some((items, stats, completed)) = slot else { continue };
            output.items.extend(items);
            output.stats.absorb(&stats);
            if completed {
                done += 1;
            }
        }
        let reason = stop_reason.into_inner().expect("stop reason lock poisoned");
        output.completion = match reason {
            None if done == total => Completion::Complete,
            // A worker stopping leaves unclaimed tasks; attribute the
            // partial result to the recorded reason (cancel if a task was
            // interrupted mid-flight).
            maybe => Completion::partial(
                maybe.unwrap_or(StopReason::Canceled),
                done as f64 / total as f64,
                links.load(Ordering::Relaxed),
                bytes.load(Ordering::Relaxed),
            ),
        };
        output
    }

    fn run_task<T: JoinIndex<D>, const D: usize>(
        &self,
        tree: &T,
        task: &Task,
    ) -> (Vec<OutputItem>, JoinStats, bool) {
        match self.algo {
            ParallelAlgo::Ssj => self.run_task_with(tree, task, false, DirectEmit),
            ParallelAlgo::Ncsj => self.run_task_with(tree, task, true, DirectEmit),
            ParallelAlgo::Csj(g) => self.run_task_with(
                tree,
                task,
                true,
                WindowedEmit::<MbrShape<D>, D>::new(g, self.cfg.epsilon, self.cfg.metric),
            ),
        }
    }

    fn run_task_with<T: JoinIndex<D>, H: LinkHandler<D>, const D: usize>(
        &self,
        tree: &T,
        task: &Task,
        early_stop: bool,
        handler: H,
    ) -> (Vec<OutputItem>, JoinStats, bool) {
        let mut engine = Engine::new(tree, self.cfg, early_stop, handler, CollectSink::default());
        if let Some(token) = &self.cancel {
            engine.set_cancel(token.clone());
        }
        match task {
            Task::SelfJoin(n) => infallible(engine.join_node(*n)),
            Task::PairJoin(a, b) => infallible(engine.join_pair(*a, *b)),
        }
        infallible(engine.finish_only());
        let completed = engine.stop_reason().is_none();
        (std::mem::take(&mut engine.sink.items), engine.stats, completed)
    }

    /// Breadth-first task expansion until there are comfortably more
    /// tasks than workers (or nothing left to split).
    fn expand_tasks<T: JoinIndex<D>, const D: usize>(&self, tree: &T) -> Vec<Task> {
        let Some(root) = tree.root() else { return Vec::new() };
        let target = self.threads * 8;
        let eps = self.cfg.epsilon;
        let metric = self.cfg.metric;

        let mut queue = std::collections::VecDeque::from([Task::SelfJoin(root)]);
        let mut done: Vec<Task> = Vec::new();
        while done.len() + queue.len() < target {
            let Some(task) = queue.pop_front() else { break };
            match task {
                Task::SelfJoin(n) if !tree.is_leaf(n) => {
                    // A compact join would early-stop this whole subtree;
                    // do not split it apart.
                    if self.algo != ParallelAlgo::Ssj && tree.max_diameter(n, metric) <= eps {
                        done.push(Task::SelfJoin(n));
                        continue;
                    }
                    let children = tree.children(n).to_vec();
                    for (i, &a) in children.iter().enumerate() {
                        queue.push_back(Task::SelfJoin(a));
                        for &b in &children[(i + 1)..] {
                            if tree.min_dist(a, b, metric) <= eps {
                                queue.push_back(Task::PairJoin(a, b));
                            }
                        }
                    }
                }
                other => done.push(other),
            }
        }
        done.extend(queue);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_links;
    use crate::csj::CsjJoin;
    use crate::ssj::SsjJoin;
    use csj_geom::Point;
    use csj_index::{rstar::RStarTree, RTreeConfig};

    fn clustered(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let c = (i % 7) as f64 * 0.13;
                Point::new([c + ((i * 31) % 97) as f64 * 2e-4, c + ((i * 57) % 89) as f64 * 2e-4])
            })
            .collect()
    }

    #[test]
    fn parallel_ssj_matches_sequential() {
        let pts = clustered(3_000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        for eps in [0.01, 0.1] {
            let seq = SsjJoin::new(eps).run(&tree);
            for threads in [1, 2, 8] {
                let par =
                    ParallelJoin::new(eps, ParallelAlgo::Ssj).with_threads(threads).run(&tree);
                assert_eq!(par.expanded_link_set(), seq.expanded_link_set(), "threads={threads}");
                assert_eq!(
                    par.stats.distance_computations, seq.stats.distance_computations,
                    "identical work, just distributed"
                );
            }
        }
    }

    #[test]
    fn parallel_ncsj_and_csj_are_lossless() {
        let pts = clustered(2_500);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let eps = 0.05;
        let truth = brute_force_links(&pts, eps);
        for algo in [ParallelAlgo::Ncsj, ParallelAlgo::Csj(10)] {
            let out = ParallelJoin::new(eps, algo).with_threads(6).run(&tree);
            assert_eq!(out.expanded_link_set(), truth, "{algo:?}");
        }
    }

    #[test]
    fn parallel_output_is_deterministic() {
        let pts = clustered(2_000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        let join = ParallelJoin::new(0.05, ParallelAlgo::Csj(10)).with_threads(7);
        let a = join.run(&tree);
        let b = join.run(&tree);
        assert_eq!(a.items, b.items, "same rows in the same order every run");
    }

    #[test]
    fn parallel_csj_compacts_close_to_sequential() {
        let pts = clustered(3_000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let eps = 0.05;
        let seq = CsjJoin::new(eps).with_window(10).run(&tree);
        let par = ParallelJoin::new(eps, ParallelAlgo::Csj(10)).with_threads(4).run(&tree);
        assert_eq!(par.expanded_link_set(), seq.expanded_link_set());
        // Per-task windows lose some merges but not catastrophically.
        let (ps, ss) = (par.total_bytes(4) as f64, seq.total_bytes(4) as f64);
        assert!(ps <= ss * 1.5, "parallel bytes {ps} vs sequential {ss}");
    }

    #[test]
    fn empty_and_tiny_trees() {
        let empty = RStarTree::<2>::new(RTreeConfig::default());
        let out = ParallelJoin::new(0.1, ParallelAlgo::Ssj).run(&empty);
        assert!(out.items.is_empty());
        let one = RStarTree::from_points(&[Point::new([0.5, 0.5])], RTreeConfig::default());
        let out = ParallelJoin::new(0.1, ParallelAlgo::Csj(10)).run(&one);
        assert!(out.items.is_empty());
    }

    #[test]
    fn precanceled_token_stops_within_one_task() {
        let pts = clustered(3_000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let token = CancelToken::new();
        token.cancel();
        let out = ParallelJoin::new(0.05, ParallelAlgo::Csj(10))
            .with_threads(4)
            .with_cancel(&token)
            .run(&tree);
        assert_eq!(out.completion.stop_reason(), Some(StopReason::Canceled));
        assert!(out.items.is_empty(), "the boundary check fires before the first task completes");
    }

    #[test]
    fn midrun_cancel_yields_a_lossless_prefix() {
        let pts = clustered(4_000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let eps = 0.05;
        let truth = brute_force_links(&pts, eps);
        let token = CancelToken::new();
        let canceller = std::thread::spawn({
            let token = token.clone();
            move || token.cancel()
        });
        let out = ParallelJoin::new(eps, ParallelAlgo::Ssj)
            .with_threads(2)
            .with_cancel(&token)
            .run(&tree);
        canceller.join().expect("canceller thread");
        // Depending on timing the run may complete or stop early; either
        // way, every emitted link must be a true link.
        for link in out.expanded_link_set() {
            assert!(truth.contains(&link), "canceled run emitted false link {link:?}");
        }
        if out.completion.is_complete() {
            assert_eq!(out.expanded_link_set(), truth);
        } else {
            assert_eq!(out.completion.stop_reason(), Some(StopReason::Canceled));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::brute::brute_force_links;
    use csj_geom::Point;
    use csj_index::{rstar::RStarTree, RTreeConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The parallel runner is lossless for every algorithm, thread
        /// count and window over arbitrary data.
        #[test]
        fn parallel_lossless(
            pts in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 0..150),
            eps in 0.0f64..0.5,
            threads in 1usize..6,
            algo_idx in 0usize..3,
        ) {
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let tree = RStarTree::from_points(&points, RTreeConfig::with_max_fanout(5));
            let algo = [ParallelAlgo::Ssj, ParallelAlgo::Ncsj, ParallelAlgo::Csj(7)][algo_idx];
            let out = ParallelJoin::new(eps, algo).with_threads(threads).run(&tree);
            prop_assert_eq!(out.expanded_link_set(), brute_force_links(&points, eps));
        }
    }
}
