//! Parallel similarity joins (extension beyond the paper).
//!
//! The recursion of Figure 3 decomposes naturally: expand the tree a few
//! levels into independent *tasks* (subtree self-joins and qualifying
//! subtree pairs), then run the ordinary [`Engine`] on each task from a
//! worker pool. Results are reassembled in task order, so output is
//! deterministic regardless of scheduling.
//!
//! Correctness is unchanged: SSJ and N-CSJ share no state across tasks;
//! for CSJ(g), each task gets its own fresh window — windows only affect
//! *compaction* (which links land in which group), never the represented
//! link set, so the parallel CSJ is still lossless. Its output is
//! slightly larger than the sequential run's because merges cannot cross
//! task boundaries.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use csj_index::{JoinIndex, NodeId};

use crate::engine::{CollectSink, DirectEmit, Engine, LinkHandler, WindowedEmit};
use crate::group::MbrShape;
use crate::output::{JoinOutput, OutputItem};
use crate::stats::JoinStats;
use crate::JoinConfig;

/// Which algorithm the parallel runner executes per task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParallelAlgo {
    /// Standard similarity join.
    Ssj,
    /// Naive compact join.
    Ncsj,
    /// Compact join; every task gets a fresh window of this size.
    Csj(usize),
}

/// A parallel similarity self-join.
///
/// ```
/// use csj_core::parallel::{ParallelAlgo, ParallelJoin};
/// use csj_core::ssj::SsjJoin;
/// use csj_geom::Point;
/// use csj_index::{rstar::RStarTree, RTreeConfig};
///
/// let pts: Vec<Point<2>> = (0..2000)
///     .map(|i| Point::new([(i % 50) as f64 / 50.0, (i / 50) as f64 / 40.0]))
///     .collect();
/// let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
/// let par = ParallelJoin::new(0.05, ParallelAlgo::Ssj).with_threads(4).run(&tree);
/// let seq = SsjJoin::new(0.05).run(&tree);
/// assert_eq!(par.expanded_link_set(), seq.expanded_link_set());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ParallelJoin {
    cfg: JoinConfig,
    algo: ParallelAlgo,
    threads: usize,
}

enum Task {
    SelfJoin(NodeId),
    PairJoin(NodeId, NodeId),
}

impl ParallelJoin {
    /// A parallel join with range `epsilon`.
    pub fn new(epsilon: f64, algo: ParallelAlgo) -> Self {
        ParallelJoin { cfg: JoinConfig::new(epsilon), algo, threads: 4 }
    }

    /// A parallel join from an explicit configuration.
    pub fn with_config(cfg: JoinConfig, algo: ParallelAlgo) -> Self {
        ParallelJoin { cfg, algo, threads: 4 }
    }

    /// Sets the worker count (default 4; clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the metric.
    pub fn with_metric(mut self, metric: csj_geom::Metric) -> Self {
        self.cfg.metric = metric;
        self
    }

    /// Runs the join. Output rows appear in deterministic (task) order.
    pub fn run<T: JoinIndex<D> + Sync, const D: usize>(&self, tree: &T) -> JoinOutput {
        let tasks = self.expand_tasks(tree);
        if tasks.is_empty() {
            return JoinOutput::default();
        }
        type TaskResult = (Vec<OutputItem>, JoinStats);
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<TaskResult>>> =
            Mutex::new((0..tasks.len()).map(|_| None).collect());

        crossbeam::scope(|scope| {
            for _ in 0..self.threads.min(tasks.len()) {
                scope.spawn(|_| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(idx) else { break };
                    let (items, stats) = self.run_task(tree, task);
                    results.lock().expect("worker panicked holding results")[idx] =
                        Some((items, stats));
                });
            }
        })
        .expect("join worker panicked");

        let mut output = JoinOutput {
            stats: JoinStats::new(self.cfg.record_access_log),
            ..Default::default()
        };
        for slot in results.into_inner().expect("poisoned results") {
            let (items, stats) = slot.expect("task never ran");
            output.items.extend(items);
            output.stats.absorb(&stats);
        }
        output
    }

    fn run_task<T: JoinIndex<D>, const D: usize>(
        &self,
        tree: &T,
        task: &Task,
    ) -> (Vec<OutputItem>, JoinStats) {
        match self.algo {
            ParallelAlgo::Ssj => self.run_task_with(tree, task, false, DirectEmit),
            ParallelAlgo::Ncsj => self.run_task_with(tree, task, true, DirectEmit),
            ParallelAlgo::Csj(g) => self.run_task_with(
                tree,
                task,
                true,
                WindowedEmit::<MbrShape<D>, D>::new(g, self.cfg.epsilon, self.cfg.metric),
            ),
        }
    }

    fn run_task_with<T: JoinIndex<D>, H: LinkHandler<D>, const D: usize>(
        &self,
        tree: &T,
        task: &Task,
        early_stop: bool,
        handler: H,
    ) -> (Vec<OutputItem>, JoinStats) {
        let mut engine =
            Engine::new(tree, self.cfg, early_stop, handler, CollectSink::default());
        match task {
            Task::SelfJoin(n) => engine.join_node(*n),
            Task::PairJoin(a, b) => engine.join_pair(*a, *b),
        }
        engine.finish_only();
        (std::mem::take(&mut engine.sink.items), engine.stats)
    }

    /// Breadth-first task expansion until there are comfortably more
    /// tasks than workers (or nothing left to split).
    fn expand_tasks<T: JoinIndex<D>, const D: usize>(&self, tree: &T) -> Vec<Task> {
        let Some(root) = tree.root() else { return Vec::new() };
        let target = self.threads * 8;
        let eps = self.cfg.epsilon;
        let metric = self.cfg.metric;

        let mut queue = std::collections::VecDeque::from([Task::SelfJoin(root)]);
        let mut done: Vec<Task> = Vec::new();
        while done.len() + queue.len() < target {
            let Some(task) = queue.pop_front() else { break };
            match task {
                Task::SelfJoin(n) if !tree.is_leaf(n) => {
                    // A compact join would early-stop this whole subtree;
                    // do not split it apart.
                    if self.algo != ParallelAlgo::Ssj && tree.max_diameter(n, metric) <= eps {
                        done.push(Task::SelfJoin(n));
                        continue;
                    }
                    let children = tree.children(n).to_vec();
                    for (i, &a) in children.iter().enumerate() {
                        queue.push_back(Task::SelfJoin(a));
                        for &b in &children[(i + 1)..] {
                            if tree.min_dist(a, b, metric) <= eps {
                                queue.push_back(Task::PairJoin(a, b));
                            }
                        }
                    }
                }
                other => done.push(other),
            }
        }
        done.extend(queue);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_links;
    use crate::csj::CsjJoin;
    use crate::ssj::SsjJoin;
    use csj_geom::Point;
    use csj_index::{rstar::RStarTree, RTreeConfig};

    fn clustered(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let c = (i % 7) as f64 * 0.13;
                Point::new([c + ((i * 31) % 97) as f64 * 2e-4, c + ((i * 57) % 89) as f64 * 2e-4])
            })
            .collect()
    }

    #[test]
    fn parallel_ssj_matches_sequential() {
        let pts = clustered(3_000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        for eps in [0.01, 0.1] {
            let seq = SsjJoin::new(eps).run(&tree);
            for threads in [1, 2, 8] {
                let par = ParallelJoin::new(eps, ParallelAlgo::Ssj)
                    .with_threads(threads)
                    .run(&tree);
                assert_eq!(par.expanded_link_set(), seq.expanded_link_set(), "threads={threads}");
                assert_eq!(
                    par.stats.distance_computations, seq.stats.distance_computations,
                    "identical work, just distributed"
                );
            }
        }
    }

    #[test]
    fn parallel_ncsj_and_csj_are_lossless() {
        let pts = clustered(2_500);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let eps = 0.05;
        let truth = brute_force_links(&pts, eps);
        for algo in [ParallelAlgo::Ncsj, ParallelAlgo::Csj(10)] {
            let out = ParallelJoin::new(eps, algo).with_threads(6).run(&tree);
            assert_eq!(out.expanded_link_set(), truth, "{algo:?}");
        }
    }

    #[test]
    fn parallel_output_is_deterministic() {
        let pts = clustered(2_000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        let join = ParallelJoin::new(0.05, ParallelAlgo::Csj(10)).with_threads(7);
        let a = join.run(&tree);
        let b = join.run(&tree);
        assert_eq!(a.items, b.items, "same rows in the same order every run");
    }

    #[test]
    fn parallel_csj_compacts_close_to_sequential() {
        let pts = clustered(3_000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let eps = 0.05;
        let seq = CsjJoin::new(eps).with_window(10).run(&tree);
        let par = ParallelJoin::new(eps, ParallelAlgo::Csj(10)).with_threads(4).run(&tree);
        assert_eq!(par.expanded_link_set(), seq.expanded_link_set());
        // Per-task windows lose some merges but not catastrophically.
        let (ps, ss) = (par.total_bytes(4) as f64, seq.total_bytes(4) as f64);
        assert!(ps <= ss * 1.5, "parallel bytes {ps} vs sequential {ss}");
    }

    #[test]
    fn empty_and_tiny_trees() {
        let empty = RStarTree::<2>::new(RTreeConfig::default());
        let out = ParallelJoin::new(0.1, ParallelAlgo::Ssj).run(&empty);
        assert!(out.items.is_empty());
        let one = RStarTree::from_points(&[Point::new([0.5, 0.5])], RTreeConfig::default());
        let out = ParallelJoin::new(0.1, ParallelAlgo::Csj(10)).run(&one);
        assert!(out.items.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::brute::brute_force_links;
    use csj_geom::Point;
    use csj_index::{rstar::RStarTree, RTreeConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The parallel runner is lossless for every algorithm, thread
        /// count and window over arbitrary data.
        #[test]
        fn parallel_lossless(
            pts in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 0..150),
            eps in 0.0f64..0.5,
            threads in 1usize..6,
            algo_idx in 0usize..3,
        ) {
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let tree = RStarTree::from_points(&points, RTreeConfig::with_max_fanout(5));
            let algo = [ParallelAlgo::Ssj, ParallelAlgo::Ncsj, ParallelAlgo::Csj(7)][algo_idx];
            let out = ParallelJoin::new(eps, algo).with_threads(threads).run(&tree);
            prop_assert_eq!(out.expanded_link_set(), brute_force_links(&points, eps));
        }
    }
}
