//! Paged join execution: run any join *through* a buffer pool.
//!
//! Experiment 3's replay approach (record the node-access log, replay it
//! into an LRU pool) answers the paper's question after the fact. This
//! adapter answers it live: [`PagedTree`] wraps any [`JoinIndex`] and
//! charges one page access to an embedded [`BufferPool`] every time a
//! node's contents are read — one tree node ≈ one page, the same mapping
//! the arena layout was designed around. Running SSJ / N-CSJ / CSJ over
//! the wrapper yields hit/miss statistics for the *actual* execution,
//! including the effect of revisits under different pool capacities.

use std::cell::RefCell;

use csj_geom::{Mbr, Metric, RecordId};
use csj_index::{JoinIndex, NodeId};
use csj_storage::{
    BufferPool, BufferStats, FaultPolicy, PageId, RetryPager, RetryPolicy, SimulatedDisk,
    StorageError,
};

/// A [`JoinIndex`] adapter that records every node access in an LRU
/// buffer pool.
///
/// Reads of a node's bounding shape are free (shapes live in the parent's
/// entry on a real R-tree page); reads of a node's *contents* — children
/// lists and leaf entries — cost one page access.
///
/// ```
/// use csj_core::paged::PagedTree;
/// use csj_core::ssj::SsjJoin;
/// use csj_geom::Point;
/// use csj_index::{rstar::RStarTree, RTreeConfig};
///
/// let pts: Vec<Point<2>> = (0..2000)
///     .map(|i| Point::new([(i % 50) as f64 / 50.0, (i / 50) as f64 / 40.0]))
///     .collect();
/// let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
/// let paged = PagedTree::new(&tree, 32);
/// let _ = SsjJoin::new(0.05).run(&paged);
/// let stats = paged.buffer_stats();
/// assert!(stats.accesses() > 0);
/// ```
pub struct PagedTree<'t, T> {
    inner: &'t T,
    pool: RefCell<BufferPool>,
}

impl<'t, T> PagedTree<'t, T> {
    /// Wraps `inner` with a pool of `capacity` pages.
    pub fn new(inner: &'t T, capacity: usize) -> Self {
        PagedTree { inner, pool: RefCell::new(BufferPool::new(capacity)) }
    }

    /// Hit/miss statistics accumulated so far.
    pub fn buffer_stats(&self) -> BufferStats {
        self.pool.borrow().stats()
    }

    fn touch(&self, n: NodeId) {
        self.pool.borrow_mut().access(PageId(n.0 as u64));
    }
}

impl<T: JoinIndex<D>, const D: usize> JoinIndex<D> for PagedTree<'_, T> {
    fn root(&self) -> Option<NodeId> {
        self.inner.root()
    }
    fn is_leaf(&self, n: NodeId) -> bool {
        self.inner.is_leaf(n)
    }
    fn children(&self, n: NodeId) -> &[NodeId] {
        self.touch(n);
        self.inner.children(n)
    }
    fn leaf_entries(&self, n: NodeId) -> &[csj_index::LeafEntry<D>] {
        self.touch(n);
        self.inner.leaf_entries(n)
    }
    fn leaf_soa(&self, n: NodeId) -> csj_geom::SoaView<'_, D> {
        self.touch(n);
        self.inner.leaf_soa(n)
    }
    fn node_mbr(&self, n: NodeId) -> Mbr<D> {
        self.inner.node_mbr(n)
    }
    fn max_diameter(&self, n: NodeId, metric: Metric) -> f64 {
        self.inner.max_diameter(n, metric)
    }
    fn pair_diameter(&self, a: NodeId, b: NodeId, metric: Metric) -> f64 {
        self.inner.pair_diameter(a, b, metric)
    }
    fn min_dist(&self, a: NodeId, b: NodeId, metric: Metric) -> f64 {
        self.inner.min_dist(a, b, metric)
    }
    fn num_records(&self) -> usize {
        self.inner.num_records()
    }
    fn height(&self) -> usize {
        self.inner.height()
    }
    fn collect_record_ids(&self, n: NodeId, out: &mut Vec<RecordId>) {
        // Emitting a subtree group physically reads every node below.
        let mut stack = vec![n];
        while let Some(cur) = stack.pop() {
            self.touch(cur);
            if self.inner.is_leaf(cur) {
                out.extend(self.inner.leaf_entries(cur).iter().map(|e| e.id));
            } else {
                stack.extend_from_slice(self.inner.children(cur));
            }
        }
    }
}

/// Observes storage-layer health while a join runs over a tree wrapper.
///
/// [`JoinIndex`] methods return slices, so a page-read failure cannot be
/// surfaced through the trait itself; fault-backed wrappers record the
/// first unrecoverable error internally and the resilient runner polls
/// this probe at task boundaries to escalate it.
pub trait StorageProbe {
    /// The first unrecoverable storage error seen so far, if any.
    fn storage_error(&self) -> Option<StorageError>;
    /// Transient faults absorbed by retry so far.
    fn io_retries(&self) -> u64;
}

/// A probe for plain in-memory trees: nothing ever fails.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProbe;

impl StorageProbe for NoProbe {
    fn storage_error(&self) -> Option<StorageError> {
        None
    }
    fn io_retries(&self) -> u64 {
        0
    }
}

/// A [`JoinIndex`] adapter whose node reads go through a fault-injecting
/// simulated disk behind a retrying pager.
///
/// Each node-content access reads the node's page from a
/// [`SimulatedDisk`] configured with a [`FaultPolicy`]; transient faults
/// are absorbed by the [`RetryPager`] (counted, visible via
/// [`StorageProbe::io_retries`]). If retries are exhausted the error is
/// recorded — the join keeps traversing the in-memory tree (the data is
/// still there; only the simulated storage failed) and the resilient
/// runner escalates the recorded error at the next task boundary.
pub struct FaultPagedTree<'t, T> {
    inner: &'t T,
    pager: RefCell<RetryPager>,
    first_error: RefCell<Option<StorageError>>,
}

impl<'t, T> FaultPagedTree<'t, T> {
    /// Wraps `inner`; node reads hit a fresh simulated disk with the
    /// given fault policy, behind a retrying pager.
    pub fn new(inner: &'t T, faults: FaultPolicy, retry: RetryPolicy) -> Self {
        FaultPagedTree {
            inner,
            pager: RefCell::new(RetryPager::new(SimulatedDisk::with_faults(faults), retry)),
            first_error: RefCell::new(None),
        }
    }

    /// Total faults the simulated disk injected (absorbed or not).
    pub fn faults_injected(&self) -> u64 {
        self.pager.borrow().disk().faults_injected()
    }

    fn touch(&self, n: NodeId) {
        let mut pager = self.pager.borrow_mut();
        let id = PageId(n.0 as u64);
        pager.disk_mut().alloc_through(id);
        if let Err(e) = pager.read(id) {
            self.first_error.borrow_mut().get_or_insert(e);
        }
    }
}

impl<T> StorageProbe for FaultPagedTree<'_, T> {
    fn storage_error(&self) -> Option<StorageError> {
        self.first_error.borrow().clone()
    }
    fn io_retries(&self) -> u64 {
        self.pager.borrow().retries()
    }
}

impl<T: JoinIndex<D>, const D: usize> JoinIndex<D> for FaultPagedTree<'_, T> {
    fn root(&self) -> Option<NodeId> {
        self.inner.root()
    }
    fn is_leaf(&self, n: NodeId) -> bool {
        self.inner.is_leaf(n)
    }
    fn children(&self, n: NodeId) -> &[NodeId] {
        self.touch(n);
        self.inner.children(n)
    }
    fn leaf_entries(&self, n: NodeId) -> &[csj_index::LeafEntry<D>] {
        self.touch(n);
        self.inner.leaf_entries(n)
    }
    fn leaf_soa(&self, n: NodeId) -> csj_geom::SoaView<'_, D> {
        self.touch(n);
        self.inner.leaf_soa(n)
    }
    fn node_mbr(&self, n: NodeId) -> Mbr<D> {
        self.inner.node_mbr(n)
    }
    fn max_diameter(&self, n: NodeId, metric: Metric) -> f64 {
        self.inner.max_diameter(n, metric)
    }
    fn pair_diameter(&self, a: NodeId, b: NodeId, metric: Metric) -> f64 {
        self.inner.pair_diameter(a, b, metric)
    }
    fn min_dist(&self, a: NodeId, b: NodeId, metric: Metric) -> f64 {
        self.inner.min_dist(a, b, metric)
    }
    fn num_records(&self) -> usize {
        self.inner.num_records()
    }
    fn height(&self) -> usize {
        self.inner.height()
    }
    fn collect_record_ids(&self, n: NodeId, out: &mut Vec<RecordId>) {
        let mut stack = vec![n];
        while let Some(cur) = stack.pop() {
            self.touch(cur);
            if self.inner.is_leaf(cur) {
                out.extend(self.inner.leaf_entries(cur).iter().map(|e| e.id));
            } else {
                stack.extend_from_slice(self.inner.children(cur));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csj::CsjJoin;
    use crate::ncsj::NcsjJoin;
    use crate::ssj::SsjJoin;
    use csj_geom::Point;
    use csj_index::{rstar::RStarTree, RTreeConfig};

    fn dataset() -> Vec<Point<2>> {
        csj_data::roads::road_network(&csj_data::roads::RoadConfig {
            n_points: 4_000,
            cores: 3,
            core_sigma: 0.07,
            rural_fraction: 0.3,
            grid_snap_prob: 0.8,
            step: 0.003,
            mean_road_len: 0.05,
            seed: 0xCAFE,
        })
    }

    #[test]
    fn paged_join_is_lossless() {
        let pts = dataset();
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(16));
        let paged = PagedTree::new(&tree, 64);
        let eps = 0.05;
        let through_pool = CsjJoin::new(eps).with_window(10).run(&paged);
        let direct = CsjJoin::new(eps).with_window(10).run(&tree);
        assert_eq!(through_pool.expanded_link_set(), direct.expanded_link_set());
        assert!(paged.buffer_stats().accesses() > 0);
    }

    #[test]
    fn larger_pools_miss_less() {
        let pts = dataset();
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(16));
        let eps = 0.05;
        let misses = |cap: usize| {
            let paged = PagedTree::new(&tree, cap);
            let _ = SsjJoin::new(eps).run(&paged);
            paged.buffer_stats().misses
        };
        let (m4, m64, m4096) = (misses(4), misses(64), misses(4096));
        assert!(m4 >= m64, "{m4} < {m64}");
        assert!(m64 >= m4096, "{m64} < {m4096}");
        // With a pool bigger than the tree, only cold misses remain.
        assert_eq!(m4096 as usize, tree.core().node_count());
    }

    #[test]
    fn fault_paged_tree_absorbs_periodic_faults() {
        let pts = dataset();
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(16));
        let eps = 0.05;
        let faulty =
            FaultPagedTree::new(&tree, FaultPolicy::fail_every_read(3), RetryPolicy::no_backoff(4));
        let through = SsjJoin::new(eps).run(&faulty);
        let direct = SsjJoin::new(eps).run(&tree);
        assert_eq!(through.expanded_link_set(), direct.expanded_link_set());
        assert!(faulty.io_retries() > 0, "every 3rd read faults; retries absorb them");
        assert_eq!(faulty.storage_error(), None);
    }

    #[test]
    fn fault_paged_tree_records_unrecoverable_error() {
        let pts = dataset();
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(16));
        let faulty =
            FaultPagedTree::new(&tree, FaultPolicy::fail_every_read(1), RetryPolicy::none());
        let _ = SsjJoin::new(0.05).run(&faulty);
        assert!(faulty.storage_error().is_some(), "no retries: the first fault sticks");
    }

    #[test]
    fn live_execution_confirms_experiment3_claim() {
        // The paper: page access counts do not differ significantly
        // between the algorithms. Measured live through the pool rather
        // than by replay.
        let pts = dataset();
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(16));
        let eps = 0.1;
        let run = |which: u8| {
            let paged = PagedTree::new(&tree, 32);
            match which {
                0 => drop(SsjJoin::new(eps).run(&paged)),
                1 => drop(NcsjJoin::new(eps).run(&paged)),
                _ => drop(CsjJoin::new(eps).with_window(10).run(&paged)),
            }
            paged.buffer_stats()
        };
        let (s, n, c) = (run(0), run(1), run(2));
        // The compact joins may read slightly fewer pages (early stops
        // read each subtree node once instead of revisiting) but never
        // dramatically more.
        let smax = s.misses as f64;
        for (label, stats) in [("ncsj", n), ("csj", c)] {
            assert!(
                (stats.misses as f64) <= smax * 1.25,
                "{label}: {} vs ssj {}",
                stats.misses,
                s.misses
            );
        }
    }
}
