//! Compact similarity joins — the primary contribution of
//! *"Compact Similarity Joins"* (Bryan, Eberhardt, Faloutsos, ICDE 2008).
//!
//! A similarity self-join with range `ε` reports every pair of records at
//! distance `≤ ε`. In locally dense data the result explodes to `O(k²)`
//! links per dense region (*output explosion*). This crate implements the
//! paper's lossless fix — report *groups* of mutually-qualifying points —
//! plus everything needed to evaluate it:
//!
//! | module | contents |
//! |---|---|
//! | [`ssj`] | the standard tree join (the paper's SSJ baseline) |
//! | [`ncsj`] | N-CSJ: SSJ + the early-stopping group rule |
//! | [`csj`] | CSJ(g): N-CSJ + merge-into-`g`-recent-groups |
//! | [`spatial`] | dual-tree (two-dataset) variants of all three |
//! | [`egrid`] | ε-grid-order join (index-free) + its compact extension |
//! | [`brute`] | `O(n²)` reference join |
//! | [`verify`] | machine checks of the paper's Theorems 1 & 2 |
//! | [`outlier`] | small-group outlier mining (§I application) |
//! | [`estimate`] | budgeted SSJ runs with extrapolated estimates |
//! | [`parallel`] | multi-threaded task-parallel variants (extension) |
//! | [`paged`] | run any join through a live buffer pool (Exp. 3) |
//! | [`group`] | group shapes (MBR per the paper; ball as §V-A ablation) |
//! | [`output`] | join output, expansion, byte accounting |
//! | [`stats`] | operation counters and access logs |
//!
//! The joins are generic over [`csj_index::JoinIndex`], so they run
//! unchanged on the R-tree, R*-tree and M-tree (the paper's Experiment 4).
//!
//! # Example
//!
//! ```
//! use csj_core::{brute::brute_force_links, csj::CsjJoin, ssj::SsjJoin};
//! use csj_geom::Point;
//! use csj_index::{rstar::RStarTree, RTreeConfig};
//!
//! let pts: Vec<Point<2>> = (0..500)
//!     .map(|i| Point::new([(i % 25) as f64 / 25.0, (i / 25) as f64 / 20.0]))
//!     .collect();
//! let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
//!
//! let eps = 0.1;
//! let compact = CsjJoin::new(eps).with_window(10).run(&tree);
//! let standard = SsjJoin::new(eps).run(&tree);
//!
//! // Lossless (Theorems 1 & 2) …
//! assert_eq!(compact.expanded_link_set(), brute_force_links(&pts, eps));
//! // … and no larger than the standard output.
//! assert!(compact.total_bytes(4) <= standard.total_bytes(4));
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod brute;
pub mod budget;
pub mod csj;
pub mod egrid;
pub mod engine;
pub mod error;
pub mod estimate;
pub mod group;
pub mod ncsj;
pub mod outlier;
pub mod outofcore;
pub mod output;
pub mod paged;
pub mod parallel;
pub mod resilient;
pub mod spatial;
pub mod ssj;
pub mod stats;
pub mod sync;
pub mod verify;

pub use budget::{BudgetUsage, CancelToken, Completion, RunBudget, StopReason};
pub use csj::CsjJoin;
pub use error::{CsjError, ShardError};
pub use ncsj::NcsjJoin;
pub use output::{JoinOutput, OutputItem};
pub use resilient::ResilientJoin;
pub use ssj::SsjJoin;
pub use stats::JoinStats;

use csj_geom::Metric;

/// Parameters shared by every join algorithm in this crate.
#[derive(Clone, Copy, Debug)]
pub struct JoinConfig {
    /// The query range ε: pairs at distance `<= epsilon` qualify.
    pub epsilon: f64,
    /// The metric distances are measured in (default Euclidean).
    pub metric: Metric,
    /// Record the sequence of visited node ids so Experiment 3 can replay
    /// it through a simulated buffer pool. Off by default (costs memory).
    pub record_access_log: bool,
    /// When emitting a subtree as a group, recompute the group MBR from
    /// the actual member points instead of using the node's bounding
    /// shape. The paper uses the node shape (`false`); tightening is an
    /// ablation knob that can admit more subsequent merges.
    pub tighten_group_mbr: bool,
    /// Order children / leaf entries along an axis and sweep, so node and
    /// point pairs separated by more than ε on that axis are skipped
    /// without a distance bound computation — the access-ordering
    /// optimization of Brinkhoff et al. the paper cites as \[1\]. Changes
    /// traversal order (and therefore CSJ's grouping), never the
    /// represented link set.
    pub plane_sweep: bool,
    /// Probe leaf pairs with the batched distance kernel
    /// ([`csj_geom::DistKernel`]) instead of per-pair scalar `within`
    /// calls. Identical link output and comparison counts; on by default.
    /// The `false` setting exists as the A/B baseline for the
    /// `perf_baseline` benchmark.
    pub batch_kernel: bool,
}

impl JoinConfig {
    /// Config with the given ε and defaults elsewhere.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon >= 0.0 && epsilon.is_finite(), "epsilon must be finite and non-negative");
        JoinConfig {
            epsilon,
            metric: Metric::Euclidean,
            record_access_log: false,
            tighten_group_mbr: false,
            plane_sweep: false,
            batch_kernel: true,
        }
    }

    /// Disables the batched leaf-probe kernel (scalar per-pair probing).
    pub fn with_scalar_leaf_probe(mut self) -> Self {
        self.batch_kernel = false;
        self
    }

    /// Enables the plane-sweep access ordering.
    pub fn with_plane_sweep(mut self) -> Self {
        self.plane_sweep = true;
        self
    }

    /// Replaces the metric.
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Enables the node-access log.
    pub fn with_access_log(mut self) -> Self {
        self.record_access_log = true;
        self
    }
}
