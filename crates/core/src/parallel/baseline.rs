//! The static-split parallel runner, kept as a benchmark baseline.
//!
//! This is the original parallel join: a fixed breadth-first task
//! expansion, a shared atomic task index, and a `Mutex`-guarded result
//! vector. It has two scaling problems the work-stealing runner in the
//! parent module fixes — the task-claim and result-write paths serialize
//! on shared state, and a skewed task (one dense subtree) pins a single
//! worker while the others idle.
//!
//! It is retained (not exported from the crate root) solely so
//! `perf_baseline` can measure the work-stealing scheduler against it.
//! New code should use [`super::ParallelJoin`].

use std::time::Instant;

use csj_index::{JoinIndex, NodeId};

use super::ParallelAlgo;
use crate::budget::{BudgetUsage, CancelToken, Completion, RunBudget, StopReason};
use crate::engine::{infallible, CollectSink, DirectEmit, Engine, LinkHandler, WindowedEmit};
use crate::group::MbrShape;
use crate::output::{JoinOutput, OutputItem};
use crate::stats::JoinStats;
use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::Mutex;
use crate::JoinConfig;

/// The pre-work-stealing parallel join: static task split, shared task
/// index, mutexed result collection.
///
/// ```
/// use csj_core::parallel::baseline::StaticParallelJoin;
/// use csj_core::parallel::ParallelAlgo;
/// use csj_core::ssj::SsjJoin;
/// use csj_geom::Point;
/// use csj_index::{rstar::RStarTree, RTreeConfig};
///
/// let pts: Vec<Point<2>> = (0..2000)
///     .map(|i| Point::new([(i % 50) as f64 / 50.0, (i / 50) as f64 / 40.0]))
///     .collect();
/// let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
/// let par = StaticParallelJoin::new(0.05, ParallelAlgo::Ssj).with_threads(4).run(&tree);
/// let seq = SsjJoin::new(0.05).run(&tree);
/// assert_eq!(par.expanded_link_set(), seq.expanded_link_set());
/// ```
#[derive(Clone, Debug)]
pub struct StaticParallelJoin {
    cfg: JoinConfig,
    algo: ParallelAlgo,
    threads: usize,
    budget: RunBudget,
    cancel: Option<CancelToken>,
    id_width: usize,
}

enum Task {
    SelfJoin(NodeId),
    PairJoin(NodeId, NodeId),
}

impl StaticParallelJoin {
    /// A parallel join with range `epsilon`.
    pub fn new(epsilon: f64, algo: ParallelAlgo) -> Self {
        Self::with_config(JoinConfig::new(epsilon), algo)
    }

    /// A parallel join from an explicit configuration.
    pub fn with_config(cfg: JoinConfig, algo: ParallelAlgo) -> Self {
        StaticParallelJoin {
            cfg,
            algo,
            threads: 4,
            budget: RunBudget::unlimited(),
            cancel: None,
            id_width: 6,
        }
    }

    /// Sets the worker count (default 4; clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the metric.
    pub fn with_metric(mut self, metric: csj_geom::Metric) -> Self {
        self.cfg.metric = metric;
        self
    }

    /// Applies a resource budget, checked at task boundaries: when a limit
    /// trips, in-flight tasks finish (lossless over the processed region)
    /// and the result comes back [`Completion::Partial`].
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a cancellation token. Cancel takes effect *inside* a
    /// running task (the engine checks between recursion steps), so the
    /// join stops within one task's worth of work.
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Sets the id width used for byte-budget accounting (default 6).
    pub fn with_id_width(mut self, width: usize) -> Self {
        self.id_width = width;
        self
    }

    /// Runs the join. Output rows appear in deterministic (task) order.
    ///
    /// With a budget or cancel token attached, the run may stop early; the
    /// returned [`JoinOutput::completion`] says so, and the rows produced
    /// remain lossless over the processed region.
    pub fn run<T: JoinIndex<D> + Sync, const D: usize>(&self, tree: &T) -> JoinOutput {
        let tasks = self.expand_tasks(tree);
        if tasks.is_empty() {
            return JoinOutput::default();
        }
        // `completed` is true when the engine ran the task to the end
        // (false only under a mid-task cancel).
        type TaskResult = (Vec<OutputItem>, JoinStats, bool);
        // csj-lint: allow(determinism) — wall-clock feeds RunBudget
        // deadline accounting only; completed runs never consult it.
        let start = Instant::now();
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let stop_reason: Mutex<Option<StopReason>> = Mutex::new(None);
        let (links, groups, bytes) = (AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0));
        let results: Mutex<Vec<Option<TaskResult>>> =
            Mutex::new((0..tasks.len()).map(|_| None).collect());
        let record_stop = |reason: StopReason| {
            // ORDERING: advisory early-exit flag; a worker that misses the
            // store runs at most one extra task, and the scope join below
            // is the real synchronization point for results. Unlike the
            // work-stealing scheduler's `stop` (SeqCst — it gates a
            // `pending`-based termination protocol, DESIGN.md §9), no
            // other state hangs off this flag: workers exit when the
            // shared task index runs out regardless.
            stop.store(true, Ordering::Relaxed);
            // csj-lint: allow(panic-safety) — a poisoned lock means a
            // worker already panicked; propagating is the only sound exit.
            let mut guard = stop_reason.lock().expect("stop reason lock poisoned");
            guard.get_or_insert(reason);
        };

        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(tasks.len()) {
                scope.spawn(|| loop {
                    // ORDERING: advisory; see the matching store above.
                    // Stale-read worst case (one extra task) is bounded
                    // because the task index below, not this flag, is
                    // what terminates the loop.
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // Task-boundary checks: cancel and budget.
                    if self.cancel.as_ref().is_some_and(CancelToken::is_canceled) {
                        record_stop(StopReason::Canceled);
                        break;
                    }
                    if !self.budget.is_unlimited() {
                        let usage = BudgetUsage {
                            // ORDERING: monotone stat counters — a budget
                            // check reading slightly stale totals only
                            // delays the stop by at most one task.
                            links: links.load(Ordering::Relaxed),
                            groups: groups.load(Ordering::Relaxed), // ORDERING: as `links`
                            bytes: bytes.load(Ordering::Relaxed),   // ORDERING: as `links`
                        };
                        if let Some(r) = self.budget.exceeded_by(&usage, start.elapsed()) {
                            record_stop(r);
                            break;
                        }
                    }
                    // ORDERING: fetch_add is atomic regardless of ordering,
                    // so indices are unique; nothing is published through
                    // `next`, results flow through the mutexed vector.
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(idx) else { break };
                    let (items, stats, completed) = self.run_task(tree, task);
                    if !completed {
                        record_stop(StopReason::Canceled);
                    }
                    // ORDERING: monotone counters feeding the advisory
                    // budget check; final totals are read after the scope
                    // join, which orders them.
                    links.fetch_add(stats.links_emitted + stats.links_in_groups, Ordering::Relaxed);
                    groups.fetch_add(stats.groups_emitted, Ordering::Relaxed); // ORDERING: as `links`
                    let task_bytes: u64 = items.iter().map(|i| i.format_bytes(self.id_width)).sum();
                    bytes.fetch_add(task_bytes, Ordering::Relaxed); // ORDERING: as `links`
                                                                    // csj-lint: allow(panic-safety) — poisoning means a peer
                                                                    // panicked with the results lock held; propagate it.
                    results.lock().expect("worker panicked holding results")[idx] =
                        Some((items, stats, completed));
                });
            }
        });

        let mut output =
            JoinOutput { stats: JoinStats::new(self.cfg.record_access_log), ..Default::default() };
        let total = tasks.len();
        let mut done = 0usize;
        // csj-lint: allow(panic-safety) — workers joined cleanly at scope
        // exit, so the results lock cannot be poisoned here.
        for slot in results.into_inner().expect("poisoned results") {
            let Some((items, stats, completed)) = slot else { continue };
            output.items.extend(items);
            output.stats.absorb(&stats);
            if completed {
                done += 1;
            }
        }
        // csj-lint: allow(panic-safety) — same: no live workers, no poison.
        let reason = stop_reason.into_inner().expect("stop reason lock poisoned");
        output.completion = match reason {
            None if done == total => Completion::Complete,
            // A worker stopping leaves unclaimed tasks; attribute the
            // partial result to the recorded reason (cancel if a task was
            // interrupted mid-flight).
            maybe => Completion::partial(
                maybe.unwrap_or(StopReason::Canceled),
                done as f64 / total as f64,
                // ORDERING: read after the scope join, which already
                // synchronized every worker's writes.
                links.load(Ordering::Relaxed),
                bytes.load(Ordering::Relaxed), // ORDERING: as `links`
            ),
        };
        output
    }

    fn run_task<T: JoinIndex<D>, const D: usize>(
        &self,
        tree: &T,
        task: &Task,
    ) -> (Vec<OutputItem>, JoinStats, bool) {
        match self.algo {
            ParallelAlgo::Ssj => self.run_task_with(tree, task, false, DirectEmit),
            ParallelAlgo::Ncsj => self.run_task_with(tree, task, true, DirectEmit),
            ParallelAlgo::Csj(g) => self.run_task_with(
                tree,
                task,
                true,
                WindowedEmit::<MbrShape<D>, D>::new(g, self.cfg.epsilon, self.cfg.metric),
            ),
        }
    }

    fn run_task_with<T: JoinIndex<D>, H: LinkHandler<D>, const D: usize>(
        &self,
        tree: &T,
        task: &Task,
        early_stop: bool,
        handler: H,
    ) -> (Vec<OutputItem>, JoinStats, bool) {
        let mut engine = Engine::new(tree, self.cfg, early_stop, handler, CollectSink::default());
        if let Some(token) = &self.cancel {
            engine.set_cancel(token.clone());
        }
        match task {
            Task::SelfJoin(n) => infallible(engine.join_node(*n)),
            Task::PairJoin(a, b) => infallible(engine.join_pair(*a, *b)),
        }
        infallible(engine.finish_only());
        let completed = engine.stop_reason().is_none();
        (std::mem::take(&mut engine.sink.items), engine.stats, completed)
    }

    /// Breadth-first task expansion until there are comfortably more
    /// tasks than workers (or nothing left to split).
    fn expand_tasks<T: JoinIndex<D>, const D: usize>(&self, tree: &T) -> Vec<Task> {
        let Some(root) = tree.root() else { return Vec::new() };
        let target = self.threads * 8;
        let eps = self.cfg.epsilon;
        let metric = self.cfg.metric;

        let mut queue = std::collections::VecDeque::from([Task::SelfJoin(root)]);
        let mut done: Vec<Task> = Vec::new();
        while done.len() + queue.len() < target {
            let Some(task) = queue.pop_front() else { break };
            match task {
                Task::SelfJoin(n) if !tree.is_leaf(n) => {
                    // A compact join would early-stop this whole subtree;
                    // do not split it apart.
                    if self.algo != ParallelAlgo::Ssj && tree.max_diameter(n, metric) <= eps {
                        done.push(Task::SelfJoin(n));
                        continue;
                    }
                    let children = tree.children(n).to_vec();
                    for (i, &a) in children.iter().enumerate() {
                        queue.push_back(Task::SelfJoin(a));
                        for &b in &children[(i + 1)..] {
                            if tree.min_dist(a, b, metric) <= eps {
                                queue.push_back(Task::PairJoin(a, b));
                            }
                        }
                    }
                }
                other => done.push(other),
            }
        }
        done.extend(queue);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_links;
    use crate::ssj::SsjJoin;
    use csj_geom::Point;
    use csj_index::{rstar::RStarTree, RTreeConfig};

    fn clustered(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let c = (i % 7) as f64 * 0.13;
                Point::new([c + ((i * 31) % 97) as f64 * 2e-4, c + ((i * 57) % 89) as f64 * 2e-4])
            })
            .collect()
    }

    #[test]
    fn baseline_is_lossless_for_all_algorithms() {
        let pts = clustered(2_000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let eps = 0.05;
        let truth = brute_force_links(&pts, eps);
        let seq = SsjJoin::new(eps).run(&tree);
        for algo in [ParallelAlgo::Ssj, ParallelAlgo::Ncsj, ParallelAlgo::Csj(10)] {
            let out = StaticParallelJoin::new(eps, algo).with_threads(4).run(&tree);
            assert_eq!(out.expanded_link_set(), truth, "{algo:?}");
        }
        let ssj = StaticParallelJoin::new(eps, ParallelAlgo::Ssj).with_threads(4).run(&tree);
        assert_eq!(ssj.stats.distance_computations, seq.stats.distance_computations);
    }
}
