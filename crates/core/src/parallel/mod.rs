//! Parallel similarity joins on a work-stealing scheduler (extension
//! beyond the paper).
//!
//! The recursion of Figure 3 decomposes naturally: expand the tree a few
//! levels into independent *tasks* (subtree self-joins and qualifying
//! subtree pairs), then run the ordinary [`Engine`] on each task from a
//! worker pool. The scheduler here replaces the original static split
//! (kept in [`baseline`]) with three mechanisms:
//!
//! * **Per-worker deques.** Each worker owns a private task deque; the
//!   per-task hot path is a plain `pop_front` plus a handful of atomic
//!   counter updates — no lock is acquired while work is flowing.
//! * **Stealing through a donation pool.** A worker that runs dry
//!   registers itself as starving and takes tasks from a shared pool;
//!   busy workers notice the starving count (one relaxed atomic load per
//!   task) and donate half their private deque. The pool's `Mutex` is
//!   only ever touched on this cold path.
//! * **Adaptive splitting.** When workers are starving and the pool is
//!   empty, a busy worker splits the task it just claimed into its
//!   canonical child tasks instead of running it whole, so one dense
//!   subtree (the skewed-cluster case) no longer pins a single worker.
//!
//! Determinism: every task carries a hierarchical key (its split
//! genealogy); results are merged in key order, and splitting a task
//! yields children whose key-ordered output is item-for-item identical
//! to running the parent directly — the child expansion mirrors the
//! engine's own recursion, including the early-stop and MINDIST checks.
//! Output is therefore identical run to run regardless of scheduling,
//! and identical whether or not any task was split or stolen.
//!
//! Correctness is unchanged from the baseline: SSJ and N-CSJ share no
//! state across tasks; for CSJ(g), each task gets its own fresh window —
//! windows only affect *compaction* (which links land in which group),
//! never the represented link set, so the parallel CSJ is still
//! lossless. CSJ tasks are never split at runtime (window grouping is
//! traversal-shaped), so its compaction is also deterministic.

pub mod baseline;

use std::collections::VecDeque;
use std::time::Instant;

use csj_index::{JoinIndex, NodeId};

use crate::budget::{BudgetUsage, CancelToken, Completion, RunBudget, StopReason};
use crate::engine::{infallible, CollectSink, DirectEmit, Engine, LinkHandler, WindowedEmit};
use crate::group::MbrShape;
use crate::output::{JoinOutput, OutputItem};
use crate::stats::JoinStats;
use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::Mutex;
use crate::JoinConfig;

/// Which algorithm the parallel runner executes per task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParallelAlgo {
    /// Standard similarity join.
    Ssj,
    /// Naive compact join.
    Ncsj,
    /// Compact join; every task gets a fresh window of this size.
    Csj(usize),
}

/// A parallel similarity self-join on the work-stealing scheduler.
///
/// ```
/// use csj_core::parallel::{ParallelAlgo, ParallelJoin};
/// use csj_core::ssj::SsjJoin;
/// use csj_geom::Point;
/// use csj_index::{rstar::RStarTree, RTreeConfig};
///
/// let pts: Vec<Point<2>> = (0..2000)
///     .map(|i| Point::new([(i % 50) as f64 / 50.0, (i / 50) as f64 / 40.0]))
///     .collect();
/// let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
/// let par = ParallelJoin::new(0.05, ParallelAlgo::Ssj).with_threads(4).run(&tree);
/// let seq = SsjJoin::new(0.05).run(&tree);
/// assert_eq!(par.expanded_link_set(), seq.expanded_link_set());
/// ```
#[derive(Clone, Debug)]
pub struct ParallelJoin {
    cfg: JoinConfig,
    algo: ParallelAlgo,
    threads: usize,
    budget: RunBudget,
    cancel: Option<CancelToken>,
    id_width: usize,
}

#[derive(Clone, Copy, Debug)]
enum Task {
    SelfJoin(NodeId),
    PairJoin(NodeId, NodeId),
}

/// A task's split genealogy: child `j` of a task keyed `k` is keyed
/// `k ++ [j]`. Lexicographic key order reproduces the engine's own
/// depth-first emission order, so sorting results by key makes the
/// merged output independent of scheduling *and* of where splits
/// happened.
type TaskKey = Vec<u32>;

struct TaskItem {
    key: TaskKey,
    task: Task,
    /// Worker currently holding the task; a pool take by a different
    /// worker counts as a steal.
    owner: usize,
}

type TaskResult = (TaskKey, Vec<OutputItem>, JoinStats, bool);

/// Scheduler state shared by all workers. The `pool` mutex is the only
/// lock, and it is only taken when donating, stealing, or parking — the
/// per-task hot path sees atomics exclusively.
///
/// Memory-ordering contract (DESIGN.md §9; model-checked by
/// `csj_model::protocols`, which mirrors this struct field for field):
///
/// * **Load-bearing, `SeqCst`:** `stop` and `pending` gate worker
///   termination. `pending` in particular must never be observed as
///   zero while tasks exist: split adds children *before* retiring the
///   parent, and per-location coherence means a load cannot travel
///   back past the `fetch_add` in its modification order — so even a
///   relaxed load could not see the dip, but the termination flags
///   stay `SeqCst` as the documented safety margin and are excluded
///   from the downgrade below.
/// * **Advisory, `Relaxed`:** `pool_len` and `starving` only steer the
///   split/donate heuristics; stale reads delay or duplicate a
///   donation, never affect the merged output (split-invariance).
/// * **Stats, `Relaxed`:** `links`/`groups`/`bytes` feed the advisory
///   budget check mid-run and the completion report afterwards;
///   `executed`/`stolen`/`splits`/`total_tasks` are only reported.
///   Final values are read after `thread::scope` joins every worker,
///   and the join edge already orders all their writes. The model
///   suite (`cargo test -p csj-model`) exhausts the steal/donate,
///   cancel-quiesce and re-split protocols at preemption bound 2 with
///   exactly these orderings and proves the counters still sum
///   correctly under every schedule.
struct Shared {
    pool: Mutex<VecDeque<TaskItem>>,
    /// Mirror of `pool.len()`, readable without the lock.
    pool_len: AtomicUsize,
    /// Workers currently out of work and waiting on the pool.
    starving: AtomicUsize,
    /// Tasks not yet executed (in any deque, the pool, or in flight).
    pending: AtomicUsize,
    stop: AtomicBool,
    stop_reason: Mutex<Option<StopReason>>,
    links: AtomicU64,
    groups: AtomicU64,
    bytes: AtomicU64,
    executed: AtomicU64,
    stolen: AtomicU64,
    splits: AtomicU64,
    total_tasks: AtomicU64,
}

impl Shared {
    fn record_stop(&self, reason: StopReason) {
        // Load-bearing: `stop` gates worker termination (see the struct
        // docs); it stays SeqCst deliberately.
        self.stop.store(true, Ordering::SeqCst);
        // csj-lint: allow(panic-safety) — a poisoned lock means a worker
        // already panicked; propagating the panic is the only sound exit.
        let mut guard = self.stop_reason.lock().expect("stop reason lock poisoned");
        guard.get_or_insert(reason);
    }
}

/// The number of workers a default-configured run will use.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

impl ParallelJoin {
    /// A parallel join with range `epsilon`.
    pub fn new(epsilon: f64, algo: ParallelAlgo) -> Self {
        Self::with_config(JoinConfig::new(epsilon), algo)
    }

    /// A parallel join from an explicit configuration.
    pub fn with_config(cfg: JoinConfig, algo: ParallelAlgo) -> Self {
        ParallelJoin {
            cfg,
            algo,
            threads: default_threads(),
            budget: RunBudget::unlimited(),
            cancel: None,
            id_width: 6,
        }
    }

    /// Sets the worker count (clamped to at least 1). The default is
    /// [`default_threads`], i.e. `std::thread::available_parallelism()`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the metric.
    pub fn with_metric(mut self, metric: csj_geom::Metric) -> Self {
        self.cfg.metric = metric;
        self
    }

    /// Applies a resource budget, checked at task boundaries: when a limit
    /// trips, in-flight tasks finish (lossless over the processed region)
    /// and the result comes back [`Completion::Partial`].
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a cancellation token. Cancel takes effect *inside* a
    /// running task (the engine checks between recursion steps), so the
    /// join stops within one task's worth of work.
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Sets the id width used for byte-budget accounting (default 6).
    pub fn with_id_width(mut self, width: usize) -> Self {
        self.id_width = width;
        self
    }

    /// Runs the join. Output rows appear in deterministic (key) order.
    ///
    /// With a budget or cancel token attached, the run may stop early; the
    /// returned [`JoinOutput::completion`] says so, and the rows produced
    /// remain lossless over the processed region.
    pub fn run<T: JoinIndex<D> + Sync, const D: usize>(&self, tree: &T) -> JoinOutput {
        let tasks = self.expand_tasks(tree);
        if tasks.is_empty() {
            return JoinOutput::default();
        }
        let workers = self.threads.min(tasks.len());
        // csj-lint: allow(determinism) — wall-clock feeds RunBudget
        // deadline accounting only; a deadline stop yields
        // Completion::Partial, and completed runs never consult it.
        let start = Instant::now();
        let shared = Shared {
            pool: Mutex::new(VecDeque::new()),
            pool_len: AtomicUsize::new(0),
            // Workers 1..n start with empty deques: they are starving by
            // construction, so the very first splittable task worker 0
            // claims is split for them deterministically.
            starving: AtomicUsize::new(workers - 1),
            pending: AtomicUsize::new(tasks.len()),
            stop: AtomicBool::new(false),
            stop_reason: Mutex::new(None),
            links: AtomicU64::new(0),
            groups: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            splits: AtomicU64::new(0),
            total_tasks: AtomicU64::new(tasks.len() as u64),
        };

        // All initial tasks seed worker 0; the others get theirs through
        // donation and splitting. This exercises the stealing machinery
        // on every multi-worker run instead of only under skew.
        let mut initial: Vec<VecDeque<TaskItem>> = (0..workers).map(|_| VecDeque::new()).collect();
        initial[0] = tasks.into();

        let worker_results: Vec<Vec<TaskResult>> = std::thread::scope(|scope| {
            let shared = &shared;
            let handles: Vec<_> = initial
                .into_iter()
                .enumerate()
                .map(|(wid, deque)| {
                    scope.spawn(move || self.worker_loop(wid, workers, deque, tree, shared, start))
                })
                .collect();
            // csj-lint: allow(panic-safety) — re-raises a worker thread's
            // panic on the caller; swallowing it would fake a clean join.
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

        let mut results: Vec<TaskResult> = worker_results.into_iter().flatten().collect();
        results.sort_by(|a, b| a.0.cmp(&b.0));

        let mut output =
            JoinOutput { stats: JoinStats::new(self.cfg.record_access_log), ..Default::default() };
        let mut done = 0u64;
        for (_, items, stats, completed) in results {
            output.items.extend(items);
            output.stats.absorb(&stats);
            if completed {
                done += 1;
            }
        }
        output.stats.threads_used = workers as u64;
        // ORDERING: read after the scope join above, which already
        // synchronized every worker's writes (see the Shared docs).
        output.stats.tasks_executed = shared.executed.load(Ordering::Relaxed);
        output.stats.tasks_stolen = shared.stolen.load(Ordering::Relaxed); // ORDERING: as above
        output.stats.tasks_split = shared.splits.load(Ordering::Relaxed); // ORDERING: as above
        let total = shared.total_tasks.load(Ordering::Relaxed); // ORDERING: as above
                                                                // csj-lint: allow(panic-safety) — all workers joined cleanly above,
                                                                // so the lock cannot be poisoned or held here.
        let reason = shared.stop_reason.into_inner().expect("stop reason lock poisoned");
        output.completion = match reason {
            None if done == total => Completion::Complete,
            // A worker stopping leaves unclaimed tasks; attribute the
            // partial result to the recorded reason (cancel if a task was
            // interrupted mid-flight).
            maybe => Completion::partial(
                maybe.unwrap_or(StopReason::Canceled),
                done as f64 / total.max(1) as f64,
                // ORDERING: read after the scope join, as above.
                shared.links.load(Ordering::Relaxed),
                shared.bytes.load(Ordering::Relaxed), // ORDERING: as above
            ),
        };
        output
    }

    fn worker_loop<T: JoinIndex<D>, const D: usize>(
        &self,
        wid: usize,
        workers: usize,
        mut local: VecDeque<TaskItem>,
        tree: &T,
        shared: &Shared,
        start: Instant,
    ) -> Vec<TaskResult> {
        let mut out = Vec::new();
        // Workers other than 0 begin pre-registered as starving (see
        // `run`); they deregister on their first acquisition.
        let mut registered_starving = wid != 0 && workers > 1;
        loop {
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            // Acquire: private deque first (no lock), then the pool.
            let acquired = match local.pop_front() {
                Some(item) => Some(item),
                None => {
                    // csj-lint: allow(panic-safety) — poisoning implies a
                    // peer panicked mid-donation; propagate, don't limp on.
                    let mut pool = shared.pool.lock().expect("pool lock poisoned");
                    let item = pool.pop_front();
                    // ORDERING: advisory mirror of the pool length (see
                    // the Shared docs); model-checked Relaxed.
                    shared.pool_len.store(pool.len(), Ordering::Relaxed);
                    item
                }
            };
            let Some(mut item) = acquired else {
                if shared.pending.load(Ordering::SeqCst) == 0 {
                    break;
                }
                if !registered_starving {
                    // ORDERING: advisory — steers donation/splitting
                    // only (see the Shared docs); model-checked Relaxed.
                    shared.starving.fetch_add(1, Ordering::Relaxed);
                    registered_starving = true;
                }
                crate::sync::yield_now();
                continue;
            };
            if registered_starving {
                // ORDERING: advisory, as the registration above.
                shared.starving.fetch_sub(1, Ordering::Relaxed);
                registered_starving = false;
            }
            if item.owner != wid {
                // ORDERING: stat counter, read after the scope join.
                shared.stolen.fetch_add(1, Ordering::Relaxed);
                item.owner = wid;
            }

            // Task-boundary checks: cancel and budget.
            if self.cancel.as_ref().is_some_and(CancelToken::is_canceled) {
                shared.record_stop(StopReason::Canceled);
                break;
            }
            if !self.budget.is_unlimited() {
                let usage = BudgetUsage {
                    // ORDERING: monotone stat counters — a budget check
                    // reading slightly stale totals only delays the
                    // stop by at most one task (see the Shared docs).
                    links: shared.links.load(Ordering::Relaxed),
                    groups: shared.groups.load(Ordering::Relaxed), // ORDERING: as `links`
                    bytes: shared.bytes.load(Ordering::Relaxed),   // ORDERING: as `links`
                };
                if let Some(r) = self.budget.exceeded_by(&usage, start.elapsed()) {
                    shared.record_stop(r);
                    break;
                }
            }

            // Adaptive splitting: more peers are starving than the pool
            // can feed — break this task apart instead of running it.
            // CSJ tasks are exempt (their window compaction is shaped by
            // the traversal), as are plane-sweep runs (the sweep visits
            // children in sorted, not canonical, order).
            //
            // ORDERING: both loads are advisory. `starving` and
            // `pool_len` only steer the split-vs-run heuristic; a stale
            // read at worst delays a split by one task or splits once
            // unnecessarily, and the merged output is split-invariant by
            // construction (see `split_task`). Termination is gated by
            // `pending`/`stop`, which stay SeqCst.
            let starving_now = shared.starving.load(Ordering::Relaxed);
            if starving_now > shared.pool_len.load(Ordering::Relaxed) // ORDERING: as `starving`
                && !matches!(self.algo, ParallelAlgo::Csj(_))
                && !self.cfg.plane_sweep
            {
                if let Some(children) = self.split_task(tree, &item) {
                    if !children.is_empty() {
                        // ORDERING: stat counters, read after the scope
                        // join (see the Shared docs).
                        shared.splits.fetch_add(1, Ordering::Relaxed);
                        shared.total_tasks.fetch_add(children.len() as u64 - 1, Ordering::Relaxed); // ORDERING: as `splits`
                                                                                                    // Add the children before retiring the parent so
                                                                                                    // `pending` never dips to zero in between; SeqCst
                                                                                                    // because `pending` gates termination.
                        shared.pending.fetch_add(children.len() - 1, Ordering::SeqCst);
                        // csj-lint: allow(panic-safety) — see the acquire
                        // path: a poisoned pool lock is a peer's panic.
                        let mut pool = shared.pool.lock().expect("pool lock poisoned");
                        pool.extend(children);
                        // ORDERING: advisory mirror, as the acquire path.
                        shared.pool_len.store(pool.len(), Ordering::Relaxed);
                        continue;
                    }
                }
            }

            // Cold-path donation: someone is starving, the pool is low,
            // and we have spare tasks — move half of our deque over.
            //
            // ORDERING: advisory, exactly as above — a stale `starving`
            // or `pool_len` read can only delay or duplicate a donation,
            // and donated tasks carry their keys, so the merge result is
            // unaffected by when (or whether) donation happens.
            let starving_now = shared.starving.load(Ordering::Relaxed);
            if starving_now > 0
                && shared.pool_len.load(Ordering::Relaxed) < starving_now // ORDERING: as `starving`
                && local.len() > 1
            {
                let give = local.len() / 2;
                // csj-lint: allow(panic-safety) — see the acquire path: a
                // poisoned pool lock is a peer's panic.
                let mut pool = shared.pool.lock().expect("pool lock poisoned");
                for _ in 0..give {
                    if let Some(t) = local.pop_back() {
                        pool.push_back(t);
                    }
                }
                // ORDERING: advisory mirror, as the acquire path.
                shared.pool_len.store(pool.len(), Ordering::Relaxed);
            }

            let (items, stats, completed) = self.run_task(tree, &item.task);
            // Load-bearing: `pending` gates the starving workers' exit
            // check and must stay SeqCst (see the Shared docs).
            shared.pending.fetch_sub(1, Ordering::SeqCst);
            // ORDERING: stat counter, read after the scope join.
            shared.executed.fetch_add(1, Ordering::Relaxed);
            if !completed {
                shared.record_stop(StopReason::Canceled);
            }
            // ORDERING: monotone counters feeding the advisory budget
            // check; final totals are read after the scope join, which
            // orders them (see the Shared docs).
            shared.links.fetch_add(stats.links_emitted + stats.links_in_groups, Ordering::Relaxed);
            shared.groups.fetch_add(stats.groups_emitted, Ordering::Relaxed); // ORDERING: as `links`
            let task_bytes: u64 = items.iter().map(|i| i.format_bytes(self.id_width)).sum();
            shared.bytes.fetch_add(task_bytes, Ordering::Relaxed); // ORDERING: as `links`
            out.push((item.key, items, stats, completed));
        }
        out
    }

    fn run_task<T: JoinIndex<D>, const D: usize>(
        &self,
        tree: &T,
        task: &Task,
    ) -> (Vec<OutputItem>, JoinStats, bool) {
        match self.algo {
            ParallelAlgo::Ssj => self.run_task_with(tree, task, false, DirectEmit),
            ParallelAlgo::Ncsj => self.run_task_with(tree, task, true, DirectEmit),
            ParallelAlgo::Csj(g) => self.run_task_with(
                tree,
                task,
                true,
                WindowedEmit::<MbrShape<D>, D>::new(g, self.cfg.epsilon, self.cfg.metric),
            ),
        }
    }

    fn run_task_with<T: JoinIndex<D>, H: LinkHandler<D>, const D: usize>(
        &self,
        tree: &T,
        task: &Task,
        early_stop: bool,
        handler: H,
    ) -> (Vec<OutputItem>, JoinStats, bool) {
        let mut engine = Engine::new(tree, self.cfg, early_stop, handler, CollectSink::default());
        if let Some(token) = &self.cancel {
            engine.set_cancel(token.clone());
        }
        match task {
            Task::SelfJoin(n) => infallible(engine.join_node(*n)),
            Task::PairJoin(a, b) => infallible(engine.join_pair(*a, *b)),
        }
        infallible(engine.finish_only());
        let completed = engine.stop_reason().is_none();
        (std::mem::take(&mut engine.sink.items), engine.stats, completed)
    }

    /// Splits a task into its canonical child tasks, mirroring exactly
    /// what the engine's recursion would do one level down — same child
    /// order, same early-stop guards, same MINDIST pruning. Returns
    /// `None` when the task must run whole: leaf-level work, or a
    /// subtree/pair a compact join would early-stop (splitting it would
    /// change the emitted groups).
    ///
    /// Because the expansion is exact, executing the children in key
    /// order produces item-for-item the same output as executing the
    /// parent — splitting is invisible in the merged result.
    fn split_task<T: JoinIndex<D>, const D: usize>(
        &self,
        tree: &T,
        item: &TaskItem,
    ) -> Option<Vec<TaskItem>> {
        let eps = self.cfg.epsilon;
        let metric = self.cfg.metric;
        let early_stop = self.algo != ParallelAlgo::Ssj;
        let mut children: Vec<Task> = Vec::new();
        match item.task {
            Task::SelfJoin(n) => {
                if tree.is_leaf(n) {
                    return None;
                }
                if early_stop && tree.max_diameter(n, metric) <= eps {
                    return None;
                }
                let cs = tree.children(n).to_vec();
                for (i, &a) in cs.iter().enumerate() {
                    children.push(Task::SelfJoin(a));
                    for &b in &cs[(i + 1)..] {
                        if tree.min_dist(a, b, metric) <= eps {
                            children.push(Task::PairJoin(a, b));
                        }
                    }
                }
            }
            Task::PairJoin(a, b) => {
                if early_stop && tree.pair_diameter(a, b, metric) <= eps {
                    return None;
                }
                match (tree.is_leaf(a), tree.is_leaf(b)) {
                    (true, true) => return None,
                    (true, false) => {
                        for &c in tree.children(b) {
                            if tree.min_dist(a, c, metric) <= eps {
                                children.push(Task::PairJoin(a, c));
                            }
                        }
                    }
                    (false, true) => {
                        for &c in tree.children(a) {
                            if tree.min_dist(c, b, metric) <= eps {
                                children.push(Task::PairJoin(c, b));
                            }
                        }
                    }
                    (false, false) => {
                        for &x in tree.children(a) {
                            for &y in tree.children(b) {
                                if tree.min_dist(x, y, metric) <= eps {
                                    children.push(Task::PairJoin(x, y));
                                }
                            }
                        }
                    }
                }
            }
        }
        Some(
            children
                .into_iter()
                .enumerate()
                .map(|(j, task)| {
                    let mut key = item.key.clone();
                    key.push(j as u32);
                    TaskItem { key, task, owner: item.owner }
                })
                .collect(),
        )
    }

    /// Breadth-first task expansion until there are comfortably more
    /// tasks than workers (or nothing left to split). Uses the same
    /// canonical [`ParallelJoin::split_task`] as the runtime splitter, so
    /// the initial task set is just a pre-applied sequence of splits.
    /// CSJ tasks are splittable *here* (this fixed partitioning is what
    /// makes its compaction deterministic) but not at runtime.
    fn expand_tasks<T: JoinIndex<D>, const D: usize>(&self, tree: &T) -> Vec<TaskItem> {
        let Some(root) = tree.root() else { return Vec::new() };
        let target = self.threads * 8;
        let mut queue =
            VecDeque::from([TaskItem { key: Vec::new(), task: Task::SelfJoin(root), owner: 0 }]);
        let mut done: Vec<TaskItem> = Vec::new();
        while done.len() + queue.len() < target {
            let Some(item) = queue.pop_front() else { break };
            match self.split_task(tree, &item) {
                // A pair whose children all pruned away: no work at all.
                Some(children) if children.is_empty() => {}
                Some(children) => queue.extend(children),
                None => done.push(item),
            }
        }
        done.extend(queue);
        // Canonical order: workers consume roughly in engine order, so a
        // budget-stopped run is biased toward a clean output prefix.
        done.sort_by(|a, b| a.key.cmp(&b.key));
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_links;
    use crate::csj::CsjJoin;
    use crate::ssj::SsjJoin;
    use csj_geom::Point;
    use csj_index::{rstar::RStarTree, RTreeConfig};

    fn clustered(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let c = (i % 7) as f64 * 0.13;
                Point::new([c + ((i * 31) % 97) as f64 * 2e-4, c + ((i * 57) % 89) as f64 * 2e-4])
            })
            .collect()
    }

    /// One dense cluster holding ~80% of the records plus a sparse
    /// background: the workload where a static split pins one worker.
    fn skewed(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                if i % 5 != 0 {
                    Point::new([
                        0.5 + ((i * 31) % 97) as f64 * 3e-4,
                        0.5 + ((i * 57) % 89) as f64 * 3e-4,
                    ])
                } else {
                    Point::new([((i * 131) % 997) as f64 / 997.0, ((i * 277) % 983) as f64 / 983.0])
                }
            })
            .collect()
    }

    #[test]
    fn parallel_ssj_matches_sequential() {
        let pts = clustered(3_000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        for eps in [0.01, 0.1] {
            let seq = SsjJoin::new(eps).run(&tree);
            for threads in [1, 2, 8] {
                let par =
                    ParallelJoin::new(eps, ParallelAlgo::Ssj).with_threads(threads).run(&tree);
                assert_eq!(par.expanded_link_set(), seq.expanded_link_set(), "threads={threads}");
                assert_eq!(
                    par.stats.distance_computations, seq.stats.distance_computations,
                    "identical work, just distributed"
                );
                assert_eq!(par.stats.threads_used, threads as u64, "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_ncsj_and_csj_are_lossless() {
        let pts = clustered(2_500);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let eps = 0.05;
        let truth = brute_force_links(&pts, eps);
        for algo in [ParallelAlgo::Ncsj, ParallelAlgo::Csj(10)] {
            let out = ParallelJoin::new(eps, algo).with_threads(6).run(&tree);
            assert_eq!(out.expanded_link_set(), truth, "{algo:?}");
        }
    }

    #[test]
    fn parallel_output_is_deterministic() {
        let pts = clustered(2_000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        let join = ParallelJoin::new(0.05, ParallelAlgo::Csj(10)).with_threads(7);
        let a = join.run(&tree);
        let b = join.run(&tree);
        assert_eq!(a.items, b.items, "same rows in the same order every run");
    }

    #[test]
    fn ssj_items_invariant_under_scheduling() {
        // Stronger than set equality: SSJ output rows land in the same
        // order whether tasks were split/stolen (8 workers) or executed
        // in sequence (1 worker).
        let pts = skewed(2_000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        let one = ParallelJoin::new(0.03, ParallelAlgo::Ssj).with_threads(1).run(&tree);
        let eight = ParallelJoin::new(0.03, ParallelAlgo::Ssj).with_threads(8).run(&tree);
        assert_eq!(one.items, eight.items);
    }

    #[test]
    fn parallel_csj_compacts_close_to_sequential() {
        let pts = clustered(3_000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let eps = 0.05;
        let seq = CsjJoin::new(eps).with_window(10).run(&tree);
        let par = ParallelJoin::new(eps, ParallelAlgo::Csj(10)).with_threads(4).run(&tree);
        assert_eq!(par.expanded_link_set(), seq.expanded_link_set());
        // Per-task windows lose some merges but not catastrophically.
        let (ps, ss) = (par.total_bytes(4) as f64, seq.total_bytes(4) as f64);
        assert!(ps <= ss * 1.5, "parallel bytes {ps} vs sequential {ss}");
    }

    #[test]
    fn steals_and_splits_happen_on_skewed_input() {
        let pts = skewed(3_000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        // Worker 0 is seeded with every task while 7 peers start
        // starving: its first splittable claim must split, and the
        // donated pool feeds the peers. On a loaded host worker 0 can
        // occasionally drain the pool before any peer thread is even
        // scheduled, so the counters are checked over a few runs —
        // correctness is asserted on every run regardless.
        let mut split = 0u64;
        let mut stolen = 0u64;
        for _ in 0..5 {
            let out = ParallelJoin::new(0.003, ParallelAlgo::Ssj).with_threads(8).run(&tree);
            assert_eq!(out.expanded_link_set(), brute_force_links(&pts, 0.003));
            assert_eq!(out.stats.threads_used, 8);
            assert!(out.stats.tasks_executed > 0);
            split += out.stats.tasks_split;
            stolen += out.stats.tasks_stolen;
            if split > 0 && stolen > 0 {
                break;
            }
        }
        assert!(split > 0, "no adaptive splits on skewed input in 5 runs");
        assert!(stolen > 0, "no steals with 8 workers in 5 runs");
    }

    #[test]
    fn single_worker_never_steals_or_splits() {
        let pts = clustered(1_500);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        let out = ParallelJoin::new(0.05, ParallelAlgo::Ssj).with_threads(1).run(&tree);
        assert_eq!(out.stats.threads_used, 1);
        assert_eq!(out.stats.tasks_stolen, 0);
        assert_eq!(out.stats.tasks_split, 0);
    }

    #[test]
    fn empty_and_tiny_trees() {
        let empty = RStarTree::<2>::new(RTreeConfig::default());
        let out = ParallelJoin::new(0.1, ParallelAlgo::Ssj).run(&empty);
        assert!(out.items.is_empty());
        let one = RStarTree::from_points(&[Point::new([0.5, 0.5])], RTreeConfig::default());
        let out = ParallelJoin::new(0.1, ParallelAlgo::Csj(10)).run(&one);
        assert!(out.items.is_empty());
    }

    #[test]
    fn precanceled_token_stops_within_one_task() {
        let pts = clustered(3_000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let token = CancelToken::new();
        token.cancel();
        let out = ParallelJoin::new(0.05, ParallelAlgo::Csj(10))
            .with_threads(4)
            .with_cancel(&token)
            .run(&tree);
        assert_eq!(out.completion.stop_reason(), Some(StopReason::Canceled));
        assert!(out.items.is_empty(), "the boundary check fires before the first task completes");
    }

    /// Regression: cancellation arriving *mid-steal* — the token set
    /// between a worker's pool pop and its execution of that task —
    /// drops the in-flight task without executing it, and the
    /// `Completion::Partial` accounting must stay consistent anyway.
    /// Timing is swept here (spin-delayed cancellers, plus one
    /// pre-canceled run so a partial outcome is guaranteed); the model
    /// checker covers the same window *exhaustively* in
    /// `csj_model::protocols::quiesce_scenario`, which pins cancel
    /// between acquisition and execution on every schedule.
    #[test]
    fn cancel_mid_steal_keeps_partial_stats_consistent() {
        let pts = skewed(2_500);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        let eps = 0.01;
        let truth = brute_force_links(&pts, eps);
        let mut saw_partial = false;
        // delay == 0 cancels before the run starts (deterministic
        // partial); larger delays land inside the steal/execute window.
        for delay in 0..16u32 {
            let token = CancelToken::new();
            if delay == 0 {
                token.cancel();
            }
            let canceller = std::thread::spawn({
                let token = token.clone();
                move || {
                    for _ in 0..delay * 400 {
                        std::hint::spin_loop();
                    }
                    token.cancel();
                }
            });
            let out = ParallelJoin::new(eps, ParallelAlgo::Ssj)
                .with_threads(4)
                .with_cancel(&token)
                .run(&tree);
            canceller.join().expect("canceller thread");
            // Lossless prefix regardless of where the cancel landed.
            for link in out.expanded_link_set() {
                assert!(truth.contains(&link), "canceled run emitted false link {link:?}");
            }
            match out.completion {
                Completion::Complete => {
                    assert_eq!(out.expanded_link_set(), truth);
                }
                Completion::Partial {
                    reason,
                    completed_fraction,
                    estimated_links,
                    estimated_bytes,
                } => {
                    saw_partial = true;
                    assert_eq!(reason, StopReason::Canceled, "delay={delay}");
                    assert!(
                        (0.0..=1.0).contains(&completed_fraction),
                        "fraction {completed_fraction} out of range, delay={delay}"
                    );
                    // The estimates must be the measured totals scaled by
                    // the completed fraction — a dropped in-flight task
                    // (the mid-steal case) must not skew the bookkeeping.
                    let measured = (out.stats.links_emitted + out.stats.links_in_groups) as f64;
                    if completed_fraction > 0.0 {
                        let expected = measured / completed_fraction;
                        assert!(
                            (estimated_links - expected).abs() <= expected * 1e-12 + 1e-12,
                            "estimated_links {estimated_links} != {measured}/{completed_fraction}, delay={delay}"
                        );
                        assert!(estimated_bytes >= 0.0);
                    } else {
                        assert_eq!(estimated_links, 0.0, "nothing measured, delay={delay}");
                        assert_eq!(estimated_bytes, 0.0, "nothing measured, delay={delay}");
                    }
                    // An interrupted task counts as executed but never as
                    // done, so executed can only exceed the done count.
                    let total = out.stats.tasks_split + out.stats.tasks_executed;
                    assert!(
                        out.stats.tasks_executed <= total,
                        "executed {} > total {total}, delay={delay}",
                        out.stats.tasks_executed
                    );
                }
            }
        }
        assert!(saw_partial, "the pre-canceled run must come back Partial");
    }

    /// Miri-sized smoke test (the Miri CI job filters on `miri_`): the
    /// full steal/donate/split machinery on a workload small enough for
    /// the interpreter, still checked against brute force.
    #[test]
    fn miri_parallel_smoke() {
        let pts = clustered(80);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(4));
        let eps = 0.05;
        let truth = brute_force_links(&pts, eps);
        for algo in [ParallelAlgo::Ssj, ParallelAlgo::Csj(4)] {
            let out = ParallelJoin::new(eps, algo).with_threads(3).run(&tree);
            assert_eq!(out.expanded_link_set(), truth, "{algo:?}");
        }
    }

    /// Miri-sized cancellation smoke test: a pre-canceled token still
    /// quiesces cleanly under the interpreter.
    #[test]
    fn miri_parallel_cancel_smoke() {
        let pts = clustered(60);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(4));
        let token = CancelToken::new();
        token.cancel();
        let out = ParallelJoin::new(0.05, ParallelAlgo::Ssj)
            .with_threads(2)
            .with_cancel(&token)
            .run(&tree);
        assert_eq!(out.completion.stop_reason(), Some(StopReason::Canceled));
    }

    #[test]
    fn midrun_cancel_yields_a_lossless_prefix() {
        let pts = clustered(4_000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let eps = 0.05;
        let truth = brute_force_links(&pts, eps);
        let token = CancelToken::new();
        let canceller = std::thread::spawn({
            let token = token.clone();
            move || token.cancel()
        });
        let out = ParallelJoin::new(eps, ParallelAlgo::Ssj)
            .with_threads(2)
            .with_cancel(&token)
            .run(&tree);
        canceller.join().expect("canceller thread");
        // Depending on timing the run may complete or stop early; either
        // way, every emitted link must be a true link.
        for link in out.expanded_link_set() {
            assert!(truth.contains(&link), "canceled run emitted false link {link:?}");
        }
        if out.completion.is_complete() {
            assert_eq!(out.expanded_link_set(), truth);
        } else {
            assert_eq!(out.completion.stop_reason(), Some(StopReason::Canceled));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::brute::brute_force_links;
    use csj_geom::Point;
    use csj_index::{rstar::RStarTree, RTreeConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The parallel runner is lossless for every algorithm, thread
        /// count and window over arbitrary data.
        #[test]
        fn parallel_lossless(
            pts in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 0..150),
            eps in 0.0f64..0.5,
            threads in 1usize..6,
            algo_idx in 0usize..3,
        ) {
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let tree = RStarTree::from_points(&points, RTreeConfig::with_max_fanout(5));
            let algo = [ParallelAlgo::Ssj, ParallelAlgo::Ncsj, ParallelAlgo::Csj(7)][algo_idx];
            let out = ParallelJoin::new(eps, algo).with_threads(threads).run(&tree);
            prop_assert_eq!(out.expanded_link_set(), brute_force_links(&points, eps));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Skewed data (a dense cluster plus sparse background) stays
        /// lossless for all three algorithms across 1 / 2 / 8 workers —
        /// the shape that triggers the donation and splitting paths.
        #[test]
        fn parallel_lossless_on_skew(
            cluster in prop::collection::vec(prop::array::uniform2(0.45f64..0.55), 20..120),
            background in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 0..40),
            eps in 0.005f64..0.1,
            threads_idx in 0usize..3,
            algo_idx in 0usize..3,
        ) {
            let points: Vec<Point<2>> =
                cluster.into_iter().chain(background).map(Point::new).collect();
            let tree = RStarTree::from_points(&points, RTreeConfig::with_max_fanout(5));
            let threads = [1usize, 2, 8][threads_idx];
            let algo = [ParallelAlgo::Ssj, ParallelAlgo::Ncsj, ParallelAlgo::Csj(7)][algo_idx];
            let out = ParallelJoin::new(eps, algo).with_threads(threads).run(&tree);
            prop_assert_eq!(out.expanded_link_set(), brute_force_links(&points, eps));
        }
    }
}
