//! The ε-grid-order join (Böhm, Braunmüller, Krebs, Kriegel — SIGMOD
//! 2001) and its compact extension.
//!
//! The paper's related work covers similarity joins *without* an index;
//! its discussion (§VII) notes that the compact-output idea carries over:
//! "one need only modify the JoinBuffer function … to add the early
//! termination-as-a-group case". This module implements both:
//!
//! * the plain grid join — lay an ε-wide grid over the data, join each
//!   cell with itself and its lexicographically-positive neighbours
//!   (the in-memory equivalent of the ε-grid order);
//! * the compact variant — before enumerating a cell (pair)'s links,
//!   check whether the points' bounding box has diameter ≤ ε and emit one
//!   group if so; residual links can additionally be merged through a
//!   CSJ-style window.
//!
//! Because a link can span at most one cell per axis when the cell width
//! is ε (for every `Lp` metric, per-axis deltas are bounded by the
//! distance), the neighbour scan is exhaustive.

use std::collections::HashMap;

use csj_geom::{Mbr, Metric, Point, RecordId};

use crate::engine::DirectEmit;
use crate::engine::{infallible, CollectSink, LinkHandler, RowSink, WindowedEmit};
use crate::group::MbrShape;
use crate::output::JoinOutput;
use crate::stats::JoinStats;
use crate::JoinConfig;

/// The ε-grid-order similarity self-join over a plain point slice.
///
/// ```
/// use csj_core::{brute::brute_force_links, egrid::GridJoin};
/// use csj_geom::Point;
///
/// let pts: Vec<Point<2>> = (0..100)
///     .map(|i| Point::new([(i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0]))
///     .collect();
/// let out = GridJoin::new(0.15).run(&pts);
/// assert_eq!(out.expanded_link_set(), brute_force_links(&pts, 0.15));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct GridJoin {
    cfg: JoinConfig,
    compact: bool,
    window: usize,
}

impl GridJoin {
    /// A standard (link-enumerating) grid join with range `epsilon`.
    pub fn new(epsilon: f64) -> Self {
        GridJoin { cfg: JoinConfig::new(epsilon), compact: false, window: 0 }
    }

    /// Enables the compact extension: cells / cell pairs whose point
    /// bounding box fits in ε are emitted as one group.
    pub fn compact(mut self) -> Self {
        self.compact = true;
        self
    }

    /// Additionally merge residual links into the `g` most recent groups
    /// (implies [`GridJoin::compact`]).
    pub fn with_window(mut self, g: usize) -> Self {
        self.compact = true;
        self.window = g;
        self
    }

    /// Replaces the metric.
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.cfg.metric = metric;
        self
    }

    /// Runs the join over `points` (record ids are slice indexes).
    pub fn run<const D: usize>(&self, points: &[Point<D>]) -> JoinOutput {
        if self.window > 0 {
            let handler =
                WindowedEmit::<MbrShape<D>, D>::new(self.window, self.cfg.epsilon, self.cfg.metric);
            self.run_with(points, handler)
        } else {
            self.run_with(points, DirectEmit)
        }
    }

    fn run_with<H: LinkHandler<D>, const D: usize>(
        &self,
        points: &[Point<D>],
        mut handler: H,
    ) -> JoinOutput {
        let eps = self.cfg.epsilon;
        let mut sink = CollectSink::default();
        let mut stats = JoinStats::new(false);

        if eps <= 0.0 {
            // Degenerate range: only exactly-coincident points qualify.
            self.join_coincident(points, &mut handler, &mut sink, &mut stats);
            infallible(handler.finish(&mut sink, &mut stats));
            return JoinOutput { items: sink.items, stats, ..Default::default() };
        }

        // Bucket points into ε-wide cells.
        let mut cells: HashMap<[i64; D], Vec<RecordId>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            let mut key = [0i64; D];
            for d in 0..D {
                key[d] = (p[d] / eps).floor() as i64;
            }
            cells.entry(key).or_default().push(i as RecordId);
        }
        // ε-grid order: process cells lexicographically (determinism and
        // the locality the windowed merge relies on).
        let mut keys: Vec<[i64; D]> = cells.keys().copied().collect();
        keys.sort_unstable();

        let offsets = positive_offsets::<D>();
        for key in &keys {
            let bucket = &cells[key];
            self.join_buffer(points, bucket, None, &mut handler, &mut sink, &mut stats);
            for off in &offsets {
                let mut nkey = *key;
                for d in 0..D {
                    nkey[d] += off[d];
                }
                if let Some(nbucket) = cells.get(&nkey) {
                    self.join_buffer(
                        points,
                        bucket,
                        Some(nbucket),
                        &mut handler,
                        &mut sink,
                        &mut stats,
                    );
                }
            }
        }
        infallible(handler.finish(&mut sink, &mut stats));
        JoinOutput { items: sink.items, stats, ..Default::default() }
    }

    /// The JoinBuffer step: one cell with itself (`other == None`) or two
    /// neighbouring cells — with the paper's §VII "early
    /// termination-as-a-group" modification in compact mode.
    fn join_buffer<H: LinkHandler<D>, R: RowSink, const D: usize>(
        &self,
        points: &[Point<D>],
        bucket: &[RecordId],
        other: Option<&[RecordId]>,
        handler: &mut H,
        sink: &mut R,
        stats: &mut JoinStats,
    ) {
        let eps = self.cfg.epsilon;
        let metric = self.cfg.metric;
        if self.compact {
            let mut mbr = Mbr::empty();
            for &id in bucket.iter().chain(other.into_iter().flatten()) {
                mbr.expand_to_point(&points[id as usize]);
            }
            if metric.mbr_diameter(&mbr) <= eps {
                stats.early_stops_node += 1;
                let ids: Vec<RecordId> =
                    bucket.iter().chain(other.into_iter().flatten()).copied().collect();
                infallible(handler.on_subtree(ids, &mbr, sink, stats));
                return;
            }
        }
        match other {
            None => {
                for i in 0..bucket.len() {
                    let pa = &points[bucket[i] as usize];
                    for &b in &bucket[(i + 1)..] {
                        let pb = &points[b as usize];
                        stats.distance_computations += 1;
                        if metric.within(pa, pb, eps) {
                            infallible(handler.on_link(bucket[i], pa, b, pb, sink, stats));
                        }
                    }
                }
            }
            Some(nbucket) => {
                for &a in bucket {
                    let pa = &points[a as usize];
                    for &b in nbucket {
                        let pb = &points[b as usize];
                        stats.distance_computations += 1;
                        if metric.within(pa, pb, eps) {
                            infallible(handler.on_link(a, pa, b, pb, sink, stats));
                        }
                    }
                }
            }
        }
    }

    /// ε = 0: group points by exact coordinates.
    fn join_coincident<H: LinkHandler<D>, R: RowSink, const D: usize>(
        &self,
        points: &[Point<D>],
        handler: &mut H,
        sink: &mut R,
        stats: &mut JoinStats,
    ) {
        let mut seen: HashMap<Vec<u64>, Vec<RecordId>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            let key: Vec<u64> = p.coords().iter().map(|c| c.to_bits()).collect();
            seen.entry(key).or_default().push(i as RecordId);
        }
        let mut buckets: Vec<Vec<RecordId>> = seen.into_values().collect();
        buckets.sort();
        for bucket in buckets {
            for i in 0..bucket.len() {
                for j in (i + 1)..bucket.len() {
                    stats.distance_computations += 1;
                    let (a, b) = (bucket[i], bucket[j]);
                    infallible(handler.on_link(
                        a,
                        &points[a as usize],
                        b,
                        &points[b as usize],
                        sink,
                        stats,
                    ));
                }
            }
        }
    }
}

/// All offsets in `{-1, 0, 1}^D` that are lexicographically positive
/// (first non-zero component is `+1`). Together with the zero offset
/// (handled as the self-join) they cover every unordered cell pair within
/// Chebyshev distance 1 exactly once.
fn positive_offsets<const D: usize>() -> Vec<[i64; D]> {
    let mut out = Vec::new();
    let total = 3usize.pow(D as u32);
    for code in 0..total {
        let mut off = [0i64; D];
        let mut c = code;
        for slot in off.iter_mut() {
            *slot = (c % 3) as i64 - 1;
            c /= 3;
        }
        let positive = off.iter().find(|&&v| v != 0).is_some_and(|&v| v > 0);
        if positive {
            out.push(off);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_links_metric;

    fn scatter(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let x = ((i * 2654435761) % 10_000) as f64 / 10_000.0;
                let y = ((i * 40503 + 99) % 10_000) as f64 / 10_000.0;
                Point::new([x, y])
            })
            .collect()
    }

    #[test]
    fn offsets_cover_half_neighbourhood() {
        let offs = positive_offsets::<2>();
        assert_eq!(offs.len(), 4, "(3^2 - 1) / 2");
        let offs3 = positive_offsets::<3>();
        assert_eq!(offs3.len(), 13, "(3^3 - 1) / 2");
        // No offset and its negation both present.
        for o in &offs3 {
            let neg = [-o[0], -o[1], -o[2]];
            assert!(!offs3.contains(&neg), "offset {o:?} and its negation");
        }
    }

    #[test]
    fn standard_grid_join_matches_brute() {
        let pts = scatter(300);
        for eps in [0.03, 0.1, 0.4] {
            let out = GridJoin::new(eps).run(&pts);
            assert_eq!(
                out.expanded_link_set(),
                brute_force_links_metric(&pts, eps, Metric::Euclidean),
                "eps={eps}"
            );
            assert_eq!(out.num_groups(), 0);
            // Each link appears exactly once (half-neighbourhood works).
            assert_eq!(out.num_links(), out.expanded_link_set().len());
        }
    }

    #[test]
    fn compact_grid_join_is_lossless_and_smaller() {
        // Tightly clustered data: many cells collapse to groups.
        let pts: Vec<Point<2>> = (0..200)
            .map(|i| {
                let c = (i / 50) as f64 * 0.31;
                Point::new([c + (i % 7) as f64 * 1e-3, c + (i % 11) as f64 * 1e-3])
            })
            .collect();
        let eps = 0.12;
        let plain = GridJoin::new(eps).run(&pts);
        let compact = GridJoin::new(eps).compact().run(&pts);
        let windowed = GridJoin::new(eps).with_window(10).run(&pts);
        let want = brute_force_links_metric(&pts, eps, Metric::Euclidean);
        assert_eq!(plain.expanded_link_set(), want);
        assert_eq!(compact.expanded_link_set(), want);
        assert_eq!(windowed.expanded_link_set(), want);
        let w = 3;
        assert!(compact.total_bytes(w) < plain.total_bytes(w), "groups must shrink output");
        assert!(windowed.total_bytes(w) <= compact.total_bytes(w));
        assert!(compact.stats.early_stops_node > 0);
    }

    #[test]
    fn negative_coordinates() {
        let pts = vec![
            Point::new([-1.05, -1.05]),
            Point::new([-0.95, -0.95]),
            Point::new([0.95, 0.95]),
            Point::new([1.05, 1.05]),
        ];
        let eps = 0.2;
        let out = GridJoin::new(eps).run(&pts);
        assert_eq!(out.expanded_link_set(), brute_force_links_metric(&pts, eps, Metric::Euclidean));
    }

    #[test]
    fn zero_epsilon_joins_only_duplicates() {
        let pts =
            vec![Point::new([0.5, 0.5]), Point::new([0.5, 0.5]), Point::new([0.5, 0.5000001])];
        let out = GridJoin::new(0.0).run(&pts);
        let set = out.expanded_link_set();
        assert_eq!(set.into_iter().collect::<Vec<_>>(), vec![(0, 1)]);
    }

    #[test]
    fn three_dimensional_join() {
        let pts: Vec<Point<3>> = (0..150)
            .map(|i| {
                Point::new([
                    ((i * 31) % 100) as f64 / 100.0,
                    ((i * 57) % 100) as f64 / 100.0,
                    ((i * 91) % 100) as f64 / 100.0,
                ])
            })
            .collect();
        let eps = 0.15;
        let out = GridJoin::new(eps).run(&pts);
        assert_eq!(out.expanded_link_set(), brute_force_links_metric(&pts, eps, Metric::Euclidean));
    }

    #[test]
    fn manhattan_metric_grid_join() {
        let pts = scatter(200);
        let eps = 0.1;
        let out = GridJoin::new(eps).with_metric(Metric::Manhattan).run(&pts);
        assert_eq!(out.expanded_link_set(), brute_force_links_metric(&pts, eps, Metric::Manhattan));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::brute::brute_force_links_metric;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// The grid join (all variants) is lossless on arbitrary inputs.
        #[test]
        fn grid_join_lossless(
            pts in prop::collection::vec(prop::array::uniform2(-2.0f64..2.0), 0..120),
            eps in 0.0f64..1.0,
            mode in 0usize..3,
        ) {
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let join = match mode {
                0 => GridJoin::new(eps),
                1 => GridJoin::new(eps).compact(),
                _ => GridJoin::new(eps).with_window(8),
            };
            let out = join.run(&points);
            prop_assert_eq!(
                out.expanded_link_set(),
                brute_force_links_metric(&points, eps, Metric::Euclidean)
            );
        }
    }
}
