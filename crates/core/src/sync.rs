//! Synchronization facade: the *only* door to `std::sync` primitives
//! in this crate (csj-lint's `sync-facade` rule enforces it).
//!
//! Built normally, the re-exports below are the plain `std::sync`
//! types and compile to nothing extra. Built with `--cfg csj_model`,
//! they swap to `csj-model`'s instrumented shims: every atomic
//! load/store/RMW and every mutex acquire/release first reports to a
//! virtual scheduler, which explores thread interleavings under
//! bounded DFS and checks happens-before with vector clocks. Outside
//! an active model execution the shims pass straight through to
//! `std`, so a `--cfg csj_model` build still runs the ordinary test
//! suite unchanged.
//!
//! The point of forcing all synchronization through one module is
//! that the scheduler's memory-model contract (DESIGN.md §9) stays
//! checkable: the model mirrors in `csj_model::protocols` use the
//! same primitives with the same orderings, and no synchronization
//! can be added to this crate without passing the facade — where it
//! is visible to review and to the model.

#[cfg(csj_model)]
pub use csj_model::sync::{atomic, Arc, Mutex, MutexGuard};
#[cfg(csj_model)]
pub use csj_model::thread::yield_now;

#[cfg(not(csj_model))]
pub use std::sync::{atomic, Arc, Mutex, MutexGuard};
#[cfg(not(csj_model))]
pub use std::thread::yield_now;
