//! Group shapes and the CSJ window of open groups.
//!
//! §V-A: a group's bounding shape must support constant-time membership
//! checks and updates, and must *guarantee* that any two covered points
//! mutually satisfy the range — i.e. its diameter under the join metric is
//! at most ε. The paper chooses minimum bounding hyper-rectangles (the
//! diagonal-`≤ ε` rule); bounding circles cover more area per group but
//! cost more to center optimally. Both are implemented here behind
//! [`GroupShape`], so the §V-A trade-off is measurable
//! (`ablation_shapes` bench).
//!
//! The merge path is the hottest loop of CSJ(g) — every residual link is
//! tested against up to `g` open groups. Three things keep it cheap:
//!
//! * [`LinkProbe`] precomputes the link's bounding box once per link, so
//!   each of the up-to-`g` attempts folds a ready-made span instead of
//!   re-deriving the two-point box;
//! * [`GroupShape::try_extend_link`] lets the MBR shape run the merge test
//!   as one fused `O(D)` pass — grown bounds and side lengths in a single
//!   loop, then a branch-free squared-diagonal-vs-ε² compare
//!   ([`Metric::norm_within`]) with no shape copy and no undo;
//! * [`GroupWindow`] is a fixed-capacity array ring (no `VecDeque`
//!   indirection), and emitted groups hand their member vectors back to
//!   the caller for recycling.

use csj_geom::{probe, KernelPath, Mbr, Metric, Point, RecordId, Sphere};

/// A qualifying link prepared for merge probing: both endpoints plus the
/// link's bounding box, computed once and reused across every merge
/// attempt in the window.
#[derive(Clone, Copy, Debug)]
pub struct LinkProbe<'a, const D: usize> {
    /// First endpoint's record id.
    pub a: RecordId,
    /// First endpoint's coordinates.
    pub pa: &'a Point<D>,
    /// Second endpoint's record id.
    pub b: RecordId,
    /// Second endpoint's coordinates.
    pub pb: &'a Point<D>,
    /// The smallest box covering both endpoints.
    pub span: Mbr<D>,
}

impl<'a, const D: usize> LinkProbe<'a, D> {
    /// Prepares a link for merge probing (one `from_corners` per link).
    #[inline]
    pub fn new(a: RecordId, pa: &'a Point<D>, b: RecordId, pb: &'a Point<D>) -> Self {
        LinkProbe { a, pa, b, pb, span: Mbr::from_corners(pa, pb) }
    }
}

/// A constant-time-updatable bounding shape for an output group.
///
/// The contract: after any sequence of constructor / `try_extend` calls,
/// every point ever covered lies within the shape, and
/// `diameter() <= ε` implies all covered point pairs are within ε.
pub trait GroupShape<const D: usize>: Clone + std::fmt::Debug {
    /// Smallest shape covering two points.
    fn from_pair(a: &Point<D>, b: &Point<D>) -> Self;

    /// Smallest shape covering a prepared link's endpoints. Must equal
    /// `from_pair(link.pa, link.pb)`; shapes whose two-point form *is*
    /// the link's bounding box override this to adopt the precomputed
    /// span instead of re-deriving it. The default delegates.
    #[inline]
    fn from_link_probe(link: &LinkProbe<'_, D>, metric: Metric) -> Self {
        let _ = metric;
        Self::from_pair(link.pa, link.pb)
    }

    /// `true` when [`GroupShape::from_link_probe`] already covers both
    /// endpoints exactly, so the opening extend step can be skipped.
    /// Shapes with a degenerate two-point form (e.g. a zero-radius ball)
    /// leave this `false`.
    const FROM_LINK_EXACT: bool = false;

    /// Box bounds for the window's batched slab probe, when the shape is
    /// an axis-aligned box whose merge test
    /// [`csj_geom::probe::mbr_fit_mask`] evaluates (the squared-diagonal
    /// rule) and whose growth is the min/max fold of the link span into
    /// those bounds. `None` — the default — opts the shape out, and
    /// windows holding it probe sequentially. Shapes returning `Some`
    /// must also implement [`GroupShape::set_slab_bounds`]: on the slab
    /// probe path the window maintains the merged bounds in its slabs
    /// alone and restores the shapes from them when groups leave the
    /// window.
    #[inline]
    fn slab_bounds(&self) -> Option<(Point<D>, Point<D>)> {
        None
    }

    /// Restores the shape from slab bounds — the inverse of
    /// [`GroupShape::slab_bounds`]. Never called for shapes whose
    /// `slab_bounds` is `None`; the default therefore only flags the
    /// missing override in debug builds.
    #[inline]
    fn set_slab_bounds(&mut self, lo: &Point<D>, hi: &Point<D>) {
        let _ = (lo, hi);
        debug_assert!(false, "shapes providing slab_bounds must implement set_slab_bounds");
    }

    /// Shape covering an existing bounding rectangle (used when a whole
    /// subtree becomes a group: the node's bounding shape is reused).
    fn from_mbr(mbr: &Mbr<D>, metric: Metric) -> Self;

    /// Diameter under `metric`: an upper bound on the distance between
    /// any two covered points.
    fn diameter(&self, metric: Metric) -> f64;

    /// Attempts to grow the shape to also cover `a` and `b` while keeping
    /// `diameter() <= eps`. On success the shape is updated and `true` is
    /// returned; on failure the shape is left unchanged (the pseudo-code's
    /// "undo extension").
    fn try_extend(&mut self, a: &Point<D>, b: &Point<D>, eps: f64, metric: Metric) -> bool;

    /// [`GroupShape::try_extend`] for a prepared link. Must decide and
    /// mutate exactly as `try_extend(link.pa, link.pb, eps, metric)`
    /// would; shapes override it when the precomputed span enables a
    /// cheaper incremental test. The default delegates.
    #[inline]
    fn try_extend_link(&mut self, link: &LinkProbe<'_, D>, eps: f64, metric: Metric) -> bool {
        self.try_extend(link.pa, link.pb, eps, metric)
    }

    /// Unconditional cover-extension: grow the shape over the link with no
    /// diameter check. Callers use it only when the fit is already decided
    /// (an `ε = ∞` open, or a batched probe that evaluated the exact merge
    /// test). Must commit the same bits `try_extend_link(link, eps, ..)`
    /// would on success. The default routes through the checked path with
    /// `ε = ∞`.
    #[inline]
    fn extend_link(&mut self, link: &LinkProbe<'_, D>, metric: Metric) {
        let grew = self.try_extend_link(link, f64::INFINITY, metric);
        debug_assert!(grew);
    }
}

/// The paper's group shape: a minimum bounding hyper-rectangle whose
/// metric diameter (Euclidean: main diagonal) must stay within ε.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MbrShape<const D: usize>(pub Mbr<D>);

impl<const D: usize> GroupShape<D> for MbrShape<D> {
    fn from_pair(a: &Point<D>, b: &Point<D>) -> Self {
        MbrShape(Mbr::from_corners(a, b))
    }

    /// The link's span *is* the two-point MBR — adopt it as-is.
    #[inline]
    fn from_link_probe(link: &LinkProbe<'_, D>, _metric: Metric) -> Self {
        MbrShape(link.span)
    }

    const FROM_LINK_EXACT: bool = true;

    #[inline]
    fn slab_bounds(&self) -> Option<(Point<D>, Point<D>)> {
        Some((self.0.lo, self.0.hi))
    }

    #[inline]
    fn set_slab_bounds(&mut self, lo: &Point<D>, hi: &Point<D>) {
        self.0 = Mbr { lo: *lo, hi: *hi };
    }

    fn from_mbr(mbr: &Mbr<D>, _metric: Metric) -> Self {
        MbrShape(*mbr)
    }

    fn diameter(&self, metric: Metric) -> f64 {
        metric.mbr_diameter(&self.0)
    }

    fn try_extend(&mut self, a: &Point<D>, b: &Point<D>, eps: f64, metric: Metric) -> bool {
        let mut grown = self.0;
        grown.expand_to_point(a);
        grown.expand_to_point(b);
        // Hot path of every CSJ merge attempt: the ε²-compare skips the
        // sqrt of the full diameter norm.
        if metric.mbr_diameter_within(&grown, eps) {
            self.0 = grown;
            true
        } else {
            false
        }
    }

    /// The fused merge test: grown bounds and side lengths in one `O(D)`
    /// pass over the precomputed link span, then a branch-free
    /// squared-extended-diagonal-vs-ε² compare. Folding the span into the
    /// box is exactly `expand_to_point(pa); expand_to_point(pb)` (min/max
    /// are commutative and associative), and [`Metric::norm_within`] on
    /// the grown sides is exactly [`Metric::mbr_diameter_within`], so the
    /// decision — and the committed shape — match [`GroupShape::try_extend`]
    /// on every input. No shape copy, no undo: bounds are committed only
    /// after the test passes.
    ///
    /// Deliberately branch-free until the single `norm_within` compare:
    /// a per-dimension `side > ε` bail-out was measured slower here —
    /// merge attempts fail unpredictably, and the mispredictions cost
    /// more than the handful of min/max ops they would skip.
    #[inline]
    fn try_extend_link(&mut self, link: &LinkProbe<'_, D>, eps: f64, metric: Metric) -> bool {
        let mut lo = self.0.lo;
        let mut hi = self.0.hi;
        let mut sides = [0.0f64; D];
        for d in 0..D {
            let l = lo[d].min(link.span.lo[d]);
            let h = hi[d].max(link.span.hi[d]);
            lo[d] = l;
            hi[d] = h;
            sides[d] = h - l;
        }
        if metric.norm_within(sides, eps) {
            self.0.lo = lo;
            self.0.hi = hi;
            true
        } else {
            false
        }
    }

    /// Known-fit commit: the min/max fold of [`GroupShape::try_extend_link`]
    /// without the (already-decided) diameter test.
    #[inline]
    fn extend_link(&mut self, link: &LinkProbe<'_, D>, _metric: Metric) {
        for d in 0..D {
            self.0.lo[d] = self.0.lo[d].min(link.span.lo[d]);
            self.0.hi[d] = self.0.hi[d].max(link.span.hi[d]);
        }
    }
}

/// §V-A alternative: a bounding ball. Covers up to ~57% more area than a
/// rectangle of the same diameter in 2-D, but the incremental center
/// updates (Ritter steps) are approximate, so merge acceptance differs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BallShape<const D: usize>(pub Sphere<D>);

impl<const D: usize> GroupShape<D> for BallShape<D> {
    fn from_pair(a: &Point<D>, b: &Point<D>) -> Self {
        // Midpoint center is exact for L2 and valid (covering) for the
        // other metrics after the radius check below.
        let center = a.midpoint(b);
        BallShape(Sphere::new(center, 0.0))
    }

    fn from_mbr(mbr: &Mbr<D>, metric: Metric) -> Self {
        BallShape(Sphere::new(mbr.center(), 0.5 * metric.mbr_diameter(mbr)))
    }

    fn diameter(&self, _metric: Metric) -> f64 {
        self.0.diameter()
    }

    fn try_extend(&mut self, a: &Point<D>, b: &Point<D>, eps: f64, metric: Metric) -> bool {
        let mut grown = self.0;
        grown.expand_to_point(a, metric);
        grown.expand_to_point(b, metric);
        if grown.diameter() <= eps {
            self.0 = grown;
            true
        } else {
            false
        }
    }
}

/// Appends an endpoint to a raw member log, skipping the common case of
/// the same endpoint recurring across consecutive links (nested leaf
/// loops); full deduplication happens once, at emission.
#[inline]
fn push_member(members: &mut Vec<RecordId>, id: RecordId) {
    if members.last() != Some(&id) {
        members.push(id);
    }
}

/// An output group still open for CSJ merging.
///
/// Members are kept as a raw push log (consecutive duplicates skipped);
/// [`OpenGroup::into_sorted_members`] deduplicates at emission time. This
/// keeps the per-link merge cost to a couple of comparisons instead of a
/// hash insert — the merge loop is the hottest path of CSJ(g).
#[derive(Clone, Debug)]
pub struct OpenGroup<S, const D: usize> {
    /// Member record ids as pushed (may contain non-consecutive repeats).
    pub members: Vec<RecordId>,
    /// Current bounding shape.
    pub shape: S,
}

impl<S: GroupShape<D>, const D: usize> OpenGroup<S, D> {
    /// Opens a group from a single qualifying link.
    pub fn from_link(
        a: RecordId,
        pa: &Point<D>,
        b: RecordId,
        pb: &Point<D>,
        metric: Metric,
    ) -> Self {
        Self::from_link_in(&LinkProbe::new(a, pa, b, pb), metric, Vec::with_capacity(2))
    }

    /// [`OpenGroup::from_link`] with a caller-supplied (recycled) member
    /// vector, so the merge hot path opens groups without allocating.
    ///
    /// `members` must be empty; its capacity is reused.
    #[inline]
    pub fn from_link_in(link: &LinkProbe<'_, D>, metric: Metric, members: Vec<RecordId>) -> Self {
        debug_assert!(members.is_empty(), "recycled member vectors must be cleared");
        let mut shape = S::from_link_probe(link, metric);
        // from_link_probe may produce a degenerate shape (e.g. a
        // zero-radius ball at the midpoint); extend covers both endpoints
        // exactly. Shapes that adopt the span exactly skip the step at
        // compile time.
        if !S::FROM_LINK_EXACT {
            shape.extend_link(link, metric);
        }
        let mut g = OpenGroup { members, shape };
        g.add_member(link.a);
        g.add_member(link.b);
        g
    }

    /// Opens a group for a whole subtree (the early-stopping rule).
    pub fn from_subtree(members: Vec<RecordId>, mbr: &Mbr<D>, metric: Metric) -> Self {
        debug_assert!(!members.is_empty());
        OpenGroup { members, shape: S::from_mbr(mbr, metric) }
    }

    fn add_member(&mut self, id: RecordId) {
        push_member(&mut self.members, id);
    }

    /// The pseudo-code's merge step: try to extend the shape to cover the
    /// link; on success add both endpoints as members.
    pub fn try_merge(
        &mut self,
        a: RecordId,
        pa: &Point<D>,
        b: RecordId,
        pb: &Point<D>,
        eps: f64,
        metric: Metric,
    ) -> bool {
        if self.shape.try_extend(pa, pb, eps, metric) {
            self.add_member(a);
            self.add_member(b);
            true
        } else {
            false
        }
    }

    /// [`OpenGroup::try_merge`] for a prepared link — the merge hot path.
    /// Decision and state changes are identical; the prepared span just
    /// makes the shape test cheaper.
    #[inline]
    pub fn try_merge_probe(&mut self, link: &LinkProbe<'_, D>, eps: f64, metric: Metric) -> bool {
        if self.shape.try_extend_link(link, eps, metric) {
            self.add_member(link.a);
            self.add_member(link.b);
            true
        } else {
            false
        }
    }

    /// Number of member entries pushed so far (counts repeats; use
    /// [`OpenGroup::into_sorted_members`] for the true member set).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the group has no members (never happens for constructed
    /// groups; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Finalizes the group: the member set, sorted and deduplicated.
    #[inline]
    pub fn into_sorted_members(self) -> Vec<RecordId> {
        let mut m = self.members;
        sort_dedup_members(&mut m);
        m
    }
}

/// Finalizes a member log in place: sorted, deduplicated.
#[inline]
fn sort_dedup_members(m: &mut Vec<RecordId>) {
    // Never-merged two-point groups dominate; their log is two distinct
    // ids (consecutive duplicates are skipped at push), so ordering them
    // is one compare — skip the sort machinery.
    if m.len() == 2 {
        if m[0] > m[1] {
            m.swap(0, 1);
        }
        return;
    }
    m.sort_unstable();
    m.dedup();
}

/// The `g` most recent groups, as a FIFO ring. Pushing beyond capacity
/// evicts (returns) the oldest group, which is then final and can be
/// emitted — groups outside the window can never change again.
///
/// Stored struct-of-arrays: the shapes live in one contiguous slab,
/// the member vectors in a parallel one, and — for box shapes — the
/// bounds additionally in per-dimension slabs (`slab_lo`/`slab_hi`).
/// The merge probe — the hottest loop of CSJ(g), run up to `g` times
/// per residual link — then collapses to one wide pass: a fit bitmask
/// over the whole window ([`csj_geom::probe::mbr_fit_mask`], SIMD when
/// the host has it) and integer arithmetic to recover the newest-first
/// accept decision and the attempt count the sequential walk would have
/// produced. A member vector is touched exactly once, on the one group
/// that accepts the link. A wrapping head index replaces `VecDeque`
/// indirection: once warm, a push is one `mem::replace` per slab at the
/// head slot.
#[derive(Debug)]
pub struct GroupWindow<S, const D: usize> {
    /// Group shapes; grows up to `capacity`, then slots are overwritten
    /// in place. `head` is the oldest slot once the ring is full (and 0
    /// while still filling), so slot age increases with distance from
    /// the newest slot.
    shapes: Vec<S>,
    /// Raw member lists, parallel to `shapes`.
    members: Vec<Vec<RecordId>>,
    /// Per-dimension lower/upper bound slabs mirroring `shapes`,
    /// maintained while every shape reports [`GroupShape::slab_bounds`];
    /// they feed the vectorized whole-window probe. Held at the fixed
    /// padded length [`GroupWindow::slab_len`]: slots no open group
    /// occupies stay at the `+∞` sentinel (an infinite side always fails
    /// the ordered `≤ ε²` compare, so sentinel lanes never set a mask
    /// bit), which lets the SIMD probe run whole vectors with no scalar
    /// tail and lets `push` store by index instead of branching between
    /// grow and replace.
    slab_lo: [Vec<f64>; D],
    slab_hi: [Vec<f64>; D],
    /// Fixed slab length: the capacity rounded up to a 4-lane multiple,
    /// or 0 when the window is too wide for the mask probe (or has no
    /// capacity) and probes sequentially instead.
    slab_len: usize,
    /// `false` once any pushed shape declined to provide slab bounds;
    /// the window then probes sequentially for its whole life.
    slab_ok: bool,
    /// Dispatch for the mask probe, resolved once per window.
    path: KernelPath,
    head: usize,
    capacity: usize,
}

/// Padded bound-slab length for a window: the capacity rounded up to a
/// whole number of 4-wide SIMD lanes, or 0 when the window exceeds the
/// mask width (those windows probe sequentially).
fn slab_len_for(capacity: usize) -> usize {
    if capacity == 0 || capacity > probe::MAX_WINDOW {
        0
    } else {
        (capacity + 3) & !3
    }
}

impl<S: GroupShape<D>, const D: usize> GroupWindow<S, D> {
    /// A window considering the `capacity` most recent groups.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.min(1024);
        let slab_len = slab_len_for(capacity);
        GroupWindow {
            shapes: Vec::with_capacity(cap),
            members: Vec::with_capacity(cap),
            slab_lo: std::array::from_fn(|_| vec![f64::INFINITY; slab_len]),
            slab_hi: std::array::from_fn(|_| vec![f64::INFINITY; slab_len]),
            slab_len,
            slab_ok: slab_len != 0,
            path: KernelPath::detect(),
            head: 0,
            capacity,
        }
    }

    /// Refreshes slot `i`'s bound-slab columns from its shape.
    fn sync_slab(&mut self, i: usize) {
        if self.slab_ok {
            if let Some((lo, hi)) = self.shapes[i].slab_bounds() {
                for d in 0..D {
                    self.slab_lo[d][i] = lo[d];
                    self.slab_hi[d][i] = hi[d];
                }
            }
        }
    }

    /// Number of currently open groups.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// `true` if no groups are open.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Tries to merge a link into the open groups, newest first. Returns
    /// `true` on success and reports the number of attempts via
    /// `attempts`.
    pub fn try_merge_link(
        &mut self,
        link: &LinkProbe<'_, D>,
        eps: f64,
        metric: Metric,
        attempts: &mut u64,
    ) -> bool {
        let n = self.shapes.len();
        if n == 0 {
            return false;
        }
        // Slab probe path: the decision is the squared-diagonal fit of
        // the padded bound slabs, which are the authoritative merged
        // bounds here (shapes are only rematerialized from them when
        // groups leave the window via `drain`). One wide fit mask plus
        // integer selection recovers the slot the sequential
        // newest-first walk would accept and the attempts it would have
        // counted, so decisions, output, and stats are identical on
        // every dispatch path.
        if self.slab_ok && matches!(metric, Metric::Euclidean) {
            let head = self.head;
            debug_assert!(n <= probe::MAX_WINDOW && head < probe::MAX_WINDOW);
            let eps_sq = eps * eps;
            // SIMD needs a NaN-free span (the one case where lane
            // min/max diverges from f64::min/max) and a finite ε² (so
            // the `+∞` sentinels in the padded lanes can never pass);
            // otherwise the scalar kernel probes the live slots only —
            // same operations, same decision.
            let simd_ok = eps_sq < f64::INFINITY
                && (0..D).all(|d| !link.span.lo[d].is_nan() && !link.span.hi[d].is_nan());
            let lo: [&[f64]; D] = std::array::from_fn(|d| self.slab_lo[d].as_slice());
            let hi: [&[f64]; D] = std::array::from_fn(|d| self.slab_hi[d].as_slice());
            let path = if simd_ok { self.path } else { KernelPath::Scalar };
            // csj-lint: allow(padding-invariant) — the finite-ε guard is
            // `simd_ok` above, which selects the scalar kernel as a *value*
            // (`path`) rather than branching around the call; value flow is
            // outside the control-flow analysis, but the sentinel contract
            // holds: a non-finite ε² forces KernelPath::Scalar.
            let (slot, tried) = probe::mbr_fit_pick(
                path,
                &lo,
                &hi,
                &link.span.lo.0,
                &link.span.hi.0,
                eps_sq,
                head,
                n,
            );
            *attempts += tried;
            return match slot {
                Some(i) => {
                    // Debug builds re-run the checked shape merge: it
                    // must agree with the mask, and it keeps the ring
                    // shape fresh so the slab-vs-shape invariant below
                    // can be asserted bit-for-bit.
                    #[cfg(debug_assertions)]
                    assert!(
                        self.shapes[i].try_extend_link(link, eps, metric),
                        "fit mask and sequential merge test must agree"
                    );
                    // Commit: fold the span into the slabs — exactly the
                    // min/max the shape's own merge would perform.
                    for d in 0..D {
                        let l = self.slab_lo[d][i];
                        self.slab_lo[d][i] = l.min(link.span.lo[d]);
                        let h = self.slab_hi[d][i];
                        self.slab_hi[d][i] = h.max(link.span.hi[d]);
                    }
                    #[cfg(debug_assertions)]
                    if let Some((lo, hi)) = self.shapes[i].slab_bounds() {
                        for d in 0..D {
                            assert_eq!(lo[d].to_bits(), self.slab_lo[d][i].to_bits());
                            assert_eq!(hi[d].to_bits(), self.slab_hi[d][i].to_bits());
                        }
                    }
                    let members = &mut self.members[i];
                    push_member(members, link.a);
                    push_member(members, link.b);
                    true
                }
                None => false,
            };
        }

        // Sequential reference walk (no slabs, or a metric the mask
        // does not evaluate — shapes are authoritative here). Ring ages
        // run oldest-at-`head`, wrapping; newest-first order is
        // therefore `[0, head)` reversed, then `[head, len)` reversed —
        // two plain slice walks over the shape slab alone. The member
        // slab is only touched by the one group that accepts the link.
        let head = self.head;
        let (front, back) = self.shapes.split_at_mut(head);
        let mut hit = None;
        for (off, shape) in front.iter_mut().rev().chain(back.iter_mut().rev()).enumerate() {
            *attempts += 1;
            if shape.try_extend_link(link, eps, metric) {
                // Chain order visits head-1 .. 0, then n-1 .. head.
                hit = Some(if off < head { head - 1 - off } else { n - 1 - (off - head) });
                break;
            }
        }
        match hit {
            Some(i) => {
                self.sync_slab(i);
                let members = &mut self.members[i];
                push_member(members, link.a);
                push_member(members, link.b);
                true
            }
            None => false,
        }
    }

    /// Opens a group covering `link` in the newest slot, finalizing —
    /// through `emit` — the oldest group the open displaces once the
    /// ring is full. The displaced slot's member log is sorted and
    /// deduplicated in place and handed to `emit` as a slice, then its
    /// allocation is reused for the new group: the steady-state open
    /// neither allocates nor moves a vector, where routing through
    /// [`GroupWindow::push`] would bounce both through the caller. With
    /// zero capacity the link's own (already final) pair is emitted from
    /// the stack.
    ///
    /// Decision-equivalent to `push(OpenGroup::from_link_in(..))` plus
    /// emitting the returned eviction: same groups, same order. `emit`
    /// is responsible for suppressing rows that encode no links (fewer
    /// than two members).
    ///
    /// # Errors
    ///
    /// Propagates the first error `emit` returns (a full sink, a broken
    /// pipe); the displaced group is then not replaced and the open does
    /// not happen.
    pub fn open_link<X, E>(
        &mut self,
        link: &LinkProbe<'_, D>,
        metric: Metric,
        mut emit: E,
    ) -> Result<(), X>
    where
        E: FnMut(&[RecordId]) -> Result<(), X>,
    {
        if self.capacity == 0 {
            // Nothing stays open: the pair itself is the final group.
            let (a, b) = if link.a <= link.b { (link.a, link.b) } else { (link.b, link.a) };
            return emit(&[a, b]);
        }
        let growing = self.shapes.len() < self.capacity;
        let slot = if growing { self.shapes.len() } else { self.head };
        if !growing {
            // The head slot holds the oldest group — final the moment a
            // newer one displaces it. Emit straight from the slot, then
            // reuse its member allocation.
            let m = &mut self.members[slot];
            sort_dedup_members(m);
            emit(m)?;
            m.clear();
        }
        let mut shape = S::from_link_probe(link, metric);
        if !S::FROM_LINK_EXACT {
            shape.extend_link(link, metric);
        }
        if self.slab_ok {
            match shape.slab_bounds() {
                Some((lo, hi)) => {
                    for d in 0..D {
                        self.slab_lo[d][slot] = lo[d];
                        self.slab_hi[d][slot] = hi[d];
                    }
                }
                None => {
                    // The shape opted out; sequential probing from here on.
                    self.slab_ok = false;
                    for d in 0..D {
                        self.slab_lo[d].clear();
                        self.slab_hi[d].clear();
                    }
                }
            }
        }
        if growing {
            let mut members = Vec::with_capacity(8);
            members.push(link.a);
            self.shapes.push(shape);
            self.members.push(members);
        } else {
            self.shapes[slot] = shape;
            self.members[slot].push(link.a);
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
        }
        push_member(&mut self.members[slot], link.b);
        Ok(())
    }

    /// Pushes a freshly opened group; returns the evicted (now final)
    /// group if the window overflowed. With capacity 0 the pushed group
    /// itself is returned immediately.
    #[inline]
    #[must_use]
    pub fn push(&mut self, group: OpenGroup<S, D>) -> Option<OpenGroup<S, D>> {
        if self.capacity == 0 {
            return Some(group);
        }
        let growing = self.shapes.len() < self.capacity;
        if self.slab_ok {
            // The incoming group's slot: the append position while the
            // ring fills, the head slot (displacing the oldest) once full.
            let slot = if growing { self.shapes.len() } else { self.head };
            match group.shape.slab_bounds() {
                Some((lo, hi)) => {
                    for d in 0..D {
                        self.slab_lo[d][slot] = lo[d];
                        self.slab_hi[d][slot] = hi[d];
                    }
                }
                None => {
                    // The shape opted out; sequential probing from here on.
                    self.slab_ok = false;
                    for d in 0..D {
                        self.slab_lo[d].clear();
                        self.slab_hi[d].clear();
                    }
                }
            }
        }
        if growing {
            self.shapes.push(group.shape);
            self.members.push(group.members);
            return None;
        }
        // Full: the head slot holds the oldest group. Replace it with
        // the newcomer and advance (wrap without dividing), keeping FIFO
        // eviction order.
        let shape = std::mem::replace(&mut self.shapes[self.head], group.shape);
        let members = std::mem::replace(&mut self.members[self.head], group.members);
        self.head += 1;
        if self.head == self.capacity {
            self.head = 0;
        }
        Some(OpenGroup { members, shape })
    }

    /// Closes the window, yielding all remaining groups oldest-first.
    pub fn drain(&mut self) -> impl Iterator<Item = OpenGroup<S, D>> + '_ {
        // On the slab probe path merges update only the bound slabs;
        // restore each departing shape from its slab columns so drained
        // groups carry their true merged bounds.
        if self.slab_ok {
            for i in 0..self.shapes.len() {
                let lo = Point::new(std::array::from_fn(|d| self.slab_lo[d][i]));
                let hi = Point::new(std::array::from_fn(|d| self.slab_hi[d][i]));
                self.shapes[i].set_slab_bounds(&lo, &hi);
            }
        }
        let mut shapes = std::mem::take(&mut self.shapes);
        let mut members = std::mem::take(&mut self.members);
        shapes.rotate_left(self.head);
        members.rotate_left(self.head);
        for d in 0..D {
            self.slab_lo[d].clear();
            self.slab_lo[d].resize(self.slab_len, f64::INFINITY);
            self.slab_hi[d].clear();
            self.slab_hi[d].resize(self.slab_len, f64::INFINITY);
        }
        self.slab_ok = self.slab_len != 0;
        self.head = 0;
        shapes.into_iter().zip(members).map(|(shape, members)| OpenGroup { members, shape })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L2: Metric = Metric::Euclidean;

    fn p(x: f64, y: f64) -> Point<2> {
        Point::new([x, y])
    }

    #[test]
    fn mbr_shape_pair_and_diameter() {
        let s = <MbrShape<2> as GroupShape<2>>::from_pair(&p(0.0, 0.0), &p(3.0, 4.0));
        assert_eq!(s.diameter(L2), 5.0);
    }

    #[test]
    fn mbr_shape_extend_respects_eps() {
        let mut s = <MbrShape<2> as GroupShape<2>>::from_pair(&p(0.0, 0.0), &p(0.3, 0.0));
        assert!(s.try_extend(&p(0.5, 0.0), &p(0.6, 0.0), 1.0, L2));
        assert_eq!(s.diameter(L2), 0.6);
        // Refusal leaves the shape unchanged.
        let before = s;
        assert!(!s.try_extend(&p(2.0, 0.0), &p(0.0, 0.0), 1.0, L2));
        assert_eq!(s, before);
    }

    #[test]
    fn ball_shape_covers_link_endpoints() {
        let a = p(0.0, 0.0);
        let b = p(0.6, 0.8); // distance 1.0
        let g: OpenGroup<BallShape<2>, 2> = OpenGroup::from_link(1, &a, 2, &b, L2);
        assert!(g.shape.0.contains_point(&a, L2));
        assert!(g.shape.0.contains_point(&b, L2));
        assert!((g.shape.diameter(L2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn open_group_deduplicates_members() {
        let mut g: OpenGroup<MbrShape<2>, 2> =
            OpenGroup::from_link(1, &p(0.0, 0.0), 2, &p(0.1, 0.0), L2);
        assert!(g.try_merge(2, &p(0.1, 0.0), 3, &p(0.2, 0.0), 1.0, L2));
        // Consecutive repeat of 2 is skipped at push time …
        assert_eq!(g.members, vec![1, 2, 3]);
        // … and any remaining repeats vanish at emission.
        assert!(g.clone().try_merge(1, &p(0.0, 0.0), 2, &p(0.1, 0.0), 1.0, L2));
        let mut g2 = g.clone();
        assert!(g2.try_merge(1, &p(0.0, 0.0), 2, &p(0.1, 0.0), 1.0, L2));
        assert_eq!(g2.into_sorted_members(), vec![1, 2, 3]);
    }

    #[test]
    fn subtree_group_has_node_shape() {
        let mbr = Mbr::from_corners(&p(0.0, 0.0), &p(0.3, 0.4));
        let g: OpenGroup<MbrShape<2>, 2> = OpenGroup::from_subtree(vec![5, 6, 7], &mbr, L2);
        assert_eq!(g.members, vec![5, 6, 7]);
        assert_eq!(g.shape.diameter(L2), 0.5);
    }

    #[test]
    fn window_eviction_fifo() {
        let mut w: GroupWindow<MbrShape<2>, 2> = GroupWindow::new(2);
        let g1 = OpenGroup::from_link(1, &p(0.0, 0.0), 2, &p(0.01, 0.0), L2);
        let g2 = OpenGroup::from_link(3, &p(1.0, 0.0), 4, &p(1.01, 0.0), L2);
        let g3 = OpenGroup::from_link(5, &p(2.0, 0.0), 6, &p(2.01, 0.0), L2);
        assert!(w.push(g1).is_none());
        assert!(w.push(g2).is_none());
        let evicted = w.push(g3).expect("window overflow evicts oldest");
        assert_eq!(evicted.into_sorted_members(), vec![1, 2]);
        assert_eq!(w.len(), 2);
        let rest: Vec<Vec<u32>> = w.drain().map(|g| g.into_sorted_members()).collect();
        assert_eq!(rest, vec![vec![3, 4], vec![5, 6]]);
    }

    #[test]
    fn window_capacity_zero_bounces_groups() {
        let mut w: GroupWindow<MbrShape<2>, 2> = GroupWindow::new(0);
        let g = OpenGroup::from_link(1, &p(0.0, 0.0), 2, &p(0.01, 0.0), L2);
        let bounced = w.push(g).expect("capacity 0 returns the group");
        assert_eq!(bounced.into_sorted_members(), vec![1, 2]);
        assert!(w.is_empty());
    }

    #[test]
    fn merge_prefers_newest_group() {
        let mut w: GroupWindow<MbrShape<2>, 2> = GroupWindow::new(5);
        // Two groups both able to absorb the link; newest must win.
        let _ = w.push(OpenGroup::from_link(1, &p(0.0, 0.0), 2, &p(0.02, 0.0), L2));
        let _ = w.push(OpenGroup::from_link(3, &p(0.05, 0.0), 4, &p(0.07, 0.0), L2));
        let mut attempts = 0;
        let (pa, pb) = (p(0.04, 0.0), p(0.06, 0.0));
        let link = LinkProbe::new(8, &pa, 9, &pb);
        let ok = w.try_merge_link(&link, 0.1, L2, &mut attempts);
        assert!(ok);
        assert_eq!(attempts, 1, "newest group tried first and accepted");
        let groups: Vec<Vec<u32>> = w.drain().map(|g| g.into_sorted_members()).collect();
        assert_eq!(groups, vec![vec![1, 2], vec![3, 4, 8, 9]]);
    }

    #[test]
    fn merge_fails_when_no_group_fits() {
        let mut w: GroupWindow<MbrShape<2>, 2> = GroupWindow::new(5);
        let _ = w.push(OpenGroup::from_link(1, &p(0.0, 0.0), 2, &p(0.02, 0.0), L2));
        let mut attempts = 0;
        let (pa, pb) = (p(5.0, 0.0), p(5.01, 0.0));
        let link = LinkProbe::new(8, &pa, 9, &pb);
        let ok = w.try_merge_link(&link, 0.1, L2, &mut attempts);
        assert!(!ok);
        assert_eq!(attempts, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// After any merge sequence, an MBR group's diameter never exceeds
        /// ε and every member link endpoint stays covered — the invariant
        /// behind Theorem 2.
        #[test]
        fn mbr_group_invariant(
            links in prop::collection::vec(
                (prop::array::uniform2(0.0f64..1.0), prop::array::uniform2(0.0f64..1.0)),
                1..60
            ),
            eps in 0.05f64..0.8,
        ) {
            let metric = Metric::Euclidean;
            let mut covered: Vec<Point<2>> = Vec::new();
            let mut group: Option<OpenGroup<MbrShape<2>, 2>> = None;
            for (i, (a, b)) in links.iter().enumerate() {
                let (pa, pb) = (Point::new(*a), Point::new(*b));
                if metric.distance(&pa, &pb) > eps {
                    continue; // not a link
                }
                match &mut group {
                    None => {
                        let g: OpenGroup<MbrShape<2>, 2> = OpenGroup::from_link(2 * i as u32, &pa, 2 * i as u32 + 1, &pb, metric);
                        if g.shape.diameter(metric) <= eps {
                            covered.push(pa);
                            covered.push(pb);
                            group = Some(g);
                        }
                    }
                    Some(g) => {
                        if g.try_merge(2 * i as u32, &pa, 2 * i as u32 + 1, &pb, eps, metric) {
                            covered.push(pa);
                            covered.push(pb);
                        }
                    }
                }
                if let Some(g) = &group {
                    prop_assert!(g.shape.diameter(metric) <= eps + 1e-9);
                    for p in &covered {
                        prop_assert!(g.shape.0.contains_point(p));
                    }
                    // Diameter <= eps really does bound all pairs.
                    for x in &covered {
                        for y in &covered {
                            prop_assert!(metric.distance(x, y) <= eps + 1e-9);
                        }
                    }
                }
            }
        }
    }
}
