//! Group shapes and the CSJ window of open groups.
//!
//! §V-A: a group's bounding shape must support constant-time membership
//! checks and updates, and must *guarantee* that any two covered points
//! mutually satisfy the range — i.e. its diameter under the join metric is
//! at most ε. The paper chooses minimum bounding hyper-rectangles (the
//! diagonal-`≤ ε` rule); bounding circles cover more area per group but
//! cost more to center optimally. Both are implemented here behind
//! [`GroupShape`], so the §V-A trade-off is measurable
//! (`ablation_shapes` bench).

use std::collections::VecDeque;

use csj_geom::{Mbr, Metric, Point, RecordId, Sphere};

/// A constant-time-updatable bounding shape for an output group.
///
/// The contract: after any sequence of constructor / `try_extend` calls,
/// every point ever covered lies within the shape, and
/// `diameter() <= ε` implies all covered point pairs are within ε.
pub trait GroupShape<const D: usize>: Clone + std::fmt::Debug {
    /// Smallest shape covering two points.
    fn from_pair(a: &Point<D>, b: &Point<D>) -> Self;

    /// Shape covering an existing bounding rectangle (used when a whole
    /// subtree becomes a group: the node's bounding shape is reused).
    fn from_mbr(mbr: &Mbr<D>, metric: Metric) -> Self;

    /// Diameter under `metric`: an upper bound on the distance between
    /// any two covered points.
    fn diameter(&self, metric: Metric) -> f64;

    /// Attempts to grow the shape to also cover `a` and `b` while keeping
    /// `diameter() <= eps`. On success the shape is updated and `true` is
    /// returned; on failure the shape is left unchanged (the pseudo-code's
    /// "undo extension").
    fn try_extend(&mut self, a: &Point<D>, b: &Point<D>, eps: f64, metric: Metric) -> bool;
}

/// The paper's group shape: a minimum bounding hyper-rectangle whose
/// metric diameter (Euclidean: main diagonal) must stay within ε.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MbrShape<const D: usize>(pub Mbr<D>);

impl<const D: usize> GroupShape<D> for MbrShape<D> {
    fn from_pair(a: &Point<D>, b: &Point<D>) -> Self {
        MbrShape(Mbr::from_corners(a, b))
    }

    fn from_mbr(mbr: &Mbr<D>, _metric: Metric) -> Self {
        MbrShape(*mbr)
    }

    fn diameter(&self, metric: Metric) -> f64 {
        metric.mbr_diameter(&self.0)
    }

    fn try_extend(&mut self, a: &Point<D>, b: &Point<D>, eps: f64, metric: Metric) -> bool {
        let mut grown = self.0;
        grown.expand_to_point(a);
        grown.expand_to_point(b);
        // Hot path of every CSJ merge attempt: the ε²-compare skips the
        // sqrt of the full diameter norm.
        if metric.mbr_diameter_within(&grown, eps) {
            self.0 = grown;
            true
        } else {
            false
        }
    }
}

/// §V-A alternative: a bounding ball. Covers up to ~57% more area than a
/// rectangle of the same diameter in 2-D, but the incremental center
/// updates (Ritter steps) are approximate, so merge acceptance differs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BallShape<const D: usize>(pub Sphere<D>);

impl<const D: usize> GroupShape<D> for BallShape<D> {
    fn from_pair(a: &Point<D>, b: &Point<D>) -> Self {
        // Midpoint center is exact for L2 and valid (covering) for the
        // other metrics after the radius check below.
        let center = a.midpoint(b);
        BallShape(Sphere::new(center, 0.0))
    }

    fn from_mbr(mbr: &Mbr<D>, metric: Metric) -> Self {
        BallShape(Sphere::new(mbr.center(), 0.5 * metric.mbr_diameter(mbr)))
    }

    fn diameter(&self, _metric: Metric) -> f64 {
        self.0.diameter()
    }

    fn try_extend(&mut self, a: &Point<D>, b: &Point<D>, eps: f64, metric: Metric) -> bool {
        let mut grown = self.0;
        grown.expand_to_point(a, metric);
        grown.expand_to_point(b, metric);
        if grown.diameter() <= eps {
            self.0 = grown;
            true
        } else {
            false
        }
    }
}

/// An output group still open for CSJ merging.
///
/// Members are kept as a raw push log (consecutive duplicates skipped);
/// [`OpenGroup::into_sorted_members`] deduplicates at emission time. This
/// keeps the per-link merge cost to a couple of comparisons instead of a
/// hash insert — the merge loop is the hottest path of CSJ(g).
#[derive(Clone, Debug)]
pub struct OpenGroup<S, const D: usize> {
    /// Member record ids as pushed (may contain non-consecutive repeats).
    pub members: Vec<RecordId>,
    /// Current bounding shape.
    pub shape: S,
}

impl<S: GroupShape<D>, const D: usize> OpenGroup<S, D> {
    /// Opens a group from a single qualifying link.
    pub fn from_link(
        a: RecordId,
        pa: &Point<D>,
        b: RecordId,
        pb: &Point<D>,
        metric: Metric,
    ) -> Self {
        let mut shape = S::from_pair(pa, pb);
        // from_pair may produce a degenerate shape (e.g. a zero-radius
        // ball at the midpoint); extend covers both endpoints exactly.
        let grew = shape.try_extend(pa, pb, f64::INFINITY, metric);
        debug_assert!(grew);
        let mut g = OpenGroup { members: Vec::with_capacity(2), shape };
        g.add_member(a);
        g.add_member(b);
        g
    }

    /// Opens a group for a whole subtree (the early-stopping rule).
    pub fn from_subtree(members: Vec<RecordId>, mbr: &Mbr<D>, metric: Metric) -> Self {
        debug_assert!(!members.is_empty());
        OpenGroup { members, shape: S::from_mbr(mbr, metric) }
    }

    fn add_member(&mut self, id: RecordId) {
        // Skip the common case of the same endpoint recurring across
        // consecutive links (nested leaf loops); full deduplication
        // happens once, at emission.
        if self.members.last() != Some(&id) {
            self.members.push(id);
        }
    }

    /// The pseudo-code's merge step: try to extend the shape to cover the
    /// link; on success add both endpoints as members.
    pub fn try_merge(
        &mut self,
        a: RecordId,
        pa: &Point<D>,
        b: RecordId,
        pb: &Point<D>,
        eps: f64,
        metric: Metric,
    ) -> bool {
        if self.shape.try_extend(pa, pb, eps, metric) {
            self.add_member(a);
            self.add_member(b);
            true
        } else {
            false
        }
    }

    /// Number of member entries pushed so far (counts repeats; use
    /// [`OpenGroup::into_sorted_members`] for the true member set).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the group has no members (never happens for constructed
    /// groups; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Finalizes the group: the member set, sorted and deduplicated.
    pub fn into_sorted_members(self) -> Vec<RecordId> {
        let mut m = self.members;
        m.sort_unstable();
        m.dedup();
        m
    }
}

/// The `g` most recent groups, as a FIFO ring. Pushing beyond capacity
/// evicts (returns) the oldest group, which is then final and can be
/// emitted — groups outside the window can never change again.
#[derive(Debug)]
pub struct GroupWindow<S, const D: usize> {
    ring: VecDeque<OpenGroup<S, D>>,
    capacity: usize,
}

impl<S: GroupShape<D>, const D: usize> GroupWindow<S, D> {
    /// A window considering the `capacity` most recent groups.
    pub fn new(capacity: usize) -> Self {
        GroupWindow { ring: VecDeque::with_capacity(capacity.min(1024)), capacity }
    }

    /// Number of currently open groups.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if no groups are open.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Tries to merge a link into the open groups, newest first. Returns
    /// `true` on success and reports the number of attempts via
    /// `attempts`.
    #[allow(clippy::too_many_arguments)] // mirrors the pseudo-code's signature
    pub fn try_merge_link(
        &mut self,
        a: RecordId,
        pa: &Point<D>,
        b: RecordId,
        pb: &Point<D>,
        eps: f64,
        metric: Metric,
        attempts: &mut u64,
    ) -> bool {
        for group in self.ring.iter_mut().rev() {
            *attempts += 1;
            if group.try_merge(a, pa, b, pb, eps, metric) {
                return true;
            }
        }
        false
    }

    /// Pushes a freshly opened group; returns the evicted (now final)
    /// group if the window overflowed. With capacity 0 the pushed group
    /// itself is returned immediately.
    #[must_use]
    pub fn push(&mut self, group: OpenGroup<S, D>) -> Option<OpenGroup<S, D>> {
        if self.capacity == 0 {
            return Some(group);
        }
        self.ring.push_back(group);
        if self.ring.len() > self.capacity {
            self.ring.pop_front()
        } else {
            None
        }
    }

    /// Closes the window, yielding all remaining groups oldest-first.
    pub fn drain(&mut self) -> impl Iterator<Item = OpenGroup<S, D>> + '_ {
        self.ring.drain(..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L2: Metric = Metric::Euclidean;

    fn p(x: f64, y: f64) -> Point<2> {
        Point::new([x, y])
    }

    #[test]
    fn mbr_shape_pair_and_diameter() {
        let s = <MbrShape<2> as GroupShape<2>>::from_pair(&p(0.0, 0.0), &p(3.0, 4.0));
        assert_eq!(s.diameter(L2), 5.0);
    }

    #[test]
    fn mbr_shape_extend_respects_eps() {
        let mut s = <MbrShape<2> as GroupShape<2>>::from_pair(&p(0.0, 0.0), &p(0.3, 0.0));
        assert!(s.try_extend(&p(0.5, 0.0), &p(0.6, 0.0), 1.0, L2));
        assert_eq!(s.diameter(L2), 0.6);
        // Refusal leaves the shape unchanged.
        let before = s;
        assert!(!s.try_extend(&p(2.0, 0.0), &p(0.0, 0.0), 1.0, L2));
        assert_eq!(s, before);
    }

    #[test]
    fn ball_shape_covers_link_endpoints() {
        let a = p(0.0, 0.0);
        let b = p(0.6, 0.8); // distance 1.0
        let g: OpenGroup<BallShape<2>, 2> = OpenGroup::from_link(1, &a, 2, &b, L2);
        assert!(g.shape.0.contains_point(&a, L2));
        assert!(g.shape.0.contains_point(&b, L2));
        assert!((g.shape.diameter(L2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn open_group_deduplicates_members() {
        let mut g: OpenGroup<MbrShape<2>, 2> =
            OpenGroup::from_link(1, &p(0.0, 0.0), 2, &p(0.1, 0.0), L2);
        assert!(g.try_merge(2, &p(0.1, 0.0), 3, &p(0.2, 0.0), 1.0, L2));
        // Consecutive repeat of 2 is skipped at push time …
        assert_eq!(g.members, vec![1, 2, 3]);
        // … and any remaining repeats vanish at emission.
        assert!(g.clone().try_merge(1, &p(0.0, 0.0), 2, &p(0.1, 0.0), 1.0, L2));
        let mut g2 = g.clone();
        assert!(g2.try_merge(1, &p(0.0, 0.0), 2, &p(0.1, 0.0), 1.0, L2));
        assert_eq!(g2.into_sorted_members(), vec![1, 2, 3]);
    }

    #[test]
    fn subtree_group_has_node_shape() {
        let mbr = Mbr::from_corners(&p(0.0, 0.0), &p(0.3, 0.4));
        let g: OpenGroup<MbrShape<2>, 2> = OpenGroup::from_subtree(vec![5, 6, 7], &mbr, L2);
        assert_eq!(g.members, vec![5, 6, 7]);
        assert_eq!(g.shape.diameter(L2), 0.5);
    }

    #[test]
    fn window_eviction_fifo() {
        let mut w: GroupWindow<MbrShape<2>, 2> = GroupWindow::new(2);
        let g1 = OpenGroup::from_link(1, &p(0.0, 0.0), 2, &p(0.01, 0.0), L2);
        let g2 = OpenGroup::from_link(3, &p(1.0, 0.0), 4, &p(1.01, 0.0), L2);
        let g3 = OpenGroup::from_link(5, &p(2.0, 0.0), 6, &p(2.01, 0.0), L2);
        assert!(w.push(g1).is_none());
        assert!(w.push(g2).is_none());
        let evicted = w.push(g3).expect("window overflow evicts oldest");
        assert_eq!(evicted.into_sorted_members(), vec![1, 2]);
        assert_eq!(w.len(), 2);
        let rest: Vec<Vec<u32>> = w.drain().map(|g| g.into_sorted_members()).collect();
        assert_eq!(rest, vec![vec![3, 4], vec![5, 6]]);
    }

    #[test]
    fn window_capacity_zero_bounces_groups() {
        let mut w: GroupWindow<MbrShape<2>, 2> = GroupWindow::new(0);
        let g = OpenGroup::from_link(1, &p(0.0, 0.0), 2, &p(0.01, 0.0), L2);
        let bounced = w.push(g).expect("capacity 0 returns the group");
        assert_eq!(bounced.into_sorted_members(), vec![1, 2]);
        assert!(w.is_empty());
    }

    #[test]
    fn merge_prefers_newest_group() {
        let mut w: GroupWindow<MbrShape<2>, 2> = GroupWindow::new(5);
        // Two groups both able to absorb the link; newest must win.
        let _ = w.push(OpenGroup::from_link(1, &p(0.0, 0.0), 2, &p(0.02, 0.0), L2));
        let _ = w.push(OpenGroup::from_link(3, &p(0.05, 0.0), 4, &p(0.07, 0.0), L2));
        let mut attempts = 0;
        let ok = w.try_merge_link(8, &p(0.04, 0.0), 9, &p(0.06, 0.0), 0.1, L2, &mut attempts);
        assert!(ok);
        assert_eq!(attempts, 1, "newest group tried first and accepted");
        let groups: Vec<Vec<u32>> = w.drain().map(|g| g.into_sorted_members()).collect();
        assert_eq!(groups, vec![vec![1, 2], vec![3, 4, 8, 9]]);
    }

    #[test]
    fn merge_fails_when_no_group_fits() {
        let mut w: GroupWindow<MbrShape<2>, 2> = GroupWindow::new(5);
        let _ = w.push(OpenGroup::from_link(1, &p(0.0, 0.0), 2, &p(0.02, 0.0), L2));
        let mut attempts = 0;
        let ok = w.try_merge_link(8, &p(5.0, 0.0), 9, &p(5.01, 0.0), 0.1, L2, &mut attempts);
        assert!(!ok);
        assert_eq!(attempts, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// After any merge sequence, an MBR group's diameter never exceeds
        /// ε and every member link endpoint stays covered — the invariant
        /// behind Theorem 2.
        #[test]
        fn mbr_group_invariant(
            links in prop::collection::vec(
                (prop::array::uniform2(0.0f64..1.0), prop::array::uniform2(0.0f64..1.0)),
                1..60
            ),
            eps in 0.05f64..0.8,
        ) {
            let metric = Metric::Euclidean;
            let mut covered: Vec<Point<2>> = Vec::new();
            let mut group: Option<OpenGroup<MbrShape<2>, 2>> = None;
            for (i, (a, b)) in links.iter().enumerate() {
                let (pa, pb) = (Point::new(*a), Point::new(*b));
                if metric.distance(&pa, &pb) > eps {
                    continue; // not a link
                }
                match &mut group {
                    None => {
                        let g: OpenGroup<MbrShape<2>, 2> = OpenGroup::from_link(2 * i as u32, &pa, 2 * i as u32 + 1, &pb, metric);
                        if g.shape.diameter(metric) <= eps {
                            covered.push(pa);
                            covered.push(pb);
                            group = Some(g);
                        }
                    }
                    Some(g) => {
                        if g.try_merge(2 * i as u32, &pa, 2 * i as u32 + 1, &pb, eps, metric) {
                            covered.push(pa);
                            covered.push(pb);
                        }
                    }
                }
                if let Some(g) = &group {
                    prop_assert!(g.shape.diameter(metric) <= eps + 1e-9);
                    for p in &covered {
                        prop_assert!(g.shape.0.contains_point(p));
                    }
                    // Diameter <= eps really does bound all pairs.
                    for x in &covered {
                        for y in &covered {
                            prop_assert!(metric.distance(x, y) <= eps + 1e-9);
                        }
                    }
                }
            }
        }
    }
}
