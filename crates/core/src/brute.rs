//! The `O(n²)` reference join — ground truth for every lossless-ness test.

use std::collections::BTreeSet;

use csj_geom::{Metric, Point, RecordId};

/// All pairs `(i, j)` with `i < j` and `‖points[i] − points[j]‖ ≤ eps`
/// under the Euclidean metric. Record ids are slice indexes.
pub fn brute_force_links<const D: usize>(
    points: &[Point<D>],
    eps: f64,
) -> BTreeSet<(RecordId, RecordId)> {
    brute_force_links_metric(points, eps, Metric::Euclidean)
}

/// [`brute_force_links`] under an arbitrary metric.
pub fn brute_force_links_metric<const D: usize>(
    points: &[Point<D>],
    eps: f64,
    metric: Metric,
) -> BTreeSet<(RecordId, RecordId)> {
    let mut set = BTreeSet::new();
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            if metric.within(&points[i], &points[j], eps) {
                set.insert((i as RecordId, j as RecordId));
            }
        }
    }
    set
}

/// The cross-join reference for spatial (two-dataset) joins: all pairs
/// `(i, j)` with `‖left[i] − right[j]‖ ≤ eps`.
pub fn brute_force_cross_links<const D: usize>(
    left: &[Point<D>],
    right: &[Point<D>],
    eps: f64,
    metric: Metric,
) -> BTreeSet<(RecordId, RecordId)> {
    let mut set = BTreeSet::new();
    for (i, p) in left.iter().enumerate() {
        for (j, q) in right.iter().enumerate() {
            if metric.within(p, q, eps) {
                set.insert((i as RecordId, j as RecordId));
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_line_example_from_paper() {
        // §III Figure 2: points 1..5 on a line, eps = 3 → 9 links.
        let pts: Vec<Point<1>> = (1..=5).map(|i| Point::new([i as f64])).collect();
        let links = brute_force_links(&pts, 3.0);
        assert_eq!(links.len(), 9);
        assert!(links.contains(&(0, 3)), "1-4 qualifies");
        assert!(!links.contains(&(0, 4)), "1-5 is at distance 4");
    }

    #[test]
    fn boundary_is_inclusive() {
        let pts = vec![Point::new([0.0, 0.0]), Point::new([1.0, 0.0])];
        assert_eq!(brute_force_links(&pts, 1.0).len(), 1);
        assert_eq!(brute_force_links(&pts, 0.999).len(), 0);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(brute_force_links::<2>(&[], 1.0).is_empty());
        assert!(brute_force_links(&[Point::new([0.0, 0.0])], 1.0).is_empty());
    }

    #[test]
    fn metric_variant() {
        let pts = vec![Point::new([0.0, 0.0]), Point::new([0.6, 0.6])];
        assert_eq!(brute_force_links_metric(&pts, 0.7, Metric::Chebyshev).len(), 1);
        assert_eq!(brute_force_links_metric(&pts, 0.7, Metric::Manhattan).len(), 0);
    }

    #[test]
    fn cross_links() {
        let left = vec![Point::new([0.0, 0.0]), Point::new([5.0, 5.0])];
        let right = vec![Point::new([0.1, 0.0]), Point::new([5.0, 5.05])];
        let links = brute_force_cross_links(&left, &right, 0.2, Metric::Euclidean);
        assert_eq!(links.into_iter().collect::<Vec<_>>(), vec![(0, 0), (1, 1)]);
    }
}
