//! SSJ — the standard similarity join (§IV-A).
//!
//! The paper's baseline: a recursive tree join that prunes node pairs by
//! MINDIST and enumerates every qualifying link individually. Output size
//! does not depend on the tree; runtime does (through the tree's shape).

use csj_index::JoinIndex;
use csj_storage::{OutputSink, OutputWriter};

use crate::engine::{run_collecting, run_streaming, DirectEmit};
use crate::error::CsjError;
use crate::output::JoinOutput;
use crate::stats::JoinStats;
use crate::JoinConfig;

/// The standard similarity self-join.
///
/// ```
/// use csj_core::ssj::SsjJoin;
/// use csj_geom::Point;
/// use csj_index::{rstar::RStarTree, RTreeConfig};
///
/// let pts = vec![
///     Point::new([0.0, 0.0]),
///     Point::new([0.05, 0.0]),
///     Point::new([0.9, 0.9]),
/// ];
/// let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(4));
/// let out = SsjJoin::new(0.1).run(&tree);
/// assert_eq!(out.num_links(), 1); // only (0, 1) qualifies
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SsjJoin {
    cfg: JoinConfig,
}

impl SsjJoin {
    /// An SSJ with range `epsilon` and default configuration.
    pub fn new(epsilon: f64) -> Self {
        SsjJoin { cfg: JoinConfig::new(epsilon) }
    }

    /// An SSJ from an explicit configuration.
    pub fn with_config(cfg: JoinConfig) -> Self {
        SsjJoin { cfg }
    }

    /// Replaces the metric.
    pub fn with_metric(mut self, metric: csj_geom::Metric) -> Self {
        self.cfg.metric = metric;
        self
    }

    /// Enables node-access logging.
    pub fn with_access_log(mut self) -> Self {
        self.cfg.record_access_log = true;
        self
    }

    /// Enables the plane-sweep access ordering (Brinkhoff et al. \[1\]).
    pub fn with_plane_sweep(mut self) -> Self {
        self.cfg.plane_sweep = true;
        self
    }

    /// The configuration this join runs with.
    pub fn config(&self) -> &JoinConfig {
        &self.cfg
    }

    /// Runs the join, collecting all links in memory.
    pub fn run<T: JoinIndex<D>, const D: usize>(&self, tree: &T) -> JoinOutput {
        run_collecting(tree, self.cfg, false, DirectEmit)
    }

    /// Runs the join, streaming links into `writer` (constant memory).
    /// A sink failure surfaces as `Err`; rows already written remain
    /// valid join output.
    ///
    /// # Errors
    /// Returns [`CsjError::Storage`] when the sink rejects a write.
    pub fn run_streaming<T: JoinIndex<D>, S: OutputSink, const D: usize>(
        &self,
        tree: &T,
        writer: &mut OutputWriter<S>,
    ) -> Result<JoinStats, CsjError> {
        run_streaming(tree, self.cfg, false, DirectEmit, writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_links;
    use csj_geom::{Metric, Point};
    use csj_index::{rstar::RStarTree, rtree::RTree, RTreeConfig};
    use csj_storage::CountingSink;

    fn cluster_points() -> Vec<Point<2>> {
        // Three clusters of 8 plus a few isolated points.
        let mut pts = Vec::new();
        for (cx, cy) in [(0.1, 0.1), (0.5, 0.6), (0.85, 0.2)] {
            for i in 0..8 {
                let dx = (i % 3) as f64 * 0.01;
                let dy = (i / 3) as f64 * 0.01;
                pts.push(Point::new([cx + dx, cy + dy]));
            }
        }
        pts.push(Point::new([0.99, 0.99]));
        pts.push(Point::new([0.0, 0.95]));
        pts
    }

    #[test]
    fn matches_brute_force() {
        let pts = cluster_points();
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(4));
        for eps in [0.0, 0.01, 0.05, 0.2, 0.7, 2.0] {
            let out = SsjJoin::new(eps).run(&tree);
            assert_eq!(out.expanded_link_set(), brute_force_links(&pts, eps), "eps={eps}");
            assert_eq!(out.num_groups(), 0, "SSJ never emits groups");
        }
    }

    #[test]
    fn no_duplicate_links() {
        let pts = cluster_points();
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(4));
        let out = SsjJoin::new(0.3).run(&tree);
        let expanded = out.expanded_link_set();
        assert_eq!(out.num_links(), expanded.len(), "each link emitted exactly once");
    }

    #[test]
    fn empty_tree() {
        let tree = RStarTree::<2>::new(RTreeConfig::default());
        let out = SsjJoin::new(0.5).run(&tree);
        assert!(out.items.is_empty());
        assert_eq!(out.stats.node_visits, 0);
    }

    #[test]
    fn streaming_matches_collected_bytes() {
        let pts = cluster_points();
        let tree = RTree::from_points(&pts, RTreeConfig::with_max_fanout(5));
        let join = SsjJoin::new(0.25);
        let collected = join.run(&tree);
        let mut writer = OutputWriter::new(CountingSink::new(), 4);
        let stats = join.run_streaming(&tree, &mut writer).expect("counting sink cannot fail");
        assert_eq!(collected.total_bytes(4), writer.bytes_written());
        assert_eq!(collected.stats.links_emitted, stats.links_emitted);
        assert_eq!(collected.stats.distance_computations, stats.distance_computations);
    }

    #[test]
    fn pruning_reduces_distance_computations() {
        let pts = cluster_points();
        let n = pts.len() as u64;
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(4));
        let out = SsjJoin::new(0.02).run(&tree);
        assert!(
            out.stats.distance_computations < n * (n - 1) / 2,
            "tree join must beat brute force on clustered data: {} comparisons",
            out.stats.distance_computations
        );
        assert!(out.stats.pairs_pruned > 0);
    }

    #[test]
    fn access_log_recorded_when_enabled() {
        let pts = cluster_points();
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(4));
        let out = SsjJoin::new(0.1).with_access_log().run(&tree);
        let log = out.stats.access_log.as_ref().expect("log armed");
        assert!(!log.is_empty());
        let without = SsjJoin::new(0.1).run(&tree);
        assert!(without.stats.access_log.is_none());
    }

    #[test]
    fn chebyshev_metric_join() {
        let pts = cluster_points();
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(4));
        let metric = Metric::Chebyshev;
        let out = SsjJoin::new(0.1).with_metric(metric).run(&tree);
        let mut want = std::collections::BTreeSet::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if metric.distance(&pts[i], &pts[j]) <= 0.1 {
                    want.insert((i as u32, j as u32));
                }
            }
        }
        assert_eq!(out.expanded_link_set(), want);
    }
}
