//! Join output: links and groups, expansion, byte accounting.

use std::collections::BTreeSet;

use csj_geom::RecordId;
use csj_storage::{OutputSink, OutputWriter, StorageError};

use crate::budget::Completion;
use crate::stats::JoinStats;

/// One output row: an individual link or a group of mutually-qualifying
/// records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OutputItem {
    /// A single qualifying pair.
    Link(RecordId, RecordId),
    /// `k` records all within ε of each other, encoding `k·(k−1)/2` links.
    Group(Vec<RecordId>),
}

impl OutputItem {
    /// Number of links this row implies.
    pub fn implied_links(&self) -> u64 {
        match self {
            OutputItem::Link(..) => 1,
            OutputItem::Group(ids) => {
                let k = ids.len() as u64;
                k * (k - 1) / 2
            }
        }
    }

    /// Bytes this row occupies in the paper's text format with the given
    /// id width: each id is `width` bytes, ids are space-separated, the
    /// line ends in `\n` — so a row of `k` ids is `k·width + k` bytes.
    /// Assumes every id fits in `width` digits (use
    /// [`csj_storage::OutputWriter::id_width_for`]).
    pub fn format_bytes(&self, width: usize) -> u64 {
        let k = match self {
            OutputItem::Link(..) => 2,
            OutputItem::Group(ids) => ids.len(),
        };
        (k * width + k) as u64
    }
}

/// The collected result of a join run.
#[derive(Clone, Debug, Default)]
pub struct JoinOutput {
    /// Output rows in emission order.
    pub items: Vec<OutputItem>,
    /// Operation counters of the producing run.
    pub stats: JoinStats,
    /// Whether the run finished, or stopped early on a budget/cancel —
    /// in which case the rows are still lossless over the processed
    /// region and the variant carries extrapolated totals.
    pub completion: Completion,
}

impl JoinOutput {
    /// Number of individual link rows.
    pub fn num_links(&self) -> usize {
        self.items.iter().filter(|i| matches!(i, OutputItem::Link(..))).count()
    }

    /// Number of group rows.
    pub fn num_groups(&self) -> usize {
        self.items.iter().filter(|i| matches!(i, OutputItem::Group(_))).count()
    }

    /// Total links implied by the output, counting duplicates once per
    /// occurrence (the sum of [`OutputItem::implied_links`]).
    pub fn implied_links(&self) -> u64 {
        self.items.iter().map(OutputItem::implied_links).sum()
    }

    /// Output size in bytes in the paper's text format at the given id
    /// width — exactly what an [`OutputWriter`] would produce.
    pub fn total_bytes(&self, width: usize) -> u64 {
        self.items.iter().map(|i| i.format_bytes(width)).sum()
    }

    /// Expands the compact output back to the plain link set: every link,
    /// each normalized to `(min, max)`, deduplicated. This is the paper's
    /// "individual links can easily be recovered by expanding the
    /// returned groups", used by the lossless-ness checks.
    pub fn expanded_link_set(&self) -> BTreeSet<(RecordId, RecordId)> {
        let mut set = BTreeSet::new();
        for item in &self.items {
            match item {
                OutputItem::Link(a, b) => {
                    if a != b {
                        set.insert((*a.min(b), *a.max(b)));
                    }
                }
                OutputItem::Group(ids) => {
                    for i in 0..ids.len() {
                        for j in (i + 1)..ids.len() {
                            let (a, b) = (ids[i], ids[j]);
                            if a != b {
                                set.insert((a.min(b), a.max(b)));
                            }
                        }
                    }
                }
            }
        }
        set
    }

    /// Streams the rows into an [`OutputWriter`] (for file output or
    /// byte-exact re-measurement). Rows written before a sink failure
    /// remain valid output.
    ///
    /// # Errors
    /// Returns [`StorageError`] from the first failing sink write.
    pub fn write_to<S: OutputSink>(
        &self,
        writer: &mut OutputWriter<S>,
    ) -> Result<(), StorageError> {
        for item in &self.items {
            match item {
                OutputItem::Link(a, b) => writer.write_link(*a, *b)?,
                OutputItem::Group(ids) => writer.write_group(ids)?,
            }
        }
        Ok(())
    }

    /// Sizes of all group rows, descending — the view the outlier-mining
    /// application (§I) starts from.
    pub fn group_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self
            .items
            .iter()
            .filter_map(|i| match i {
                OutputItem::Group(ids) => Some(ids.len()),
                OutputItem::Link(..) => None,
            })
            .collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csj_storage::VecSink;

    #[test]
    fn implied_links_per_item() {
        assert_eq!(OutputItem::Link(1, 2).implied_links(), 1);
        assert_eq!(OutputItem::Group(vec![1, 2, 3, 4]).implied_links(), 6);
        assert_eq!(OutputItem::Group(vec![9]).implied_links(), 0);
    }

    #[test]
    fn format_bytes_matches_writer() {
        let items =
            [OutputItem::Link(1, 22), OutputItem::Group(vec![1, 2, 3]), OutputItem::Group(vec![7])];
        for width in [2usize, 4, 7] {
            let out = JoinOutput {
                items: items.to_vec(),
                stats: JoinStats::default(),
                ..Default::default()
            };
            let mut w = OutputWriter::new(VecSink::new(), width);
            out.write_to(&mut w).unwrap();
            assert_eq!(out.total_bytes(width), w.bytes_written(), "width {width}");
        }
    }

    #[test]
    fn paper_figure1_example_counts() {
        // Figure 1: 8 links reduced to 3 groups ({1,2,3,4}, {4,5}, {6,7}),
        // a 50% savings in rows.
        let compact = JoinOutput {
            items: vec![
                OutputItem::Group(vec![1, 2, 3, 4]),
                OutputItem::Group(vec![4, 5]),
                OutputItem::Group(vec![6, 7]),
            ],
            stats: JoinStats::default(),
            ..Default::default()
        };
        assert_eq!(compact.num_groups(), 3);
        assert_eq!(compact.expanded_link_set().len(), 8);
    }

    #[test]
    fn expansion_dedups_overlapping_groups() {
        // Figure 2: groups {1,2,3,4}, {2,5}, {3,4,5} over the integer line
        // with eps = 3 expand to exactly the 9 standard-join links.
        let out = JoinOutput {
            items: vec![
                OutputItem::Group(vec![1, 2, 3, 4]),
                OutputItem::Group(vec![2, 5]),
                OutputItem::Group(vec![3, 4, 5]),
            ],
            stats: JoinStats::default(),
            ..Default::default()
        };
        let set = out.expanded_link_set();
        assert_eq!(set.len(), 9);
        for a in 1u32..=5 {
            for b in (a + 1)..=5 {
                assert_eq!(set.contains(&(a, b)), b - a <= 3, "pair ({a},{b})");
            }
        }
        // Implied links count duplicates: 6 + 1 + 3 = 10 > 9.
        assert_eq!(out.implied_links(), 10);
    }

    #[test]
    fn expansion_normalizes_and_ignores_self_pairs() {
        let out = JoinOutput {
            items: vec![OutputItem::Link(5, 3), OutputItem::Link(3, 5), OutputItem::Link(4, 4)],
            stats: JoinStats::default(),
            ..Default::default()
        };
        let set = out.expanded_link_set();
        assert_eq!(set.into_iter().collect::<Vec<_>>(), vec![(3, 5)]);
    }

    #[test]
    fn group_sizes_sorted_descending() {
        let out = JoinOutput {
            items: vec![
                OutputItem::Group(vec![1, 2]),
                OutputItem::Link(8, 9),
                OutputItem::Group(vec![3, 4, 5, 6]),
                OutputItem::Group(vec![7, 8, 9]),
            ],
            stats: JoinStats::default(),
            ..Default::default()
        };
        assert_eq!(out.group_sizes(), vec![4, 3, 2]);
    }
}
