//! Resource budgets, cooperative cancellation and partial completion.
//!
//! In the paper's §VI several SSJ data points are *estimates* (the
//! filled markers of Figures 5 and 7): the run crashed once the output
//! outgrew free disk space, and the totals were extrapolated from the
//! completed fraction. This module turns that crash into a recoverable
//! runtime state: a [`RunBudget`] caps links, resident groups/bytes and
//! wall-clock time; when a limit is hit the join *finishes the current
//! root-level task*, drains its group window (staying lossless over the
//! processed region) and reports [`Completion::Partial`] with the same
//! measured-over-fraction extrapolation the paper used. A
//! [`CancelToken`] gives callers the same graceful stop on demand.

use std::time::Duration;

use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::Arc;

/// Resource limits for a join run, checked at root-level task
/// boundaries. The default is unlimited.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunBudget {
    /// Stop once this many links (individual rows plus links implied by
    /// emitted groups) have been produced.
    pub max_links: Option<u64>,
    /// Stop once this many group rows have been emitted.
    pub max_groups: Option<u64>,
    /// Stop once the formatted output exceeds this many bytes.
    pub max_bytes: Option<u64>,
    /// Stop once this much wall-clock time has elapsed.
    pub deadline: Option<Duration>,
}

impl RunBudget {
    /// No limits: the join always runs to completion.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps produced links (emitted + implied by groups).
    pub fn with_max_links(mut self, n: u64) -> Self {
        self.max_links = Some(n);
        self
    }

    /// Caps emitted group rows.
    pub fn with_max_groups(mut self, n: u64) -> Self {
        self.max_groups = Some(n);
        self
    }

    /// Caps formatted output bytes.
    pub fn with_max_bytes(mut self, n: u64) -> Self {
        self.max_bytes = Some(n);
        self
    }

    /// Caps wall-clock time.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// `true` when no limit is set (the common fast path).
    pub fn is_unlimited(&self) -> bool {
        *self == Self::default()
    }

    /// First limit `usage` violates, if any. `elapsed` is the run's
    /// wall-clock age.
    pub fn exceeded_by(&self, usage: &BudgetUsage, elapsed: Duration) -> Option<StopReason> {
        if self.max_links.is_some_and(|cap| usage.links >= cap) {
            return Some(StopReason::LinkBudget);
        }
        if self.max_groups.is_some_and(|cap| usage.groups >= cap) {
            return Some(StopReason::GroupBudget);
        }
        if self.max_bytes.is_some_and(|cap| usage.bytes >= cap) {
            return Some(StopReason::ByteBudget);
        }
        if self.deadline.is_some_and(|cap| elapsed >= cap) {
            return Some(StopReason::Deadline);
        }
        None
    }
}

/// Resources consumed so far, as seen at a task boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BudgetUsage {
    /// Links produced: emitted individually plus implied by groups.
    pub links: u64,
    /// Group rows emitted.
    pub groups: u64,
    /// Formatted output bytes produced.
    pub bytes: u64,
}

/// Why a run stopped before completing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The link budget was exhausted.
    LinkBudget,
    /// The group budget was exhausted.
    GroupBudget,
    /// The output-byte budget was exhausted.
    ByteBudget,
    /// The wall-clock deadline passed.
    Deadline,
    /// A [`CancelToken`] was triggered.
    Canceled,
    /// One or more shards of a sharded run failed beyond their retry
    /// budget; the surviving shards' output was merged.
    ShardsLost,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::LinkBudget => write!(f, "link budget exhausted"),
            StopReason::GroupBudget => write!(f, "group budget exhausted"),
            StopReason::ByteBudget => write!(f, "output byte budget exhausted"),
            StopReason::Deadline => write!(f, "deadline passed"),
            StopReason::Canceled => write!(f, "canceled"),
            StopReason::ShardsLost => write!(f, "shards lost beyond retry budget"),
        }
    }
}

/// A cooperative cancellation flag, cheap to clone and share across
/// threads. The join checks it between recursion steps, so a cancel
/// takes effect promptly and the caller still receives the lossless
/// output produced so far.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-triggered token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; idempotent, callable from any thread.
    pub fn cancel(&self) {
        // ORDERING: a single advisory flag with no dependent data — the
        // join polls it at checkpoints, and "promptly" is the only
        // delivery guarantee, so relaxed visibility latency is fine.
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    pub fn is_canceled(&self) -> bool {
        // ORDERING: as `cancel` — nothing is published through the flag.
        self.flag.load(Ordering::Relaxed)
    }
}

/// Whether a run finished, and if not, how far it got.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Completion {
    /// The run finished: the output is the exact join result.
    #[default]
    Complete,
    /// The run stopped early. The output is still *lossless over the
    /// processed region* (every row is a true link / valid ≤ ε group);
    /// totals are extrapolated the way the paper extrapolates its
    /// crashed-run estimates.
    Partial {
        /// What stopped the run.
        reason: StopReason,
        /// Fraction of root-level tasks completed, in `[0, 1]`.
        completed_fraction: f64,
        /// Extrapolated total link count (`measured / fraction`); 0.0
        /// when nothing was measured.
        estimated_links: f64,
        /// Extrapolated total output bytes; 0.0 when nothing measured.
        estimated_bytes: f64,
    },
}

impl Completion {
    /// `true` for a finished run.
    pub fn is_complete(&self) -> bool {
        matches!(self, Completion::Complete)
    }

    /// The stop reason of a partial run.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match self {
            Completion::Complete => None,
            Completion::Partial { reason, .. } => Some(*reason),
        }
    }

    /// The completed fraction: 1.0 for a finished run.
    pub fn completed_fraction(&self) -> f64 {
        match self {
            Completion::Complete => 1.0,
            Completion::Partial { completed_fraction, .. } => *completed_fraction,
        }
    }

    /// Builds a `Partial` with the paper's measured-over-fraction
    /// extrapolation (0.0 estimates when the fraction is zero).
    pub fn partial(reason: StopReason, fraction: f64, links: u64, bytes: u64) -> Self {
        let fraction = fraction.clamp(0.0, 1.0);
        let scale = |v: u64| if fraction > 0.0 { v as f64 / fraction } else { 0.0 };
        Completion::Partial {
            reason,
            completed_fraction: fraction,
            estimated_links: scale(links),
            estimated_bytes: scale(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_stops() {
        let usage = BudgetUsage { links: u64::MAX, groups: u64::MAX, bytes: u64::MAX };
        assert_eq!(RunBudget::unlimited().exceeded_by(&usage, Duration::from_secs(86_400)), None);
        assert!(RunBudget::unlimited().is_unlimited());
    }

    #[test]
    fn limits_trip_in_priority_order() {
        let b = RunBudget::unlimited().with_max_links(100).with_max_groups(5);
        let none = BudgetUsage { links: 99, groups: 4, bytes: 0 };
        assert_eq!(b.exceeded_by(&none, Duration::ZERO), None);
        let links = BudgetUsage { links: 100, groups: 9, bytes: 0 };
        assert_eq!(b.exceeded_by(&links, Duration::ZERO), Some(StopReason::LinkBudget));
        let groups = BudgetUsage { links: 0, groups: 5, bytes: 0 };
        assert_eq!(b.exceeded_by(&groups, Duration::ZERO), Some(StopReason::GroupBudget));
    }

    #[test]
    fn deadline_uses_elapsed_time() {
        let b = RunBudget::unlimited().with_deadline(Duration::from_millis(10));
        let usage = BudgetUsage::default();
        assert_eq!(b.exceeded_by(&usage, Duration::from_millis(9)), None);
        assert_eq!(b.exceeded_by(&usage, Duration::from_millis(10)), Some(StopReason::Deadline));
    }

    #[test]
    fn cancel_token_is_shared() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_canceled());
        t.cancel();
        assert!(clone.is_canceled());
    }

    #[test]
    fn partial_extrapolates_like_the_paper() {
        let c = Completion::partial(StopReason::LinkBudget, 0.25, 1000, 4000);
        match c {
            Completion::Partial {
                estimated_links, estimated_bytes, completed_fraction, ..
            } => {
                assert_eq!(completed_fraction, 0.25);
                assert_eq!(estimated_links, 4000.0);
                assert_eq!(estimated_bytes, 16000.0);
            }
            Completion::Complete => panic!("expected partial"),
        }
        // Zero fraction: no division by zero, estimates are 0.
        let c = Completion::partial(StopReason::Canceled, 0.0, 0, 0);
        assert_eq!(c.completed_fraction(), 0.0);
    }
}
