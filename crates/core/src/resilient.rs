//! The fault-tolerant join runner.
//!
//! [`ResilientJoin`] wraps the Figure-3 engine with the full robustness
//! stack: a [`RunBudget`] checked at root-level task boundaries, a
//! cooperative [`CancelToken`], and a [`StorageProbe`] that escalates
//! unrecoverable page-I/O errors (transient faults are absorbed by the
//! storage layer's retries and only *counted*, in
//! [`JoinStats::io_retries`]).
//!
//! The degradation contract mirrors §VI of the paper, where SSJ runs
//! that outgrew free disk were *crashed* and their totals extrapolated
//! from the completed fraction (the filled markers of Figures 5 and 7).
//! Here the same situation is a recoverable runtime state: when a limit
//! trips, the runner finishes the task it is on, drains the CSJ group
//! window (so the output stays lossless over the processed region) and
//! returns a [`JoinOutput`] whose [`Completion::Partial`] carries the
//! stop reason, the completed fraction and the paper-style
//! measured-over-fraction estimates.
//!
//! ```
//! use csj_core::parallel::ParallelAlgo;
//! use csj_core::{ResilientJoin, RunBudget};
//! use csj_geom::Point;
//! use csj_index::{rstar::RStarTree, RTreeConfig};
//!
//! let pts: Vec<Point<2>> = (0..900)
//!     .map(|i| Point::new([(i % 30) as f64 / 30.0, (i / 30) as f64 / 30.0]))
//!     .collect();
//! let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
//! let out = ResilientJoin::new(0.08, ParallelAlgo::Csj(10))
//!     .with_budget(RunBudget::unlimited().with_max_links(50))
//!     .run(&tree)
//!     .expect("in-memory run cannot fail");
//! assert!(!out.completion.is_complete());
//! assert!(out.completion.completed_fraction() > 0.0);
//! ```

use std::time::Instant;

use csj_index::{JoinIndex, NodeId};
use csj_storage::{OutputSink, OutputWriter};

use crate::budget::{BudgetUsage, CancelToken, Completion, RunBudget, StopReason};
use crate::engine::{
    CollectSink, DirectEmit, Engine, LinkHandler, RowSink, StreamSink, WindowedEmit,
};
use crate::error::CsjError;
use crate::group::MbrShape;
use crate::output::JoinOutput;
use crate::paged::{NoProbe, StorageProbe};
use crate::parallel::ParallelAlgo;
use crate::stats::JoinStats;
use crate::JoinConfig;

/// A budget-, cancel- and fault-aware sequential similarity self-join.
///
/// Unlike [`crate::parallel::ParallelJoin`], this runner keeps one engine
/// (and for CSJ one group window) across all tasks, so its output is
/// identical to the plain sequential join when nothing trips.
#[derive(Clone, Debug)]
pub struct ResilientJoin {
    cfg: JoinConfig,
    algo: ParallelAlgo,
    budget: RunBudget,
    cancel: Option<CancelToken>,
    id_width: usize,
}

enum Task {
    SelfJoin(NodeId),
    PairJoin(NodeId, NodeId),
}

/// What a resilient run reports alongside its rows.
#[derive(Clone, Debug)]
pub struct ResilientReport {
    /// Counters accumulated up to the stop (including
    /// [`JoinStats::io_retries`] absorbed by the storage layer).
    pub stats: JoinStats,
    /// Whether the run finished, or stopped early and on what.
    pub completion: Completion,
}

impl ResilientJoin {
    /// A resilient join with range `epsilon` running `algo`.
    pub fn new(epsilon: f64, algo: ParallelAlgo) -> Self {
        Self::with_config(JoinConfig::new(epsilon), algo)
    }

    /// A resilient join from an explicit configuration.
    pub fn with_config(cfg: JoinConfig, algo: ParallelAlgo) -> Self {
        ResilientJoin { cfg, algo, budget: RunBudget::unlimited(), cancel: None, id_width: 6 }
    }

    /// Applies a resource budget, checked after every root-level task.
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a cancellation token (checked inside tasks too, so a
    /// cancel stops the run within one recursion step).
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Replaces the metric.
    pub fn with_metric(mut self, metric: csj_geom::Metric) -> Self {
        self.cfg.metric = metric;
        self
    }

    /// Sets the id width used for byte-budget accounting (default 6).
    pub fn with_id_width(mut self, width: usize) -> Self {
        self.id_width = width.max(1);
        self
    }

    /// Runs the join over a plain in-memory tree, collecting rows.
    ///
    /// Storage cannot fail here, so the only early exits are the budget
    /// and the cancel token — both reported through
    /// [`JoinOutput::completion`], never as `Err`.
    ///
    /// # Errors
    /// Returns [`CsjError::InvalidConfig`] for an invalid configuration;
    /// storage errors cannot occur on the in-memory path.
    pub fn run<T: JoinIndex<D>, const D: usize>(&self, tree: &T) -> Result<JoinOutput, CsjError> {
        self.run_probed(tree, &NoProbe)
    }

    /// Runs the join over a tree whose storage health is observable
    /// through `probe` (e.g. a [`crate::paged::FaultPagedTree`], passed
    /// as both arguments).
    ///
    /// Transient faults absorbed by the storage layer's retries are added
    /// to [`JoinStats::io_retries`]; an *unrecoverable* storage error is
    /// escalated as `Err` at the next task boundary.
    ///
    /// # Errors
    /// Returns [`CsjError::Storage`] when the probe reports an
    /// unrecoverable storage failure, or [`CsjError::InvalidConfig`] for
    /// an invalid configuration.
    pub fn run_probed<T: JoinIndex<D>, P: StorageProbe, const D: usize>(
        &self,
        tree: &T,
        probe: &P,
    ) -> Result<JoinOutput, CsjError> {
        match self.algo {
            ParallelAlgo::Ssj => self.collect_with(tree, probe, false, DirectEmit),
            ParallelAlgo::Ncsj => self.collect_with(tree, probe, true, DirectEmit),
            ParallelAlgo::Csj(g) => self.collect_with(
                tree,
                probe,
                true,
                WindowedEmit::<MbrShape<D>, D>::new(g, self.cfg.epsilon, self.cfg.metric),
            ),
        }
    }

    /// Runs the join streaming rows into `writer` (constant memory).
    ///
    /// Sink failures (full disk, injected faults) surface as `Err`; rows
    /// already written remain valid output over the processed region.
    ///
    /// # Errors
    /// Returns [`CsjError::Storage`] when the sink rejects a write.
    pub fn run_streaming<T: JoinIndex<D>, S: OutputSink, const D: usize>(
        &self,
        tree: &T,
        writer: &mut OutputWriter<S>,
    ) -> Result<ResilientReport, CsjError> {
        self.run_streaming_probed(tree, &NoProbe, writer)
    }

    /// [`ResilientJoin::run_streaming`] with a storage probe on the tree
    /// side as well.
    ///
    /// # Errors
    /// Returns [`CsjError::Storage`] when the sink rejects a write or the
    /// probe reports an unrecoverable storage failure.
    pub fn run_streaming_probed<T, P, S, const D: usize>(
        &self,
        tree: &T,
        probe: &P,
        writer: &mut OutputWriter<S>,
    ) -> Result<ResilientReport, CsjError>
    where
        T: JoinIndex<D>,
        P: StorageProbe,
        S: OutputSink,
    {
        match self.algo {
            ParallelAlgo::Ssj => self.stream_with(tree, probe, false, DirectEmit, writer),
            ParallelAlgo::Ncsj => self.stream_with(tree, probe, true, DirectEmit, writer),
            ParallelAlgo::Csj(g) => self.stream_with(
                tree,
                probe,
                true,
                WindowedEmit::<MbrShape<D>, D>::new(g, self.cfg.epsilon, self.cfg.metric),
                writer,
            ),
        }
    }

    fn collect_with<T, P, H, const D: usize>(
        &self,
        tree: &T,
        probe: &P,
        early_stop: bool,
        handler: H,
    ) -> Result<JoinOutput, CsjError>
    where
        T: JoinIndex<D>,
        P: StorageProbe,
        H: LinkHandler<D>,
    {
        let (sink, stats, completion) =
            self.run_tasks(tree, probe, early_stop, handler, CollectSink::default())?;
        Ok(JoinOutput { items: sink.items, stats, completion })
    }

    fn stream_with<T, P, H, S, const D: usize>(
        &self,
        tree: &T,
        probe: &P,
        early_stop: bool,
        handler: H,
        writer: &mut OutputWriter<S>,
    ) -> Result<ResilientReport, CsjError>
    where
        T: JoinIndex<D>,
        P: StorageProbe,
        H: LinkHandler<D>,
        S: OutputSink,
    {
        let (_, stats, completion) =
            self.run_tasks(tree, probe, early_stop, handler, StreamSink::new(writer))?;
        Ok(ResilientReport { stats, completion })
    }

    /// The shared task loop: expand root-level tasks, run them through
    /// one engine, check cancel / storage / budget between tasks, drain
    /// the window on any stop.
    fn run_tasks<T, P, H, R, const D: usize>(
        &self,
        tree: &T,
        probe: &P,
        early_stop: bool,
        handler: H,
        sink: R,
    ) -> Result<(R, JoinStats, Completion), CsjError>
    where
        T: JoinIndex<D>,
        P: StorageProbe,
        H: LinkHandler<D>,
        R: RowSink,
    {
        let start = Instant::now();
        let tasks = self.expand_tasks(tree);
        let total = tasks.len();
        let mut engine = Engine::new(tree, self.cfg, early_stop, handler, sink);
        if let Some(token) = &self.cancel {
            engine.set_cancel(token.clone());
        }

        let mut done = 0usize;
        let mut reason: Option<StopReason> = None;
        for task in &tasks {
            // Pre-task boundary: a cancel or a budget trip stops the run
            // before more work starts (a pre-canceled token costs zero
            // node visits).
            if let Some(r) = self.boundary_check(&engine.stats, probe, start)? {
                reason = Some(r);
                break;
            }
            match task {
                Task::SelfJoin(n) => engine.join_node(*n)?,
                Task::PairJoin(a, b) => engine.join_pair(*a, *b)?,
            }
            if let Some(r) = engine.stop_reason() {
                // Mid-task stop (cancel): the task did not complete.
                reason = Some(r);
                break;
            }
            done += 1;
        }
        // Always drain buffered groups: the output must be lossless over
        // the region the traversal actually covered.
        engine.finish_only()?;
        if let Some(e) = probe.storage_error() {
            return Err(e.into());
        }

        let mut stats = std::mem::take(&mut engine.stats);
        stats.io_retries += probe.io_retries();
        let usage = self.usage_of(&stats);
        let completion = match reason {
            None if done == total => Completion::Complete,
            r => Completion::partial(
                r.unwrap_or(StopReason::Canceled),
                if total == 0 { 1.0 } else { done as f64 / total as f64 },
                usage.links,
                usage.bytes,
            ),
        };
        Ok((engine.sink, stats, completion))
    }

    /// Cancel, storage and budget checks at a task boundary.
    fn boundary_check<P: StorageProbe>(
        &self,
        stats: &JoinStats,
        probe: &P,
        start: Instant,
    ) -> Result<Option<StopReason>, CsjError> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_canceled) {
            return Ok(Some(StopReason::Canceled));
        }
        if let Some(e) = probe.storage_error() {
            return Err(e.into());
        }
        if !self.budget.is_unlimited() {
            let usage = self.usage_of(stats);
            if let Some(r) = self.budget.exceeded_by(&usage, start.elapsed()) {
                return Ok(Some(r));
            }
        }
        Ok(None)
    }

    /// Resource usage derived from the counters alone: links emitted plus
    /// links implied by groups, and the deterministic byte size of the
    /// paper's text format (`k` ids cost `k · (width + 1)` bytes per row).
    fn usage_of(&self, stats: &JoinStats) -> BudgetUsage {
        let ids = 2 * stats.links_emitted + stats.group_members_emitted;
        BudgetUsage {
            links: stats.links_emitted + stats.links_in_groups,
            groups: stats.groups_emitted,
            bytes: ids * (self.id_width as u64 + 1),
        }
    }

    /// Root-level task list: child self-joins plus qualifying child
    /// pairs; a leaf (or early-stoppable) root is a single task.
    fn expand_tasks<T: JoinIndex<D>, const D: usize>(&self, tree: &T) -> Vec<Task> {
        let Some(root) = tree.root() else { return Vec::new() };
        let compact = self.algo != ParallelAlgo::Ssj;
        if tree.is_leaf(root)
            || (compact && tree.max_diameter(root, self.cfg.metric) <= self.cfg.epsilon)
        {
            return vec![Task::SelfJoin(root)];
        }
        let children = tree.children(root).to_vec();
        let mut tasks = Vec::new();
        for (i, &a) in children.iter().enumerate() {
            tasks.push(Task::SelfJoin(a));
            for &b in &children[(i + 1)..] {
                if tree.min_dist(a, b, self.cfg.metric) <= self.cfg.epsilon {
                    tasks.push(Task::PairJoin(a, b));
                } else {
                    // Pruned pairs are still the engine's business when a
                    // task runs; at the root level the prune is final.
                }
            }
        }
        tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_links;
    use crate::csj::CsjJoin;
    use crate::paged::FaultPagedTree;
    use csj_geom::Point;
    use csj_index::{rstar::RStarTree, RTreeConfig};
    use csj_storage::{FaultPolicy, RetryPolicy, VecSink};

    fn stripe(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Point::new([t, (t * 37.0).sin() * 0.03])
            })
            .collect()
    }

    #[test]
    fn unlimited_run_matches_plain_join() {
        let pts = stripe(400);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        let eps = 0.04;
        let plain = CsjJoin::new(eps).with_window(10).run(&tree);
        let resilient =
            ResilientJoin::new(eps, ParallelAlgo::Csj(10)).run(&tree).expect("in-memory");
        assert!(resilient.completion.is_complete());
        assert_eq!(resilient.expanded_link_set(), plain.expanded_link_set());
    }

    #[test]
    fn link_budget_produces_partial_with_estimates() {
        let pts = stripe(800);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        let eps = 0.05;
        let out = ResilientJoin::new(eps, ParallelAlgo::Csj(10))
            .with_budget(RunBudget::unlimited().with_max_links(100))
            .run(&tree)
            .expect("in-memory");
        match out.completion {
            Completion::Partial {
                reason,
                completed_fraction,
                estimated_links,
                estimated_bytes,
            } => {
                assert_eq!(reason, StopReason::LinkBudget);
                assert!((0.0..1.0).contains(&completed_fraction), "{completed_fraction}");
                assert!(estimated_links > 0.0);
                assert!(estimated_bytes > 0.0);
            }
            Completion::Complete => panic!("a 100-link budget must trip on this data"),
        }
        // Lossless over the processed region: every emitted link is true.
        let truth = brute_force_links(&pts, eps);
        for link in out.expanded_link_set() {
            assert!(truth.contains(&link), "emitted link {link:?} is not a true link");
        }
    }

    #[test]
    fn partial_fraction_is_monotone_in_the_budget() {
        let pts = stripe(700);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        let eps = 0.05;
        let fraction = |max_links: u64| {
            ResilientJoin::new(eps, ParallelAlgo::Ncsj)
                .with_budget(RunBudget::unlimited().with_max_links(max_links))
                .run(&tree)
                .expect("in-memory")
                .completion
                .completed_fraction()
        };
        let (f50, f500, f5000, funlimited) =
            (fraction(50), fraction(500), fraction(5000), fraction(u64::MAX));
        assert!(f50 <= f500, "{f50} > {f500}");
        assert!(f500 <= f5000, "{f500} > {f5000}");
        assert!(f5000 <= funlimited, "{f5000} > {funlimited}");
        assert_eq!(funlimited, 1.0);
    }

    #[test]
    fn precanceled_token_stops_before_any_work() {
        let pts = stripe(300);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        let token = CancelToken::new();
        token.cancel();
        let out = ResilientJoin::new(0.05, ParallelAlgo::Csj(10))
            .with_cancel(&token)
            .run(&tree)
            .expect("in-memory");
        assert_eq!(out.completion.stop_reason(), Some(StopReason::Canceled));
        assert_eq!(out.completion.completed_fraction(), 0.0);
        assert!(out.items.is_empty());
        assert_eq!(out.stats.node_visits, 0, "no task was started");
    }

    #[test]
    fn deadline_zero_stops_immediately() {
        let pts = stripe(300);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        let out = ResilientJoin::new(0.05, ParallelAlgo::Ssj)
            .with_budget(RunBudget::unlimited().with_deadline(std::time::Duration::ZERO))
            .run(&tree)
            .expect("in-memory");
        assert_eq!(out.completion.stop_reason(), Some(StopReason::Deadline));
    }

    #[test]
    fn absorbed_faults_surface_as_retry_counts() {
        let pts = stripe(1000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        let eps = 0.04;
        let faulty =
            FaultPagedTree::new(&tree, FaultPolicy::fail_every_read(3), RetryPolicy::no_backoff(4));
        let out = ResilientJoin::new(eps, ParallelAlgo::Csj(10))
            .run_probed(&faulty, &faulty)
            .expect("retries absorb every 3rd-read fault");
        assert!(out.completion.is_complete());
        assert!(out.stats.io_retries > 0, "retries must be counted");
        assert_eq!(out.expanded_link_set(), brute_force_links(&pts, eps));
    }

    #[test]
    fn unrecoverable_fault_is_a_typed_error_not_a_panic() {
        let pts = stripe(500);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        let faulty =
            FaultPagedTree::new(&tree, FaultPolicy::fail_every_read(1), RetryPolicy::none());
        let err = ResilientJoin::new(0.04, ParallelAlgo::Ssj)
            .run_probed(&faulty, &faulty)
            .expect_err("every read fails and there are no retries");
        assert!(matches!(err, CsjError::Storage(_)), "{err}");
    }

    #[test]
    fn streaming_reports_the_same_completion() {
        let pts = stripe(600);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        let eps = 0.05;
        let join = ResilientJoin::new(eps, ParallelAlgo::Csj(10))
            .with_id_width(4)
            .with_budget(RunBudget::unlimited().with_max_links(200));
        let collected = join.run(&tree).expect("in-memory");
        let mut writer = OutputWriter::new(VecSink::new(), 4);
        let report = join.run_streaming(&tree, &mut writer).expect("in-memory");
        assert_eq!(report.completion, collected.completion);
        assert_eq!(collected.total_bytes(4), writer.bytes_written());
    }

    #[test]
    fn empty_tree_completes_trivially() {
        let tree = RStarTree::<2>::new(RTreeConfig::default());
        let out = ResilientJoin::new(0.1, ParallelAlgo::Csj(10))
            .with_budget(RunBudget::unlimited().with_max_links(1))
            .run(&tree)
            .expect("in-memory");
        assert!(out.completion.is_complete());
        assert!(out.items.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::brute::brute_force_links;
    use crate::output::OutputItem;
    use csj_geom::{Metric, Point};
    use csj_index::{rstar::RStarTree, RTreeConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// A budget-truncated run is still a correct (if partial) join:
        /// every emitted link is true, every emitted group has diameter
        /// ≤ ε, and an untruncated run is the exact result.
        #[test]
        fn truncated_runs_stay_correct(
            pts in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 0..120),
            eps in 0.0f64..0.4,
            max_links in 0u64..600,
            algo_idx in 0usize..3,
        ) {
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let tree = RStarTree::from_points(&points, RTreeConfig::with_max_fanout(5));
            let algo = [ParallelAlgo::Ssj, ParallelAlgo::Ncsj, ParallelAlgo::Csj(7)][algo_idx];
            let out = ResilientJoin::new(eps, algo)
                .with_budget(RunBudget::unlimited().with_max_links(max_links))
                .run(&tree)
                .expect("in-memory run cannot hit storage errors");
            let truth = brute_force_links(&points, eps);
            for link in out.expanded_link_set() {
                prop_assert!(truth.contains(&link), "false link {link:?}");
            }
            for item in &out.items {
                if let OutputItem::Group(members) = item {
                    for (i, &a) in members.iter().enumerate() {
                        for &b in &members[i + 1..] {
                            let d = Metric::Euclidean
                                .distance(&points[a as usize], &points[b as usize]);
                            prop_assert!(d <= eps, "group diameter {d} > eps {eps}");
                        }
                    }
                }
            }
            if out.completion.is_complete() {
                prop_assert_eq!(out.expanded_link_set(), truth);
            }
        }

        /// `completed_fraction` never decreases as the link budget grows.
        #[test]
        fn completed_fraction_is_monotone(
            pts in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 0..120),
            eps in 0.0f64..0.4,
            lo in 0u64..200,
            delta in 0u64..2000,
        ) {
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let tree = RStarTree::from_points(&points, RTreeConfig::with_max_fanout(5));
            let fraction = |max_links: u64| {
                ResilientJoin::new(eps, ParallelAlgo::Ncsj)
                    .with_budget(RunBudget::unlimited().with_max_links(max_links))
                    .run(&tree)
                    .expect("in-memory run cannot hit storage errors")
                    .completion
                    .completed_fraction()
            };
            let (f_lo, f_hi) = (fraction(lo), fraction(lo + delta));
            prop_assert!(f_lo <= f_hi, "fraction {f_lo} at budget {lo} > {f_hi} at {}", lo + delta);
        }
    }
}
