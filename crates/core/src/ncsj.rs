//! N-CSJ — the naive compact similarity join (§IV-B).
//!
//! SSJ plus the early-stopping rule: whenever a subtree's (or subtree
//! pair's) bounding shape has diameter ≤ ε, all its records are emitted as
//! one group — no distance computations, one subtree scan. Links that
//! cross node boundaries are still emitted individually; CSJ(g) is the
//! variant that also compacts those.

use csj_index::JoinIndex;
use csj_storage::{OutputSink, OutputWriter};

use crate::engine::{run_collecting, run_streaming, DirectEmit};
use crate::error::CsjError;
use crate::output::JoinOutput;
use crate::stats::JoinStats;
use crate::JoinConfig;

/// The naive compact similarity self-join.
///
/// ```
/// use csj_core::{ncsj::NcsjJoin, ssj::SsjJoin};
/// use csj_geom::Point;
/// use csj_index::{rstar::RStarTree, RTreeConfig};
///
/// // A tight cluster: N-CSJ emits one group where SSJ emits O(k²) links.
/// let pts: Vec<Point<2>> = (0..20)
///     .map(|i| Point::new([0.5 + (i % 5) as f64 * 1e-4, 0.5 + (i / 5) as f64 * 1e-4]))
///     .collect();
/// let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(25));
/// let eps = 0.1;
/// let compact = NcsjJoin::new(eps).run(&tree);
/// let standard = SsjJoin::new(eps).run(&tree);
/// assert_eq!(compact.num_groups(), 1);
/// assert_eq!(standard.num_links(), 190);
/// assert_eq!(compact.expanded_link_set(), standard.expanded_link_set());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct NcsjJoin {
    cfg: JoinConfig,
}

impl NcsjJoin {
    /// An N-CSJ with range `epsilon` and default configuration.
    pub fn new(epsilon: f64) -> Self {
        NcsjJoin { cfg: JoinConfig::new(epsilon) }
    }

    /// An N-CSJ from an explicit configuration.
    pub fn with_config(cfg: JoinConfig) -> Self {
        NcsjJoin { cfg }
    }

    /// Replaces the metric.
    pub fn with_metric(mut self, metric: csj_geom::Metric) -> Self {
        self.cfg.metric = metric;
        self
    }

    /// Enables node-access logging.
    pub fn with_access_log(mut self) -> Self {
        self.cfg.record_access_log = true;
        self
    }

    /// Enables the plane-sweep access ordering (Brinkhoff et al. \[1\]).
    pub fn with_plane_sweep(mut self) -> Self {
        self.cfg.plane_sweep = true;
        self
    }

    /// The configuration this join runs with.
    pub fn config(&self) -> &JoinConfig {
        &self.cfg
    }

    /// Runs the join, collecting rows in memory.
    pub fn run<T: JoinIndex<D>, const D: usize>(&self, tree: &T) -> JoinOutput {
        run_collecting(tree, self.cfg, true, DirectEmit)
    }

    /// Runs the join, streaming rows into `writer` (constant memory).
    /// A sink failure surfaces as `Err`; rows already written remain
    /// valid join output.
    ///
    /// # Errors
    /// Returns [`CsjError::Storage`] when the sink rejects a write.
    pub fn run_streaming<T: JoinIndex<D>, S: OutputSink, const D: usize>(
        &self,
        tree: &T,
        writer: &mut OutputWriter<S>,
    ) -> Result<JoinStats, CsjError> {
        run_streaming(tree, self.cfg, true, DirectEmit, writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_links;
    use crate::ssj::SsjJoin;
    use csj_geom::Point;
    use csj_index::{
        mtree::{MTree, MTreeConfig},
        rstar::RStarTree,
        rtree::RTree,
        RTreeConfig,
    };

    fn dense_grid(n_side: usize, spacing: f64) -> Vec<Point<2>> {
        let mut pts = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                pts.push(Point::new([i as f64 * spacing, j as f64 * spacing]));
            }
        }
        pts
    }

    #[test]
    fn lossless_on_all_scales() {
        let pts = dense_grid(12, 0.02);
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(6));
        for eps in [0.0, 0.015, 0.05, 0.1, 0.5, 1.0] {
            let out = NcsjJoin::new(eps).run(&tree);
            assert_eq!(out.expanded_link_set(), brute_force_links(&pts, eps), "eps={eps}");
        }
    }

    #[test]
    fn large_range_collapses_to_one_group() {
        let pts = dense_grid(10, 0.001);
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(8));
        // Entire dataset diameter << eps: the root early-stops.
        let out = NcsjJoin::new(0.5).run(&tree);
        assert_eq!(out.num_groups(), 1);
        assert_eq!(out.num_links(), 0);
        assert_eq!(out.stats.early_stops_node, 1);
        assert_eq!(out.stats.distance_computations, 0, "no distances needed");
        match &out.items[0] {
            crate::output::OutputItem::Group(ids) => assert_eq!(ids.len(), 100),
            other => panic!("expected group, got {other:?}"),
        }
    }

    #[test]
    fn small_range_degenerates_to_ssj() {
        // With eps below every leaf diameter, N-CSJ emits exactly SSJ's
        // links (the paper: "otherwise, N-CSJ will reduce to SSJ").
        let pts = dense_grid(10, 0.05);
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(4));
        let eps = 0.05; // direct grid neighbours only
        let ncsj = NcsjJoin::new(eps).run(&tree);
        let ssj = SsjJoin::new(eps).run(&tree);
        assert_eq!(ncsj.expanded_link_set(), ssj.expanded_link_set());
        // Output can only be smaller or equal.
        assert!(ncsj.total_bytes(3) <= ssj.total_bytes(3));
    }

    #[test]
    fn never_slower_in_comparisons() {
        let pts = dense_grid(14, 0.01);
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(6));
        for eps in [0.01, 0.05, 0.2] {
            let ncsj = NcsjJoin::new(eps).run(&tree);
            let ssj = SsjJoin::new(eps).run(&tree);
            assert!(
                ncsj.stats.distance_computations <= ssj.stats.distance_computations,
                "eps={eps}: {} > {}",
                ncsj.stats.distance_computations,
                ssj.stats.distance_computations
            );
            assert!(ncsj.total_bytes(3) <= ssj.total_bytes(3), "eps={eps}");
        }
    }

    #[test]
    fn works_on_all_tree_types() {
        let pts = dense_grid(9, 0.03);
        let eps = 0.1;
        let want = brute_force_links(&pts, eps);
        let rstar = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(6));
        let rtree = RTree::from_points(&pts, RTreeConfig::with_max_fanout(6));
        let mtree = MTree::from_points(&pts, MTreeConfig::with_max_fanout(6));
        assert_eq!(NcsjJoin::new(eps).run(&rstar).expanded_link_set(), want);
        assert_eq!(NcsjJoin::new(eps).run(&rtree).expanded_link_set(), want);
        assert_eq!(NcsjJoin::new(eps).run(&mtree).expanded_link_set(), want);
    }

    #[test]
    fn group_rows_have_at_least_two_members() {
        let pts = dense_grid(11, 0.02);
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(5));
        let out = NcsjJoin::new(0.08).run(&tree);
        for item in &out.items {
            if let crate::output::OutputItem::Group(ids) = item {
                assert!(ids.len() >= 2);
            }
        }
    }
}
