//! Operation counters collected by every join run.
//!
//! The paper's evaluation needs three views of a run: wall-clock time
//! (measured by the harness), output size in bytes (from the writer), and
//! *why* the time went where it did — Experiment 3 attributes the compact
//! joins' savings mostly to the early-stopping rule (fewer distance
//! computations) and partly to smaller output. These counters expose that
//! attribution directly.

/// Counters accumulated during a join.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Single-node recursion steps (`simJoin(n)` calls).
    pub node_visits: u64,
    /// Node-pair recursion steps (`simJoin(n1, n2)` calls).
    pub pair_visits: u64,
    /// Point-to-point distance predicate evaluations.
    pub distance_computations: u64,
    /// Early stops on a single node (subtree emitted as one group).
    pub early_stops_node: u64,
    /// Early stops on a node pair.
    pub early_stops_pair: u64,
    /// Links emitted individually.
    pub links_emitted: u64,
    /// Groups emitted (early stops + CSJ window groups).
    pub groups_emitted: u64,
    /// Sum of group sizes (members across all emitted groups).
    pub group_members_emitted: u64,
    /// CSJ: merge attempts against a window group.
    pub merge_attempts: u64,
    /// CSJ: links successfully merged into an existing group.
    pub merges_succeeded: u64,
    /// Node-pair recursions skipped because MINDIST exceeded ε.
    pub pairs_pruned: u64,
    /// Links implied by emitted groups (`k·(k−1)/2` per group of size
    /// `k`); together with [`JoinStats::links_emitted`] this is the
    /// represented-link total that resource budgets meter.
    pub links_in_groups: u64,
    /// Transient storage faults absorbed by retry (pager / sink level).
    pub io_retries: u64,
    /// Worker threads the run actually used (1 for sequential joins).
    pub threads_used: u64,
    /// Tasks executed by the parallel scheduler (0 for sequential joins).
    pub tasks_executed: u64,
    /// Tasks a worker stole from another worker's share.
    pub tasks_stolen: u64,
    /// Oversized tasks split into smaller ones on demand.
    pub tasks_split: u64,
    /// Sharded runs: shard attempts relaunched after a failure
    /// (worker lost, corrupt frame, timeout, typed worker error).
    pub shard_retries: u64,
    /// Sharded runs: shard attempts abandoned because they outlived the
    /// per-shard deadline.
    pub shard_timeouts: u64,
    /// Sharded runs: shards re-split into two sub-shards after timing
    /// out twice (skew mitigation).
    pub shard_resplits: u64,
    /// Sharded runs: results delivered by a speculative twin launched
    /// against a straggler, beating the original attempt.
    pub shard_speculative_wins: u64,
    /// Sequence of visited node ids (one entry per node access), present
    /// only when [`crate::JoinConfig::record_access_log`] is set.
    pub access_log: Option<Vec<u32>>,
}

impl JoinStats {
    /// A fresh stats block, with the access log pre-armed when requested.
    pub fn new(record_access_log: bool) -> Self {
        JoinStats { access_log: record_access_log.then(Vec::new), ..Default::default() }
    }

    /// Records a node access (counted, and logged when armed).
    #[inline]
    pub fn touch_node(&mut self, node: u32) {
        if let Some(log) = &mut self.access_log {
            log.push(node);
        }
    }

    /// Total output rows (links + groups).
    pub fn rows_emitted(&self) -> u64 {
        self.links_emitted + self.groups_emitted
    }

    /// Merges these stats into `self` (used by the parallel runner).
    pub fn absorb(&mut self, other: &JoinStats) {
        self.node_visits += other.node_visits;
        self.pair_visits += other.pair_visits;
        self.distance_computations += other.distance_computations;
        self.early_stops_node += other.early_stops_node;
        self.early_stops_pair += other.early_stops_pair;
        self.links_emitted += other.links_emitted;
        self.groups_emitted += other.groups_emitted;
        self.group_members_emitted += other.group_members_emitted;
        self.merge_attempts += other.merge_attempts;
        self.merges_succeeded += other.merges_succeeded;
        self.pairs_pruned += other.pairs_pruned;
        self.links_in_groups += other.links_in_groups;
        self.io_retries += other.io_retries;
        // Scheduler counters: threads_used is a property of the whole
        // run (kept, not summed); the task counters accumulate.
        self.threads_used = self.threads_used.max(other.threads_used);
        self.tasks_executed += other.tasks_executed;
        self.tasks_stolen += other.tasks_stolen;
        self.tasks_split += other.tasks_split;
        self.shard_retries += other.shard_retries;
        self.shard_timeouts += other.shard_timeouts;
        self.shard_resplits += other.shard_resplits;
        self.shard_speculative_wins += other.shard_speculative_wins;
        if let (Some(mine), Some(theirs)) = (&mut self.access_log, &other.access_log) {
            mine.extend_from_slice(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_without_log() {
        let s = JoinStats::new(false);
        assert!(s.access_log.is_none());
        assert_eq!(s.rows_emitted(), 0);
    }

    #[test]
    fn touch_node_logs_when_armed() {
        let mut s = JoinStats::new(true);
        s.touch_node(3);
        s.touch_node(7);
        assert_eq!(s.access_log.as_deref(), Some(&[3, 7][..]));
        let mut silent = JoinStats::new(false);
        silent.touch_node(3);
        assert!(silent.access_log.is_none());
    }

    #[test]
    fn absorb_sums_counters_and_logs() {
        let mut a = JoinStats::new(true);
        a.links_emitted = 5;
        a.touch_node(1);
        let mut b = JoinStats::new(true);
        b.links_emitted = 7;
        b.groups_emitted = 2;
        b.touch_node(9);
        a.absorb(&b);
        assert_eq!(a.links_emitted, 12);
        assert_eq!(a.groups_emitted, 2);
        assert_eq!(a.rows_emitted(), 14);
        assert_eq!(a.access_log.as_deref(), Some(&[1, 9][..]));
    }
}
