//! Small-group outlier mining (§I, §IV-D).
//!
//! The paper: *"a compact representation will highlight unusual pairs …
//! small-size groups could correspond to outliers"* and *"a compact
//! representation already provides a type of pre-sort. After all, we would
//! expect outliers to be separate from large groups of data, so the focus
//! should be on the small groups."*
//!
//! This module turns a [`JoinOutput`] into per-record *cohesion scores*
//! (the size of the largest output row a record appears in) and extracts
//! the records / rows below a threshold.

use std::collections::HashMap;

use csj_geom::RecordId;

use crate::output::{JoinOutput, OutputItem};

/// Per-record cohesion derived from a compact join output.
#[derive(Clone, Debug, Default)]
pub struct CohesionScores {
    scores: HashMap<RecordId, usize>,
}

impl CohesionScores {
    /// Computes scores from `output`: for every record mentioned in any
    /// row, the size of the largest row containing it (links count as
    /// size-2 rows). Records absent from the output have score 0 — they
    /// have no neighbour within ε at all.
    pub fn from_output(output: &JoinOutput) -> Self {
        let mut scores: HashMap<RecordId, usize> = HashMap::new();
        let mut bump = |id: RecordId, size: usize| {
            let s = scores.entry(id).or_insert(0);
            *s = (*s).max(size);
        };
        for item in &output.items {
            match item {
                OutputItem::Link(a, b) => {
                    bump(*a, 2);
                    bump(*b, 2);
                }
                OutputItem::Group(ids) => {
                    for &id in ids {
                        bump(id, ids.len());
                    }
                }
            }
        }
        CohesionScores { scores }
    }

    /// The score of one record (0 if it appears in no row).
    pub fn score(&self, id: RecordId) -> usize {
        self.scores.get(&id).copied().unwrap_or(0)
    }

    /// Records with `score <= max_cohesion`, most isolated first
    /// (ascending score, ties by id). `num_records` is the dataset size;
    /// records never mentioned in the output are included with score 0.
    pub fn outliers(&self, num_records: usize, max_cohesion: usize) -> Vec<(RecordId, usize)> {
        let mut out: Vec<(RecordId, usize)> = (0..num_records as RecordId)
            .map(|id| (id, self.score(id)))
            .filter(|&(_, s)| s <= max_cohesion)
            .collect();
        out.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// The §IV-D pre-sort: output rows of size at most `max_size`, smallest
/// first — the rows an outlier hunt should inspect first.
pub fn small_rows(output: &JoinOutput, max_size: usize) -> Vec<&OutputItem> {
    let size_of = |item: &OutputItem| match item {
        OutputItem::Link(..) => 2,
        OutputItem::Group(ids) => ids.len(),
    };
    let mut rows: Vec<&OutputItem> =
        output.items.iter().filter(|i| size_of(i) <= max_size).collect();
    rows.sort_by_key(|i| size_of(i));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csj::CsjJoin;
    use csj_geom::Point;
    use csj_index::{rstar::RStarTree, RTreeConfig};

    #[test]
    fn scores_from_mixed_output() {
        let out = JoinOutput {
            items: vec![
                OutputItem::Group(vec![0, 1, 2, 3]),
                OutputItem::Link(3, 4),
                OutputItem::Link(5, 6),
            ],
            stats: Default::default(),
            completion: crate::Completion::Complete,
        };
        let scores = CohesionScores::from_output(&out);
        assert_eq!(scores.score(0), 4);
        assert_eq!(scores.score(3), 4, "max over rows wins");
        assert_eq!(scores.score(4), 2);
        assert_eq!(scores.score(7), 0, "absent record");
    }

    #[test]
    fn outliers_sorted_most_isolated_first() {
        let out = JoinOutput {
            items: vec![OutputItem::Group(vec![0, 1, 2]), OutputItem::Link(3, 4)],
            stats: Default::default(),
            completion: crate::Completion::Complete,
        };
        let scores = CohesionScores::from_output(&out);
        // 6 records total; record 5 appears nowhere.
        let outliers = scores.outliers(6, 2);
        assert_eq!(outliers, vec![(5, 0), (3, 2), (4, 2)]);
    }

    #[test]
    fn small_rows_filter_and_order() {
        let out = JoinOutput {
            items: vec![
                OutputItem::Group(vec![0, 1, 2, 3, 4]),
                OutputItem::Link(8, 9),
                OutputItem::Group(vec![5, 6, 7]),
            ],
            stats: Default::default(),
            completion: crate::Completion::Complete,
        };
        let rows = small_rows(&out, 3);
        assert_eq!(rows.len(), 2);
        assert!(matches!(rows[0], OutputItem::Link(8, 9)));
        assert!(matches!(rows[1], OutputItem::Group(g) if g.len() == 3));
    }

    #[test]
    fn end_to_end_isolated_pair_detected() {
        // A dense blob of 40 points plus one isolated pair far away: the
        // pair must surface as the lowest-cohesion linked records.
        let mut pts: Vec<Point<2>> = (0..40)
            .map(|i| Point::new([0.2 + (i % 8) as f64 * 1e-3, 0.2 + (i / 8) as f64 * 1e-3]))
            .collect();
        pts.push(Point::new([0.9, 0.9]));
        pts.push(Point::new([0.9005, 0.9]));
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(8));
        let out = CsjJoin::new(0.05).run(&tree);
        let scores = CohesionScores::from_output(&out);
        let outliers = scores.outliers(pts.len(), 2);
        let ids: Vec<u32> = outliers.iter().map(|&(id, _)| id).collect();
        assert!(ids.contains(&40) && ids.contains(&41), "isolated pair flagged: {ids:?}");
        for &(id, _) in &outliers {
            assert!(id >= 40, "blob members must not be flagged, got {id}");
        }
    }
}
