//! Machine checks of the paper's Theorems 1 and 2.
//!
//! * **Completeness** (Theorem 1): every pair within ε appears — as an
//!   explicit link or implicitly inside some group.
//! * **Correctness** (Theorem 2): every pair inside any emitted group (and
//!   every explicit link) is genuinely within ε.
//!
//! [`verify_lossless`] checks both against the `O(n²)` ground truth, and
//! additionally asserts the stronger group invariant the proofs rest on:
//! the true diameter of each group's member set is at most ε.

use csj_geom::{Metric, Point, RecordId};

use crate::brute::brute_force_links_metric;
use crate::output::{JoinOutput, OutputItem};

/// A violation of Theorem 1 or 2.
#[derive(Clone, Debug, PartialEq)]
pub enum VerifyError {
    /// A qualifying pair is absent from the output (completeness).
    MissingLink {
        /// First record.
        a: RecordId,
        /// Second record.
        b: RecordId,
        /// Their true distance.
        distance: f64,
    },
    /// A reported pair does not qualify (correctness).
    ExtraLink {
        /// First record.
        a: RecordId,
        /// Second record.
        b: RecordId,
        /// Their true distance.
        distance: f64,
    },
    /// A group's member set has diameter above ε.
    GroupTooWide {
        /// Index of the offending output row.
        item_index: usize,
        /// True diameter of the member set.
        diameter: f64,
    },
    /// An output row references a record id outside the dataset.
    UnknownRecord {
        /// The offending id.
        id: RecordId,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::MissingLink { a, b, distance } => {
                write!(f, "completeness violated: pair ({a}, {b}) at distance {distance} missing")
            }
            VerifyError::ExtraLink { a, b, distance } => {
                write!(f, "correctness violated: pair ({a}, {b}) at distance {distance} reported")
            }
            VerifyError::GroupTooWide { item_index, diameter } => {
                write!(f, "group at row {item_index} has diameter {diameter} > eps")
            }
            VerifyError::UnknownRecord { id } => write!(f, "unknown record id {id}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Summary of a successful verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Ground-truth link count.
    pub true_links: usize,
    /// Output rows checked.
    pub rows: usize,
    /// Groups whose true diameter was individually validated.
    pub groups_checked: usize,
}

/// Verifies that `output` is a lossless representation of the ε-join over
/// `points` (record ids are slice indexes), under `metric`.
///
/// # Errors
/// Returns a [`VerifyError`] describing the first violation found:
/// a missing or spurious link, or a group whose true diameter
/// exceeds ε.
pub fn verify_lossless<const D: usize>(
    output: &JoinOutput,
    points: &[Point<D>],
    eps: f64,
    metric: Metric,
) -> Result<VerifyReport, VerifyError> {
    let fetch = |id: RecordId| -> Result<&Point<D>, VerifyError> {
        points.get(id as usize).ok_or(VerifyError::UnknownRecord { id })
    };

    // Theorem 2 (correctness), including the group-diameter invariant.
    let mut groups_checked = 0usize;
    for (idx, item) in output.items.iter().enumerate() {
        match item {
            OutputItem::Link(a, b) => {
                let d = metric.distance(fetch(*a)?, fetch(*b)?);
                if d > eps {
                    return Err(VerifyError::ExtraLink { a: *a, b: *b, distance: d });
                }
            }
            OutputItem::Group(ids) => {
                groups_checked += 1;
                let mut diameter = 0.0_f64;
                for i in 0..ids.len() {
                    let pi = fetch(ids[i])?;
                    for j in (i + 1)..ids.len() {
                        let d = metric.distance(pi, fetch(ids[j])?);
                        if d > eps {
                            return Err(VerifyError::ExtraLink {
                                a: ids[i],
                                b: ids[j],
                                distance: d,
                            });
                        }
                        diameter = diameter.max(d);
                    }
                }
                if diameter > eps {
                    return Err(VerifyError::GroupTooWide { item_index: idx, diameter });
                }
            }
        }
    }

    // Theorem 1 (completeness).
    let truth = brute_force_links_metric(points, eps, metric);
    let expanded = output.expanded_link_set();
    if let Some(&(a, b)) = truth.difference(&expanded).next() {
        let d = metric.distance(&points[a as usize], &points[b as usize]);
        return Err(VerifyError::MissingLink { a, b, distance: d });
    }
    // (Extra links were already caught above, but double-check the sets.)
    if let Some(&(a, b)) = expanded.difference(&truth).next() {
        let d = metric.distance(&points[a as usize], &points[b as usize]);
        return Err(VerifyError::ExtraLink { a, b, distance: d });
    }

    Ok(VerifyReport { true_links: truth.len(), rows: output.items.len(), groups_checked })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csj::CsjJoin;
    use crate::ncsj::NcsjJoin;
    use crate::output::JoinOutput;
    use crate::ssj::SsjJoin;
    use crate::stats::JoinStats;
    use csj_index::{rstar::RStarTree, RTreeConfig};

    fn sample_points() -> Vec<Point<2>> {
        (0..60)
            .map(|i| {
                let t = i as f64 * 0.13;
                Point::new([(t.sin() * 0.3 + 0.5), ((t * 1.7).cos() * 0.3 + 0.5)])
            })
            .collect()
    }

    #[test]
    fn real_join_outputs_verify() {
        let pts = sample_points();
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(5));
        for eps in [0.05, 0.15, 0.4] {
            for out in [
                SsjJoin::new(eps).run(&tree),
                NcsjJoin::new(eps).run(&tree),
                CsjJoin::new(eps).with_window(10).run(&tree),
            ] {
                let report = verify_lossless(&out, &pts, eps, Metric::Euclidean)
                    .unwrap_or_else(|e| panic!("eps={eps}: {e}"));
                assert_eq!(report.rows, out.items.len());
            }
        }
    }

    #[test]
    fn detects_missing_link() {
        let pts = vec![Point::new([0.0, 0.0]), Point::new([0.05, 0.0])];
        let empty = JoinOutput { items: vec![], stats: JoinStats::default(), ..Default::default() };
        match verify_lossless(&empty, &pts, 0.1, Metric::Euclidean) {
            Err(VerifyError::MissingLink { a: 0, b: 1, .. }) => {}
            other => panic!("expected MissingLink, got {other:?}"),
        }
    }

    #[test]
    fn detects_extra_link() {
        let pts = vec![Point::new([0.0, 0.0]), Point::new([5.0, 0.0])];
        let bad = JoinOutput {
            items: vec![OutputItem::Link(0, 1)],
            stats: JoinStats::default(),
            ..Default::default()
        };
        match verify_lossless(&bad, &pts, 0.1, Metric::Euclidean) {
            Err(VerifyError::ExtraLink { a: 0, b: 1, distance }) => {
                assert_eq!(distance, 5.0)
            }
            other => panic!("expected ExtraLink, got {other:?}"),
        }
    }

    #[test]
    fn detects_overwide_group() {
        let pts = vec![Point::new([0.0, 0.0]), Point::new([0.05, 0.0]), Point::new([0.2, 0.0])];
        let bad = JoinOutput {
            items: vec![OutputItem::Group(vec![0, 1, 2])],
            stats: JoinStats::default(),
            ..Default::default()
        };
        // Pair (0, 2) is at 0.2 > eps: reported as an extra link.
        match verify_lossless(&bad, &pts, 0.1, Metric::Euclidean) {
            Err(VerifyError::ExtraLink { a: 0, b: 2, .. }) => {}
            other => panic!("expected ExtraLink, got {other:?}"),
        }
    }

    #[test]
    fn detects_unknown_record() {
        let pts = vec![Point::new([0.0, 0.0])];
        let bad = JoinOutput {
            items: vec![OutputItem::Link(0, 9)],
            stats: JoinStats::default(),
            ..Default::default()
        };
        assert_eq!(
            verify_lossless(&bad, &pts, 0.1, Metric::Euclidean),
            Err(VerifyError::UnknownRecord { id: 9 })
        );
    }

    #[test]
    fn error_messages_are_informative() {
        let e = VerifyError::MissingLink { a: 1, b: 2, distance: 0.05 };
        assert!(e.to_string().contains("completeness"));
        let e = VerifyError::GroupTooWide { item_index: 3, diameter: 0.5 };
        assert!(e.to_string().contains("row 3"));
    }
}
