//! The shared recursive join engine.
//!
//! Figure 3 of the paper gives one pseudo-code skeleton for all three
//! algorithms — `simJoin(n)` / `simJoin(n1, n2)` — with the compact
//! variants differing only in the italicized early-stopping lines and in
//! what happens to a qualifying link. [`Engine`] is that skeleton:
//!
//! * `early_stop = false`, [`DirectEmit`] → **SSJ**;
//! * `early_stop = true`, [`DirectEmit`] → **N-CSJ**;
//! * `early_stop = true`, [`WindowedEmit`] → **CSJ(g)**.
//!
//! Output rows go to a [`RowSink`] — collected in memory or streamed
//! straight into a `csj-storage` writer — so the same engine serves both
//! verification (structured output) and the experiment harness (byte
//! counting at full speed).

use csj_geom::{Mbr, Metric, Point, RecordId};
use csj_index::{JoinIndex, NodeId};
use csj_storage::{OutputSink, OutputWriter};

use crate::budget::{CancelToken, StopReason};
use crate::error::CsjError;
use crate::group::{GroupShape, GroupWindow, LinkProbe, OpenGroup};
use crate::output::{JoinOutput, OutputItem};
use crate::stats::JoinStats;
use crate::JoinConfig;

/// Receives finished output rows. Row delivery is fallible: a sink
/// backed by real storage can fail, and the engine stops cleanly at the
/// row boundary instead of panicking.
pub trait RowSink {
    /// An individual link row.
    fn link_row(&mut self, a: RecordId, b: RecordId) -> Result<(), CsjError>;
    /// A group row (at least two members).
    fn group_row(&mut self, ids: &[RecordId]) -> Result<(), CsjError>;
    /// A group row, by value. Sinks that retain rows take ownership and
    /// return `None`; serializing sinks return the vector so the caller
    /// can recycle its allocation. The default delegates to
    /// [`RowSink::group_row`].
    fn group_row_vec(&mut self, ids: Vec<RecordId>) -> Result<Option<Vec<RecordId>>, CsjError> {
        self.group_row(&ids)?;
        Ok(Some(ids))
    }
}

/// Collects rows into a [`JoinOutput`].
#[derive(Debug, Default)]
pub struct CollectSink {
    /// Rows collected so far.
    pub items: Vec<OutputItem>,
}

impl RowSink for CollectSink {
    fn link_row(&mut self, a: RecordId, b: RecordId) -> Result<(), CsjError> {
        self.items.push(OutputItem::Link(a, b));
        Ok(())
    }
    fn group_row(&mut self, ids: &[RecordId]) -> Result<(), CsjError> {
        self.items.push(OutputItem::Group(ids.to_vec()));
        Ok(())
    }
    fn group_row_vec(&mut self, ids: Vec<RecordId>) -> Result<Option<Vec<RecordId>>, CsjError> {
        self.items.push(OutputItem::Group(ids));
        Ok(None)
    }
}

/// Streams rows into an [`OutputWriter`] without retaining them.
pub struct StreamSink<'w, S> {
    writer: &'w mut OutputWriter<S>,
}

impl<'w, S: OutputSink> StreamSink<'w, S> {
    /// Wraps a writer.
    pub fn new(writer: &'w mut OutputWriter<S>) -> Self {
        StreamSink { writer }
    }
}

impl<S: OutputSink> RowSink for StreamSink<'_, S> {
    fn link_row(&mut self, a: RecordId, b: RecordId) -> Result<(), CsjError> {
        self.writer.write_link(a, b).map_err(CsjError::from)
    }
    fn group_row(&mut self, ids: &[RecordId]) -> Result<(), CsjError> {
        self.writer.write_group(ids).map_err(CsjError::from)
    }
}

/// What to do with a qualifying link / an early-stopped subtree.
pub trait LinkHandler<const D: usize> {
    /// Handles one qualifying link.
    fn on_link<R: RowSink>(
        &mut self,
        a: RecordId,
        pa: &Point<D>,
        b: RecordId,
        pb: &Point<D>,
        sink: &mut R,
        stats: &mut JoinStats,
    ) -> Result<(), CsjError>;

    /// Handles a subtree (or pair of subtrees) whose bounding shape fits
    /// within ε: `ids` are all records below, `mbr` the covering shape.
    fn on_subtree<R: RowSink>(
        &mut self,
        ids: Vec<RecordId>,
        mbr: &Mbr<D>,
        sink: &mut R,
        stats: &mut JoinStats,
    ) -> Result<(), CsjError>;

    /// Flushes any buffered state at the end of the join.
    fn finish<R: RowSink>(&mut self, sink: &mut R, stats: &mut JoinStats) -> Result<(), CsjError>;
}

/// Emits a finalized group row, taking the member vector by value:
/// retaining sinks keep it without a copy, and any returned (unretained)
/// vector comes back to the caller for recycling.
fn emit_group_row_vec<R: RowSink>(
    sink: &mut R,
    stats: &mut JoinStats,
    members: Vec<RecordId>,
) -> Result<Option<Vec<RecordId>>, CsjError> {
    // Single-member groups encode no links; suppress them.
    if members.len() < 2 {
        return Ok(Some(members));
    }
    let k = members.len() as u64;
    let returned = sink.group_row_vec(members)?;
    stats.groups_emitted += 1;
    stats.group_members_emitted += k;
    stats.links_in_groups += k * (k - 1) / 2;
    Ok(returned)
}

/// [`emit_group_row_vec`] for a member slice that stays owned by the
/// group window's ring (the steady-state CSJ open path): same
/// suppression of single-member rows, same tallies, no vector handoff.
#[inline]
fn emit_group_row_slice<R: RowSink>(
    sink: &mut R,
    stats: &mut JoinStats,
    ids: &[RecordId],
) -> Result<(), CsjError> {
    if ids.len() < 2 {
        return Ok(());
    }
    let k = ids.len() as u64;
    sink.group_row(ids)?;
    stats.groups_emitted += 1;
    stats.group_members_emitted += k;
    stats.links_in_groups += k * (k - 1) / 2;
    Ok(())
}

/// SSJ / N-CSJ behaviour: links go out individually, subtrees as one
/// group row each.
#[derive(Debug, Default)]
pub struct DirectEmit;

impl<const D: usize> LinkHandler<D> for DirectEmit {
    fn on_link<R: RowSink>(
        &mut self,
        a: RecordId,
        _pa: &Point<D>,
        b: RecordId,
        _pb: &Point<D>,
        sink: &mut R,
        stats: &mut JoinStats,
    ) -> Result<(), CsjError> {
        sink.link_row(a, b)?;
        stats.links_emitted += 1;
        Ok(())
    }

    fn on_subtree<R: RowSink>(
        &mut self,
        ids: Vec<RecordId>,
        _mbr: &Mbr<D>,
        sink: &mut R,
        stats: &mut JoinStats,
    ) -> Result<(), CsjError> {
        emit_group_row_vec(sink, stats, ids).map(drop)
    }

    fn finish<R: RowSink>(
        &mut self,
        _sink: &mut R,
        _stats: &mut JoinStats,
    ) -> Result<(), CsjError> {
        Ok(())
    }
}

/// CSJ(g) behaviour: links are merged into the `g` most recent groups
/// (opening a new group on failure); subtree groups also enter the
/// window. Groups leave the window — and reach the sink — oldest first.
#[derive(Debug)]
pub struct WindowedEmit<S, const D: usize> {
    window: GroupWindow<S, D>,
    eps: f64,
    metric: Metric,
    /// Member vectors recovered from emitted groups, recycled into
    /// freshly opened groups so the steady state allocates nothing.
    spare: Vec<Vec<RecordId>>,
}

/// Cap on the [`WindowedEmit`] recycling pool; beyond this, emitted
/// member vectors are simply dropped.
const SPARE_POOL_CAP: usize = 32;

impl<S: GroupShape<D>, const D: usize> WindowedEmit<S, D> {
    /// A window of `g` recent groups under the join parameters.
    pub fn new(g: usize, eps: f64, metric: Metric) -> Self {
        WindowedEmit { window: GroupWindow::new(g), eps, metric, spare: Vec::new() }
    }

    /// Emits an evicted group and reclaims its member vector when the
    /// sink hands it back.
    fn emit_recycling<R: RowSink>(
        &mut self,
        evicted: OpenGroup<S, D>,
        sink: &mut R,
        stats: &mut JoinStats,
    ) -> Result<(), CsjError> {
        let members = evicted.into_sorted_members();
        if let Some(mut v) = emit_group_row_vec(sink, stats, members)? {
            if self.spare.len() < SPARE_POOL_CAP {
                v.clear();
                self.spare.push(v);
            }
        }
        Ok(())
    }
}

impl<S: GroupShape<D>, const D: usize> LinkHandler<D> for WindowedEmit<S, D> {
    fn on_link<R: RowSink>(
        &mut self,
        a: RecordId,
        pa: &Point<D>,
        b: RecordId,
        pb: &Point<D>,
        sink: &mut R,
        stats: &mut JoinStats,
    ) -> Result<(), CsjError> {
        let link = LinkProbe::new(a, pa, b, pb);
        if self.window.try_merge_link(&link, self.eps, self.metric, &mut stats.merge_attempts) {
            stats.merges_succeeded += 1;
            return Ok(());
        }
        // Probe missed: open a group for the link in place; the displaced
        // oldest group (if any) is emitted straight from its ring slot.
        self.window.open_link(&link, self.metric, |ids| emit_group_row_slice(sink, stats, ids))
    }

    fn on_subtree<R: RowSink>(
        &mut self,
        ids: Vec<RecordId>,
        mbr: &Mbr<D>,
        sink: &mut R,
        stats: &mut JoinStats,
    ) -> Result<(), CsjError> {
        let group = OpenGroup::from_subtree(ids, mbr, self.metric);
        if let Some(evicted) = self.window.push(group) {
            self.emit_recycling(evicted, sink, stats)?;
        }
        Ok(())
    }

    fn finish<R: RowSink>(&mut self, sink: &mut R, stats: &mut JoinStats) -> Result<(), CsjError> {
        for group in self.window.drain() {
            emit_group_row_vec(sink, stats, group.into_sorted_members())?;
        }
        Ok(())
    }
}

/// The Figure-3 recursion, generic over tree, link handling and row sink.
pub struct Engine<'t, T, H, R, const D: usize> {
    tree: &'t T,
    cfg: JoinConfig,
    early_stop: bool,
    handler: H,
    cancel: Option<CancelToken>,
    stopped: Option<StopReason>,
    /// The row sink (public so callers can recover collected rows).
    pub sink: R,
    /// Accumulated counters.
    pub stats: JoinStats,
}

impl<'t, T, H, R, const D: usize> Engine<'t, T, H, R, D>
where
    T: JoinIndex<D>,
    H: LinkHandler<D>,
    R: RowSink,
{
    /// Builds an engine; `early_stop` enables the compact-join group
    /// rules (italic lines of Figure 3).
    pub fn new(tree: &'t T, cfg: JoinConfig, early_stop: bool, handler: H, sink: R) -> Self {
        // One engine is one thread of execution; the parallel runner
        // overwrites this with the real worker count after merging.
        let stats = JoinStats { threads_used: 1, ..JoinStats::new(cfg.record_access_log) };
        Engine { tree, cfg, early_stop, handler, cancel: None, stopped: None, sink, stats }
    }

    /// Arms a cooperative cancellation token: the recursion checks it on
    /// every node visit and unwinds promptly (keeping all rows emitted so
    /// far) once it is triggered.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Why the traversal stopped early, if it did.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stopped
    }

    /// `true` once the traversal has been stopped (it then unwinds
    /// without visiting further nodes).
    fn check_stopped(&mut self) -> bool {
        if self.stopped.is_some() {
            return true;
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_canceled) {
            self.stopped = Some(StopReason::Canceled);
            return true;
        }
        false
    }

    /// Runs the full self-join.
    ///
    /// # Errors
    /// Returns [`CsjError::Storage`] when the handler's sink rejects a
    /// write; traversal stops at the failing row.
    pub fn run(&mut self) -> Result<(), CsjError> {
        if let Some(root) = self.tree.root() {
            self.join_node(root)?;
        }
        self.finish_only()
    }

    /// Runs only the finish step (used by the budgeted runner after an
    /// aborted traversal; drains the CSJ window so the output stays
    /// lossless over the processed region).
    ///
    /// # Errors
    /// Returns [`CsjError::Storage`] when draining the window into the
    /// sink fails.
    pub fn finish_only(&mut self) -> Result<(), CsjError> {
        self.handler.finish(&mut self.sink, &mut self.stats)
    }

    /// The subtree group MBR: the node's bounding shape by default, or
    /// recomputed from the member points when configured.
    fn subtree_mbr(&self, ids_node: NodeId) -> Mbr<D> {
        if self.cfg.tighten_group_mbr {
            let mut entries = Vec::new();
            self.tree.collect_entries(ids_node, &mut entries);
            let mut mbr = Mbr::empty();
            for e in &entries {
                mbr.expand_to_point(&e.point);
            }
            mbr
        } else {
            self.tree.node_mbr(ids_node)
        }
    }

    /// `simJoin(n)`: self-join of one subtree.
    ///
    /// # Errors
    /// Returns [`CsjError::Storage`] when a leaf probe or emit hits a
    /// storage failure the retry policy could not absorb.
    pub fn join_node(&mut self, n: NodeId) -> Result<(), CsjError> {
        if self.check_stopped() {
            return Ok(());
        }
        self.stats.node_visits += 1;
        self.stats.touch_node(n.0);
        let eps = self.cfg.epsilon;
        let metric = self.cfg.metric;

        if self.early_stop && self.tree.max_diameter(n, metric) <= eps {
            self.stats.early_stops_node += 1;
            let mut ids = Vec::new();
            self.tree.collect_record_ids(n, &mut ids);
            let mbr = self.subtree_mbr(n);
            return self.handler.on_subtree(ids, &mbr, &mut self.sink, &mut self.stats);
        }

        if self.tree.is_leaf(n) {
            if self.cfg.plane_sweep {
                return self.leaf_self_sweep(n);
            }
            if self.cfg.batch_kernel {
                return self.leaf_self_kernel(n);
            }
            let entries = self.tree.leaf_entries(n);
            for i in 0..entries.len() {
                for j in (i + 1)..entries.len() {
                    self.stats.distance_computations += 1;
                    if metric.within(&entries[i].point, &entries[j].point, eps) {
                        self.handler.on_link(
                            entries[i].id,
                            &entries[i].point,
                            entries[j].id,
                            &entries[j].point,
                            &mut self.sink,
                            &mut self.stats,
                        )?;
                    }
                }
            }
        } else if self.cfg.plane_sweep {
            self.internal_self_sweep(n)?;
        } else {
            let children = self.tree.children(n).to_vec();
            for (i, &a) in children.iter().enumerate() {
                self.join_node(a)?;
                for &b in &children[(i + 1)..] {
                    if self.tree.min_dist(a, b, metric) <= eps {
                        self.join_pair(a, b)?;
                    } else {
                        self.stats.pairs_pruned += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Sweep axis for a node: the widest side of its bounding box, where
    /// axis separation prunes the most pairs.
    fn sweep_axis(&self, n: NodeId) -> usize {
        let mbr = self.tree.node_mbr(n);
        let mut best = 0;
        let mut best_extent = f64::NEG_INFINITY;
        for d in 0..D {
            let e = mbr.extent(d);
            if e > best_extent {
                best_extent = e;
                best = d;
            }
        }
        best
    }

    /// Plane-sweep leaf self-join: entries sorted along the sweep axis;
    /// the inner scan stops once the axis gap alone exceeds ε (valid for
    /// every `Lp` metric, where per-axis deltas lower-bound the distance).
    fn leaf_self_sweep(&mut self, n: NodeId) -> Result<(), CsjError> {
        let eps = self.cfg.epsilon;
        let metric = self.cfg.metric;
        let axis = self.sweep_axis(n);
        let mut entries = self.tree.leaf_entries(n).to_vec();
        entries.sort_by(|x, y| x.point[axis].total_cmp(&y.point[axis]));
        for i in 0..entries.len() {
            for j in (i + 1)..entries.len() {
                if entries[j].point[axis] - entries[i].point[axis] > eps {
                    break;
                }
                self.stats.distance_computations += 1;
                if metric.within(&entries[i].point, &entries[j].point, eps) {
                    self.handler.on_link(
                        entries[i].id,
                        &entries[i].point,
                        entries[j].id,
                        &entries[j].point,
                        &mut self.sink,
                        &mut self.stats,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Batched leaf self-join: probes the leaf's struct-of-arrays
    /// coordinate slabs with [`csj_geom::DistKernel`] (SIMD when the host
    /// has it, chunked scalar otherwise). Hit order and comparison counts
    /// are identical to the scalar nested loop on every path.
    fn leaf_self_kernel(&mut self, n: NodeId) -> Result<(), CsjError> {
        let kernel = csj_geom::DistKernel::new(self.cfg.metric, self.cfg.epsilon);
        let tree = self.tree;
        let entries = tree.leaf_entries(n);
        let soa = tree.leaf_soa(n);
        debug_assert_eq!(entries.len(), soa.len(), "leaf_soa must mirror leaf_entries");
        let handler = &mut self.handler;
        let sink = &mut self.sink;
        let stats = &mut self.stats;
        let mut comps = 0u64;
        let res = kernel.self_join(soa, &mut comps, |i, j| {
            handler.on_link(
                entries[i].id,
                &entries[i].point,
                entries[j].id,
                &entries[j].point,
                &mut *sink,
                &mut *stats,
            )
        });
        stats.distance_computations += comps;
        res
    }

    /// Batched leaf cross-join: the kernel analogue of the scalar nested
    /// loop in [`Engine::join_pair`].
    fn leaf_cross_kernel(&mut self, a: NodeId, b: NodeId) -> Result<(), CsjError> {
        let kernel = csj_geom::DistKernel::new(self.cfg.metric, self.cfg.epsilon);
        let tree = self.tree;
        let ea = tree.leaf_entries(a);
        let eb = tree.leaf_entries(b);
        let sa = tree.leaf_soa(a);
        let sb = tree.leaf_soa(b);
        debug_assert_eq!(ea.len(), sa.len(), "leaf_soa must mirror leaf_entries");
        debug_assert_eq!(eb.len(), sb.len(), "leaf_soa must mirror leaf_entries");
        let handler = &mut self.handler;
        let sink = &mut self.sink;
        let stats = &mut self.stats;
        let mut comps = 0u64;
        let res = kernel.cross_join(sa, sb, &mut comps, |i, j| {
            handler.on_link(ea[i].id, &ea[i].point, eb[j].id, &eb[j].point, &mut *sink, &mut *stats)
        });
        stats.distance_computations += comps;
        res
    }

    /// Plane-sweep child pairing: children sorted by their lower bound on
    /// the sweep axis; a pair is skipped as soon as the axis gap exceeds ε.
    fn internal_self_sweep(&mut self, n: NodeId) -> Result<(), CsjError> {
        let eps = self.cfg.epsilon;
        let metric = self.cfg.metric;
        let axis = self.sweep_axis(n);
        let mut children: Vec<(f64, f64, NodeId)> = self
            .tree
            .children(n)
            .iter()
            .map(|&c| {
                let m = self.tree.node_mbr(c);
                (m.lo[axis], m.hi[axis], c)
            })
            .collect();
        children.sort_by(|x, y| x.0.total_cmp(&y.0));
        for i in 0..children.len() {
            self.join_node(children[i].2)?;
            for j in (i + 1)..children.len() {
                if children[j].0 - children[i].1 > eps {
                    break; // sorted by lo: every later child is farther
                }
                if self.tree.min_dist(children[i].2, children[j].2, metric) <= eps {
                    self.join_pair(children[i].2, children[j].2)?;
                } else {
                    self.stats.pairs_pruned += 1;
                }
            }
        }
        Ok(())
    }

    /// `simJoin(n1, n2)`: join across two subtrees.
    ///
    /// # Errors
    /// Returns [`CsjError::Storage`] as in [`Self::join_node`].
    pub fn join_pair(&mut self, a: NodeId, b: NodeId) -> Result<(), CsjError> {
        if self.check_stopped() {
            return Ok(());
        }
        self.stats.pair_visits += 1;
        self.stats.touch_node(a.0);
        self.stats.touch_node(b.0);
        let eps = self.cfg.epsilon;
        let metric = self.cfg.metric;

        if self.early_stop && self.tree.pair_diameter(a, b, metric) <= eps {
            self.stats.early_stops_pair += 1;
            let mut ids = Vec::new();
            self.tree.collect_record_ids(a, &mut ids);
            self.tree.collect_record_ids(b, &mut ids);
            let mbr = self.subtree_mbr(a).union(&self.subtree_mbr(b));
            return self.handler.on_subtree(ids, &mbr, &mut self.sink, &mut self.stats);
        }

        match (self.tree.is_leaf(a), self.tree.is_leaf(b)) {
            (true, true) => {
                if self.cfg.plane_sweep {
                    return self.leaf_cross_sweep(a, b);
                }
                if self.cfg.batch_kernel {
                    return self.leaf_cross_kernel(a, b);
                }
                let ea = self.tree.leaf_entries(a);
                let eb = self.tree.leaf_entries(b);
                for x in ea {
                    for y in eb {
                        self.stats.distance_computations += 1;
                        if metric.within(&x.point, &y.point, eps) {
                            self.handler.on_link(
                                x.id,
                                &x.point,
                                y.id,
                                &y.point,
                                &mut self.sink,
                                &mut self.stats,
                            )?;
                        }
                    }
                }
            }
            (true, false) => {
                let children = self.tree.children(b).to_vec();
                for c in children {
                    if self.tree.min_dist(a, c, metric) <= eps {
                        self.join_pair(a, c)?;
                    } else {
                        self.stats.pairs_pruned += 1;
                    }
                }
            }
            (false, true) => {
                let children = self.tree.children(a).to_vec();
                for c in children {
                    if self.tree.min_dist(c, b, metric) <= eps {
                        self.join_pair(c, b)?;
                    } else {
                        self.stats.pairs_pruned += 1;
                    }
                }
            }
            (false, false) => {
                if self.cfg.plane_sweep {
                    return self.internal_cross_sweep(a, b);
                }
                let ca = self.tree.children(a).to_vec();
                let cb = self.tree.children(b).to_vec();
                for &x in &ca {
                    for &y in &cb {
                        if self.tree.min_dist(x, y, metric) <= eps {
                            self.join_pair(x, y)?;
                        } else {
                            self.stats.pairs_pruned += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Plane-sweep leaf cross-join: both entry lists sorted on the sweep
    /// axis of the combined box, joined with a sliding window.
    fn leaf_cross_sweep(&mut self, a: NodeId, b: NodeId) -> Result<(), CsjError> {
        let eps = self.cfg.epsilon;
        let metric = self.cfg.metric;
        let axis = {
            let union = self.tree.node_mbr(a).union(&self.tree.node_mbr(b));
            let mut best = 0;
            let mut best_extent = f64::NEG_INFINITY;
            for d in 0..D {
                if union.extent(d) > best_extent {
                    best_extent = union.extent(d);
                    best = d;
                }
            }
            best
        };
        let mut ea = self.tree.leaf_entries(a).to_vec();
        let mut eb = self.tree.leaf_entries(b).to_vec();
        ea.sort_by(|x, y| x.point[axis].total_cmp(&y.point[axis]));
        eb.sort_by(|x, y| x.point[axis].total_cmp(&y.point[axis]));
        let mut start = 0usize;
        for x in &ea {
            while start < eb.len() && eb[start].point[axis] < x.point[axis] - eps {
                start += 1;
            }
            for y in &eb[start..] {
                if y.point[axis] - x.point[axis] > eps {
                    break;
                }
                self.stats.distance_computations += 1;
                if metric.within(&x.point, &y.point, eps) {
                    self.handler.on_link(
                        x.id,
                        &x.point,
                        y.id,
                        &y.point,
                        &mut self.sink,
                        &mut self.stats,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Plane-sweep internal cross-join: `b`'s children sorted by their
    /// lower bound; for each child of `a`, the scan stops once the axis
    /// gap exceeds ε.
    fn internal_cross_sweep(&mut self, a: NodeId, b: NodeId) -> Result<(), CsjError> {
        let eps = self.cfg.epsilon;
        let metric = self.cfg.metric;
        let axis = {
            let union = self.tree.node_mbr(a).union(&self.tree.node_mbr(b));
            let mut best = 0;
            let mut best_extent = f64::NEG_INFINITY;
            for d in 0..D {
                if union.extent(d) > best_extent {
                    best_extent = union.extent(d);
                    best = d;
                }
            }
            best
        };
        let span = |c: NodeId| {
            let m = self.tree.node_mbr(c);
            (m.lo[axis], m.hi[axis], c)
        };
        let mut ca: Vec<(f64, f64, NodeId)> =
            self.tree.children(a).iter().map(|&c| span(c)).collect();
        let mut cb: Vec<(f64, f64, NodeId)> =
            self.tree.children(b).iter().map(|&c| span(c)).collect();
        ca.sort_by(|x, y| x.0.total_cmp(&y.0));
        cb.sort_by(|x, y| x.0.total_cmp(&y.0));
        for &(_, x_hi, x) in &ca {
            for &(y_lo, _, y) in &cb {
                if y_lo - x_hi > eps {
                    break; // sorted by lo: all later children are farther
                }
                if self.tree.min_dist(x, y, metric) <= eps {
                    self.join_pair(x, y)?;
                } else {
                    self.stats.pairs_pruned += 1;
                }
            }
        }
        Ok(())
    }
}

/// Unwraps a result that cannot be `Err` because every sink involved is
/// in-memory (infallible). Kept as a function so the reasoning is in one
/// place rather than scattered `unwrap`s.
pub(crate) fn infallible<T>(res: Result<T, CsjError>) -> T {
    match res {
        Ok(v) => v,
        Err(e) => unreachable!("in-memory join cannot fail, yet got: {e}"),
    }
}

/// Runs an engine that collects rows, packaging the result.
pub fn run_collecting<T, H, const D: usize>(
    tree: &T,
    cfg: JoinConfig,
    early_stop: bool,
    handler: H,
) -> JoinOutput
where
    T: JoinIndex<D>,
    H: LinkHandler<D>,
{
    let mut engine = Engine::new(tree, cfg, early_stop, handler, CollectSink::default());
    infallible(engine.run());
    JoinOutput {
        items: std::mem::take(&mut engine.sink.items),
        stats: engine.stats,
        ..Default::default()
    }
}

/// Runs an engine that streams rows into `writer`, returning the stats.
/// Sink failures (full disk, injected faults) surface as `Err`; rows
/// already written remain valid join output.
///
/// # Errors
/// Returns [`CsjError::Storage`] when the sink rejects a write; a
/// budget or cancel stop ends the run early but still returns `Ok`
/// with the stats accumulated so far.
pub fn run_streaming<T, H, S, const D: usize>(
    tree: &T,
    cfg: JoinConfig,
    early_stop: bool,
    handler: H,
    writer: &mut OutputWriter<S>,
) -> Result<JoinStats, CsjError>
where
    T: JoinIndex<D>,
    H: LinkHandler<D>,
    S: OutputSink,
{
    let mut engine = Engine::new(tree, cfg, early_stop, handler, StreamSink::new(writer));
    engine.run()?;
    Ok(engine.stats)
}

#[cfg(test)]
mod sweep_tests {
    use crate::brute::brute_force_links;
    use crate::csj::CsjJoin;
    use crate::ncsj::NcsjJoin;
    use crate::ssj::SsjJoin;
    use csj_geom::{Metric, Point};
    use csj_index::{rstar::RStarTree, RTreeConfig};

    fn stripe(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Point::new([t, (t * 29.0).sin() * 0.04])
            })
            .collect()
    }

    #[test]
    fn sweep_reports_the_same_link_set() {
        let pts = stripe(800);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        for eps in [0.004, 0.02, 0.1] {
            let truth = brute_force_links(&pts, eps);
            let plain = SsjJoin::new(eps).run(&tree);
            let swept = SsjJoin::new(eps).with_plane_sweep().run(&tree);
            assert_eq!(plain.expanded_link_set(), truth, "plain eps={eps}");
            assert_eq!(swept.expanded_link_set(), truth, "swept eps={eps}");
            let nc = NcsjJoin::new(eps).with_plane_sweep().run(&tree);
            assert_eq!(nc.expanded_link_set(), truth, "ncsj swept eps={eps}");
            let cs = CsjJoin::new(eps).with_window(10).with_plane_sweep().run(&tree);
            assert_eq!(cs.expanded_link_set(), truth, "csj swept eps={eps}");
        }
    }

    #[test]
    fn sweep_reduces_distance_computations_at_small_eps() {
        // A long thin stripe with small eps: most leaf pairs are far
        // apart along x, exactly what the sweep skips without a distance
        // computation.
        let pts = stripe(2000);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(32));
        let eps = 0.002;
        let plain = SsjJoin::new(eps).run(&tree);
        let swept = SsjJoin::new(eps).with_plane_sweep().run(&tree);
        assert!(
            swept.stats.distance_computations < plain.stats.distance_computations / 2,
            "sweep {} vs plain {}",
            swept.stats.distance_computations,
            plain.stats.distance_computations
        );
        assert_eq!(swept.expanded_link_set(), plain.expanded_link_set());
    }

    #[test]
    fn sweep_correct_under_non_euclidean_metrics() {
        // The sweep prune (axis gap > eps implies distance > eps) must
        // hold for L1 and Linf too.
        let pts = stripe(500);
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        for metric in [Metric::Manhattan, Metric::Chebyshev] {
            let eps = 0.01;
            let plain = SsjJoin::new(eps).with_metric(metric).run(&tree);
            let swept = SsjJoin::new(eps).with_metric(metric).with_plane_sweep().run(&tree);
            assert_eq!(plain.expanded_link_set(), swept.expanded_link_set(), "{metric:?}");
        }
    }

    #[test]
    fn sweep_on_3d_data() {
        let pts: Vec<Point<3>> = (0..600)
            .map(|i| {
                let t = i as f64 / 600.0;
                Point::new([t, (t * 13.0).cos() * 0.05, (t * 7.0).sin() * 0.05])
            })
            .collect();
        let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let eps = 0.01;
        let mut truth = std::collections::BTreeSet::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if pts[i].euclidean(&pts[j]) <= eps {
                    truth.insert((i as u32, j as u32));
                }
            }
        }
        let swept = SsjJoin::new(eps).with_plane_sweep().run(&tree);
        assert_eq!(swept.expanded_link_set(), truth);
    }
}
