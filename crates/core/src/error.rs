//! The crate-level error type for join execution.
//!
//! Joins touch three fallible layers: output storage (`csj-storage`),
//! index persistence (`csj-index::persist`) and their own configuration.
//! [`CsjError`] unifies them so every public `Result` in this crate has
//! one error type, while the per-crate enums stay intact underneath
//! (pattern-match the variant to recover them).

use std::fmt;

use csj_index::persist::PersistError;
use csj_storage::StorageError;

/// Any error a join run can surface.
#[derive(Clone, Debug, PartialEq)]
pub enum CsjError {
    /// The storage layer failed (output sink, page I/O) beyond what
    /// retries could absorb.
    Storage(StorageError),
    /// Index persistence failed (corrupt or unreadable tree file).
    Persist(PersistError),
    /// The requested configuration is invalid.
    InvalidConfig(String),
    /// Sharded execution failed (frame protocol, worker processes).
    Shard(ShardError),
}

/// An error in the multi-process shard execution layer.
///
/// Defined here (rather than in `csj-shard`) so [`CsjError`] can carry
/// it: the shard crate depends on this one, not the other way around.
/// Note that a worker dying *within* the retry budget is not an error —
/// the supervisor retries it; these variants are for failures the
/// supervisor cannot recover from or absorb into a
/// [`Completion::Partial`](crate::Completion).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// A frame on the worker wire was malformed: bad magic, truncated
    /// payload, checksum mismatch, or an unknown frame type.
    Protocol(String),
    /// A worker vanished (EOF / process exit without a result) and the
    /// retry budget could not be applied — e.g. the transport failed to
    /// relaunch it.
    WorkerLost {
        /// Dotted task key of the shard the worker was running.
        shard: String,
        /// Attempts consumed when the worker was declared lost.
        attempts: u32,
    },
    /// Spawning or wiring up a worker process failed.
    Spawn(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Protocol(msg) => write!(f, "frame protocol violation: {msg}"),
            ShardError::WorkerLost { shard, attempts } => {
                write!(f, "worker for shard {shard} lost after {attempts} attempt(s)")
            }
            ShardError::Spawn(msg) => write!(f, "failed to spawn worker: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl fmt::Display for CsjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsjError::Storage(e) => write!(f, "storage: {e}"),
            CsjError::Persist(e) => write!(f, "index persistence: {e}"),
            CsjError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CsjError::Shard(e) => write!(f, "sharded execution: {e}"),
        }
    }
}

impl std::error::Error for CsjError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsjError::Storage(e) => Some(e),
            CsjError::Persist(e) => Some(e),
            CsjError::InvalidConfig(_) => None,
            CsjError::Shard(e) => Some(e),
        }
    }
}

impl From<StorageError> for CsjError {
    fn from(e: StorageError) -> Self {
        CsjError::Storage(e)
    }
}

impl From<PersistError> for CsjError {
    fn from(e: PersistError) -> Self {
        CsjError::Persist(e)
    }
}

impl From<ShardError> for CsjError {
    fn from(e: ShardError) -> Self {
        CsjError::Shard(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csj_storage::IoOp;

    #[test]
    fn conversions_preserve_the_inner_error() {
        let s = StorageError::FaultInjected { op: IoOp::Write, seq: 5 };
        let e: CsjError = s.clone().into();
        assert_eq!(e, CsjError::Storage(s));
        let p = PersistError::ChecksumMismatch;
        let e: CsjError = p.clone().into();
        assert_eq!(e, CsjError::Persist(p));
        let s = ShardError::WorkerLost { shard: "2.0".into(), attempts: 3 };
        let e: CsjError = s.clone().into();
        assert_eq!(e, CsjError::Shard(s));
    }

    #[test]
    fn shard_error_display_names_the_shard() {
        let e = CsjError::Shard(ShardError::WorkerLost { shard: "1".into(), attempts: 2 });
        let text = e.to_string();
        assert!(text.contains("sharded execution"), "{text}");
        assert!(text.contains("shard 1"), "{text}");
        assert!(text.contains("2 attempt"), "{text}");
        let p = ShardError::Protocol("checksum mismatch in Result frame".into());
        assert!(p.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn display_is_layered() {
        let e = CsjError::Persist(PersistError::ChecksumMismatch);
        assert!(e.to_string().contains("checksum"));
        assert!(e.to_string().contains("persistence"));
    }
}
