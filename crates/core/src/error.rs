//! The crate-level error type for join execution.
//!
//! Joins touch three fallible layers: output storage (`csj-storage`),
//! index persistence (`csj-index::persist`) and their own configuration.
//! [`CsjError`] unifies them so every public `Result` in this crate has
//! one error type, while the per-crate enums stay intact underneath
//! (pattern-match the variant to recover them).

use std::fmt;

use csj_index::persist::PersistError;
use csj_storage::StorageError;

/// Any error a join run can surface.
#[derive(Clone, Debug, PartialEq)]
pub enum CsjError {
    /// The storage layer failed (output sink, page I/O) beyond what
    /// retries could absorb.
    Storage(StorageError),
    /// Index persistence failed (corrupt or unreadable tree file).
    Persist(PersistError),
    /// The requested configuration is invalid.
    InvalidConfig(String),
}

impl fmt::Display for CsjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsjError::Storage(e) => write!(f, "storage: {e}"),
            CsjError::Persist(e) => write!(f, "index persistence: {e}"),
            CsjError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for CsjError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsjError::Storage(e) => Some(e),
            CsjError::Persist(e) => Some(e),
            CsjError::InvalidConfig(_) => None,
        }
    }
}

impl From<StorageError> for CsjError {
    fn from(e: StorageError) -> Self {
        CsjError::Storage(e)
    }
}

impl From<PersistError> for CsjError {
    fn from(e: PersistError) -> Self {
        CsjError::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csj_storage::IoOp;

    #[test]
    fn conversions_preserve_the_inner_error() {
        let s = StorageError::FaultInjected { op: IoOp::Write, seq: 5 };
        let e: CsjError = s.clone().into();
        assert_eq!(e, CsjError::Storage(s));
        let p = PersistError::ChecksumMismatch;
        let e: CsjError = p.clone().into();
        assert_eq!(e, CsjError::Persist(p));
    }

    #[test]
    fn display_is_layered() {
        let e = CsjError::Persist(PersistError::ChecksumMismatch);
        assert!(e.to_string().contains("checksum"));
        assert!(e.to_string().contains("persistence"));
    }
}
