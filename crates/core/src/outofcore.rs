//! External-memory joins over page-resident trees.
//!
//! [`OutOfCoreEngine`] is the Figure-3 recursion of [`crate::engine`]
//! re-targeted at a [`PagedTree`]: nodes live in disk pages behind a
//! pinned LRU buffer pool instead of an in-memory arena. Because every
//! pruning and early-stopping decision (`min_dist`, `pair_diameter`,
//! `max_diameter`) is a pure function of node MBRs — and parents store
//! their children's MBRs on the same page — the engine makes the exact
//! decisions the in-memory [`Engine`](crate::engine::Engine) makes, in
//! the exact order, and only faults a child page in when the traversal
//! actually descends into it. The output (links, groups, member order)
//! is **bit-identical** to the in-memory sequential join; only the I/O
//! counters differ.
//!
//! Memory is bounded by two knobs:
//!
//! * the buffer pool (`pool_pages × PAGE_SIZE` bytes of resident
//!   nodes; in-use pages are pinned, at most two at once — a
//!   leaf-pair probe);
//! * the optional [`Prefetcher`] staging budget (bytes of read-ahead
//!   admitted to the frontier).
//!
//! The prefetcher is a dedicated I/O thread with its own
//! [`FileDisk`] handle. The engine enqueues the child pages it is
//! about to visit; the thread reads them while the compute thread
//! probes leaves, and finished pages are handed to the store as staged
//! bytes ([`PagedStore::stage_raw`]) so the next miss skips its
//! synchronous disk read. Staging only changes *who reads the bytes*,
//! never what the traversal does — prefetch failures are silently
//! dropped and the page is simply read synchronously when needed.

use std::collections::VecDeque;

use csj_geom::Mbr;
use csj_index::paged::{PagedStats, PagedTree};
use csj_storage::disk::Disk;
use csj_storage::{FileDisk, OutputSink, OutputWriter, PageId, PAGE_SIZE};

use crate::budget::{CancelToken, StopReason};
use crate::engine::{CollectSink, DirectEmit, LinkHandler, RowSink, StreamSink, WindowedEmit};
use crate::error::CsjError;
use crate::group::{BallShape, MbrShape};
use crate::output::JoinOutput;
use crate::stats::JoinStats;
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{yield_now, Arc, Mutex};
use crate::JoinConfig;

/// Re-export of the CSJ group-shape selector for out-of-core runs.
pub use crate::csj::GroupShapeKind;

/// Locks a facade mutex, recovering from poisoning (the holder can only
/// be the prefetch thread, whose state is a plain byte queue — always
/// consistent).
fn lock<T>(m: &Mutex<T>) -> crate::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Shared state between the engine thread and the prefetch I/O thread.
struct PrefetchShared {
    /// Pages the engine wants read, oldest first.
    queue: Mutex<VecDeque<u64>>,
    /// Pages read and awaiting hand-off to the store.
    ready: Mutex<Vec<(u64, Vec<u8>)>>,
    /// Bytes held in `ready` — the admission gate.
    ready_bytes: AtomicUsize,
    /// Max bytes of read-ahead admitted to `ready`.
    budget: usize,
}

/// Asynchronous page read-ahead on a dedicated I/O thread.
///
/// The thread owns a private [`FileDisk`] handle onto the same page
/// file, so its reads never contend with the engine's pager state. New
/// frontier pages are admitted only while the staged bytes are under
/// the construction-time budget; beyond it the thread idles until the
/// engine drains.
pub struct Prefetcher {
    shared: Arc<PrefetchShared>,
    cancel: CancelToken,
    handle: Option<std::thread::JoinHandle<()>>,
    /// Pages handed to the store over the run (telemetry).
    staged_total: u64,
}

impl std::fmt::Debug for Prefetcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prefetcher")
            .field("budget_bytes", &self.shared.budget)
            .field("staged_total", &self.staged_total)
            .finish()
    }
}

impl Prefetcher {
    /// Spawns the I/O thread over its own handle to the page file at
    /// `path`, staging at most `budget_bytes` of read-ahead.
    ///
    /// # Errors
    /// Returns [`CsjError::Storage`] when the page file cannot be
    /// opened.
    pub fn spawn(path: &std::path::Path, budget_bytes: usize) -> Result<Self, CsjError> {
        let mut disk = FileDisk::open(path)?;
        let shared = Arc::new(PrefetchShared {
            queue: Mutex::new(VecDeque::new()),
            ready: Mutex::new(Vec::new()),
            ready_bytes: AtomicUsize::new(0),
            budget: budget_bytes.max(PAGE_SIZE),
        });
        let cancel = CancelToken::new();
        let thread_shared = Arc::clone(&shared);
        let thread_cancel = cancel.clone();
        let handle = std::thread::spawn(move || {
            while !thread_cancel.is_canceled() {
                // ORDERING: Acquire pairs with the engine's AcqRel
                // fetch_sub in drain_into — the gate must observe a
                // drain before treating budget as free again.
                if thread_shared.ready_bytes.load(Ordering::Acquire) + PAGE_SIZE
                    > thread_shared.budget
                {
                    yield_now(); // frontier full: wait for the engine to drain
                    continue;
                }
                let next = lock(&thread_shared.queue).pop_front();
                let Some(page) = next else {
                    yield_now();
                    continue;
                };
                // A failed read-ahead is not an error: the engine will
                // read the page synchronously and surface the failure
                // (with retries) itself.
                if let Ok(p) = disk.read(PageId(page)) {
                    // ORDERING: AcqRel makes the byte-count increment a
                    // synchronization point with the gate's Acquire load
                    // and the engine's fetch_sub on drain.
                    thread_shared.ready_bytes.fetch_add(p.data.len(), Ordering::AcqRel);
                    lock(&thread_shared.ready).push((page, p.data));
                }
            }
        });
        Ok(Prefetcher { shared, cancel, handle: Some(handle), staged_total: 0 })
    }

    /// Requests read-ahead of `pages` (frontier children about to be
    /// visited).
    fn enqueue(&self, pages: impl IntoIterator<Item = PageId>) {
        lock(&self.shared.queue).extend(pages.into_iter().map(|p| p.0));
    }

    /// Moves every completed read into the store's staging area.
    fn drain_into<const D: usize, Dk: Disk>(
        &mut self,
        store: &csj_index::paged::PagedStore<D, Dk>,
    ) {
        let done: Vec<(u64, Vec<u8>)> = std::mem::take(&mut *lock(&self.shared.ready));
        for (page, bytes) in done {
            // ORDERING: AcqRel pairs with the prefetch thread's Acquire
            // gate load, publishing the freed budget before the next
            // read-ahead is admitted.
            self.shared.ready_bytes.fetch_sub(bytes.len(), Ordering::AcqRel);
            if store.stage_raw(PageId(page), bytes) {
                self.staged_total += 1;
            }
        }
    }

    /// Pages handed to the store over the run.
    pub fn staged_total(&self) -> u64 {
        self.staged_total
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.cancel.cancel();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A node as the traversal sees it *before* reading its page: identity
/// plus the MBR and level its parent recorded. Everything the pruning
/// rules need, no I/O.
#[derive(Clone, Copy, Debug)]
struct NodeRef<const D: usize> {
    page: PageId,
    mbr: Mbr<D>,
    level: u32,
}

impl<const D: usize> NodeRef<D> {
    fn is_leaf(&self) -> bool {
        self.level == 0
    }
}

/// The out-of-core Figure-3 recursion (see the module docs).
pub struct OutOfCoreEngine<'t, H, R, const D: usize, Dk: Disk> {
    tree: &'t PagedTree<D, Dk>,
    cfg: JoinConfig,
    early_stop: bool,
    handler: H,
    cancel: Option<CancelToken>,
    stopped: Option<StopReason>,
    prefetch: Option<Prefetcher>,
    /// The row sink (public so callers can recover collected rows).
    pub sink: R,
    /// Accumulated counters.
    pub stats: JoinStats,
}

impl<'t, H, R, const D: usize, Dk> OutOfCoreEngine<'t, H, R, D, Dk>
where
    H: LinkHandler<D>,
    R: RowSink,
    Dk: Disk,
{
    /// Builds an engine over a paged tree; `early_stop` enables the
    /// compact-join group rules exactly as in the in-memory engine.
    pub fn new(
        tree: &'t PagedTree<D, Dk>,
        cfg: JoinConfig,
        early_stop: bool,
        handler: H,
        sink: R,
    ) -> Self {
        let stats = JoinStats { threads_used: 1, ..JoinStats::new(cfg.record_access_log) };
        OutOfCoreEngine {
            tree,
            cfg,
            early_stop,
            handler,
            cancel: None,
            stopped: None,
            prefetch: None,
            sink,
            stats,
        }
    }

    /// Arms cooperative cancellation (checked on every node/pair visit).
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Attaches an async prefetcher; frontier child pages are enqueued
    /// as the traversal expands internal nodes.
    pub fn set_prefetcher(&mut self, prefetcher: Prefetcher) {
        self.prefetch = Some(prefetcher);
    }

    /// Why the traversal stopped early, if it did.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stopped
    }

    /// Pages the prefetcher staged for the store over the run.
    pub fn prefetch_staged(&self) -> u64 {
        self.prefetch.as_ref().map_or(0, Prefetcher::staged_total)
    }

    /// Buffer-pool / disk / prefetch counters for the run so far.
    pub fn paged_stats(&self) -> PagedStats {
        self.tree.stats()
    }

    fn check_stopped(&mut self) -> bool {
        if self.stopped.is_some() {
            return true;
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_canceled) {
            self.stopped = Some(StopReason::Canceled);
            return true;
        }
        false
    }

    /// Runs the full self-join.
    ///
    /// # Errors
    /// Returns [`CsjError::InvalidConfig`] for options the out-of-core
    /// path does not support (plane-sweep ordering) and
    /// [`CsjError::Storage`] when a page read fails beyond retry or the
    /// sink rejects a row.
    pub fn run(&mut self) -> Result<(), CsjError> {
        if self.cfg.plane_sweep {
            return Err(CsjError::InvalidConfig(
                "plane-sweep ordering is not supported out-of-core (its child reordering \
                 changes the visit order; run it in-memory instead)"
                    .into(),
            ));
        }
        if let Some(root_page) = self.tree.root() {
            // One page read up front for the root's own MBR and level —
            // its parent-side summary does not exist.
            let root = {
                let guard = self.tree.node(root_page)?;
                NodeRef { page: root_page, mbr: guard.mbr, level: guard.level }
            };
            self.join_node(root)?;
        }
        self.finish_only()
    }

    /// Runs only the handler's finish step (drains the CSJ window).
    ///
    /// # Errors
    /// Returns [`CsjError::Storage`] when draining into the sink fails.
    pub fn finish_only(&mut self) -> Result<(), CsjError> {
        self.handler.finish(&mut self.sink, &mut self.stats)
    }

    /// The subtree group MBR, mirroring the in-memory engine: the
    /// node's stored shape by default, recomputed from member points
    /// when configured.
    fn subtree_mbr(&self, n: &NodeRef<D>) -> Result<Mbr<D>, CsjError> {
        if self.cfg.tighten_group_mbr {
            let mut entries = Vec::new();
            self.tree.collect_entries(n.page, &mut entries)?;
            let mut mbr = Mbr::empty();
            for e in &entries {
                mbr.expand_to_point(&e.point);
            }
            Ok(mbr)
        } else {
            Ok(n.mbr)
        }
    }

    /// Clones an internal node's child summaries out of its (pinned)
    /// page, releasing the pin before any recursion, and lets the
    /// prefetcher start on them.
    fn expand(&mut self, n: &NodeRef<D>) -> Result<Vec<NodeRef<D>>, CsjError> {
        let children: Vec<NodeRef<D>> = {
            let guard = self.tree.node(n.page)?;
            guard
                .children
                .iter()
                .map(|&(page, mbr)| NodeRef { page, mbr, level: n.level - 1 })
                .collect()
        };
        if let Some(pf) = self.prefetch.as_mut() {
            pf.enqueue(children.iter().map(|c| c.page));
            pf.drain_into(self.tree.store());
        }
        Ok(children)
    }

    /// `simJoin(n)`: self-join of one subtree. Mirrors
    /// [`Engine::join_node`](crate::engine::Engine::join_node) line for
    /// line.
    fn join_node(&mut self, n: NodeRef<D>) -> Result<(), CsjError> {
        if self.check_stopped() {
            return Ok(());
        }
        self.stats.node_visits += 1;
        self.stats.touch_node(n.page.0 as u32);
        let eps = self.cfg.epsilon;
        let metric = self.cfg.metric;

        if self.early_stop && metric.mbr_diameter(&n.mbr) <= eps {
            self.stats.early_stops_node += 1;
            let mut ids = Vec::new();
            self.tree.collect_record_ids(n.page, &mut ids)?;
            let mbr = self.subtree_mbr(&n)?;
            return self.handler.on_subtree(ids, &mbr, &mut self.sink, &mut self.stats);
        }

        if n.is_leaf() {
            if self.cfg.batch_kernel {
                return self.leaf_self_kernel(&n);
            }
            let tree = self.tree;
            let guard = tree.node(n.page)?;
            let entries = guard.entries.entries();
            for i in 0..entries.len() {
                for j in (i + 1)..entries.len() {
                    self.stats.distance_computations += 1;
                    if metric.within(&entries[i].point, &entries[j].point, eps) {
                        self.handler.on_link(
                            entries[i].id,
                            &entries[i].point,
                            entries[j].id,
                            &entries[j].point,
                            &mut self.sink,
                            &mut self.stats,
                        )?;
                    }
                }
            }
        } else {
            let children = self.expand(&n)?;
            for (i, a) in children.iter().enumerate() {
                self.join_node(*a)?;
                for b in &children[(i + 1)..] {
                    if metric.min_dist_mbr(&a.mbr, &b.mbr) <= eps {
                        self.join_pair(*a, *b)?;
                    } else {
                        self.stats.pairs_pruned += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// `simJoin(n1, n2)`: join across two subtrees, mirroring
    /// [`Engine::join_pair`](crate::engine::Engine::join_pair).
    fn join_pair(&mut self, a: NodeRef<D>, b: NodeRef<D>) -> Result<(), CsjError> {
        if self.check_stopped() {
            return Ok(());
        }
        self.stats.pair_visits += 1;
        self.stats.touch_node(a.page.0 as u32);
        self.stats.touch_node(b.page.0 as u32);
        let eps = self.cfg.epsilon;
        let metric = self.cfg.metric;

        if self.early_stop && metric.max_dist_mbr(&a.mbr, &b.mbr) <= eps {
            self.stats.early_stops_pair += 1;
            let mut ids = Vec::new();
            self.tree.collect_record_ids(a.page, &mut ids)?;
            self.tree.collect_record_ids(b.page, &mut ids)?;
            let mbr = self.subtree_mbr(&a)?.union(&self.subtree_mbr(&b)?);
            return self.handler.on_subtree(ids, &mbr, &mut self.sink, &mut self.stats);
        }

        match (a.is_leaf(), b.is_leaf()) {
            (true, true) => {
                if self.cfg.batch_kernel {
                    return self.leaf_cross_kernel(&a, &b);
                }
                let tree = self.tree;
                let ga = tree.node(a.page)?;
                let gb = tree.node(b.page)?;
                for x in ga.entries.iter() {
                    for y in gb.entries.iter() {
                        self.stats.distance_computations += 1;
                        if metric.within(&x.point, &y.point, eps) {
                            self.handler.on_link(
                                x.id,
                                &x.point,
                                y.id,
                                &y.point,
                                &mut self.sink,
                                &mut self.stats,
                            )?;
                        }
                    }
                }
            }
            (true, false) => {
                let children = self.expand(&b)?;
                for c in children {
                    if metric.min_dist_mbr(&a.mbr, &c.mbr) <= eps {
                        self.join_pair(a, c)?;
                    } else {
                        self.stats.pairs_pruned += 1;
                    }
                }
            }
            (false, true) => {
                let children = self.expand(&a)?;
                for c in children {
                    if metric.min_dist_mbr(&c.mbr, &b.mbr) <= eps {
                        self.join_pair(c, b)?;
                    } else {
                        self.stats.pairs_pruned += 1;
                    }
                }
            }
            (false, false) => {
                let ca = self.expand(&a)?;
                let cb = self.expand(&b)?;
                for x in &ca {
                    for y in &cb {
                        if metric.min_dist_mbr(&x.mbr, &y.mbr) <= eps {
                            self.join_pair(*x, *y)?;
                        } else {
                            self.stats.pairs_pruned += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Batched leaf self-join over the page-resident leaf's
    /// struct-of-arrays slabs. Hit order and comparison counts match
    /// the in-memory kernel path exactly.
    fn leaf_self_kernel(&mut self, n: &NodeRef<D>) -> Result<(), CsjError> {
        let kernel = csj_geom::DistKernel::new(self.cfg.metric, self.cfg.epsilon);
        let tree = self.tree;
        let guard = tree.node(n.page)?;
        let entries = guard.entries.entries();
        let soa = guard.entries.soa();
        let handler = &mut self.handler;
        let sink = &mut self.sink;
        let stats = &mut self.stats;
        let mut comps = 0u64;
        let res = kernel.self_join(soa, &mut comps, |i, j| {
            handler.on_link(
                entries[i].id,
                &entries[i].point,
                entries[j].id,
                &entries[j].point,
                &mut *sink,
                &mut *stats,
            )
        });
        stats.distance_computations += comps;
        res
    }

    /// Batched leaf cross-join; both leaf pages stay pinned for the
    /// probe (the pool's two-pin high-water mark).
    fn leaf_cross_kernel(&mut self, a: &NodeRef<D>, b: &NodeRef<D>) -> Result<(), CsjError> {
        let kernel = csj_geom::DistKernel::new(self.cfg.metric, self.cfg.epsilon);
        let tree = self.tree;
        let ga = tree.node(a.page)?;
        let gb = tree.node(b.page)?;
        let ea = ga.entries.entries();
        let eb = gb.entries.entries();
        let sa = ga.entries.soa();
        let sb = gb.entries.soa();
        let handler = &mut self.handler;
        let sink = &mut self.sink;
        let stats = &mut self.stats;
        let mut comps = 0u64;
        let res = kernel.cross_join(sa, sb, &mut comps, |i, j| {
            handler.on_link(ea[i].id, &ea[i].point, eb[j].id, &eb[j].point, &mut *sink, &mut *stats)
        });
        stats.distance_computations += comps;
        res
    }
}

/// Which join variant an [`OutOfCoreJoin`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinVariant {
    /// Plain similarity self-join: every link individually.
    Ssj,
    /// Non-windowed compact join: early stopping, no merge window.
    Ncsj,
    /// Compact join with a window of `g` recent groups.
    Csj {
        /// The window size `g`.
        window: usize,
    },
}

/// Configuration for a complete out-of-core join run: variant, join
/// parameters, and an optional prefetch budget.
#[derive(Debug)]
pub struct OutOfCoreJoin {
    cfg: JoinConfig,
    variant: JoinVariant,
    shape: GroupShapeKind,
    prefetch_budget: Option<usize>,
}

impl OutOfCoreJoin {
    /// An out-of-core run of `variant` with range `epsilon`.
    pub fn new(variant: JoinVariant, epsilon: f64) -> Self {
        OutOfCoreJoin {
            cfg: JoinConfig::new(epsilon),
            variant,
            shape: GroupShapeKind::Mbr,
            prefetch_budget: None,
        }
    }

    /// Replaces the full join configuration.
    pub fn with_config(mut self, cfg: JoinConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Selects the CSJ group bounding shape.
    pub fn with_shape(mut self, shape: GroupShapeKind) -> Self {
        self.shape = shape;
        self
    }

    /// Enables async prefetch with the given staging budget in bytes
    /// (effective only on [`FileDisk`]-backed trees).
    pub fn with_prefetch_budget(mut self, bytes: usize) -> Self {
        self.prefetch_budget = Some(bytes);
        self
    }

    /// The configuration this join runs with.
    pub fn config(&self) -> &JoinConfig {
        &self.cfg
    }

    fn early_stop(&self) -> bool {
        !matches!(self.variant, JoinVariant::Ssj)
    }

    fn spawn_prefetcher(
        &self,
        path: Option<&std::path::Path>,
    ) -> Result<Option<Prefetcher>, CsjError> {
        match (self.prefetch_budget, path) {
            (Some(budget), Some(path)) => Ok(Some(Prefetcher::spawn(path, budget)?)),
            _ => Ok(None),
        }
    }

    fn run_engine<H, R, const D: usize, Dk>(
        &self,
        tree: &PagedTree<D, Dk>,
        handler: H,
        sink: R,
        path: Option<&std::path::Path>,
    ) -> Result<(R, JoinStats, u64), CsjError>
    where
        H: LinkHandler<D>,
        R: RowSink,
        Dk: Disk,
    {
        let mut engine = OutOfCoreEngine::new(tree, self.cfg, self.early_stop(), handler, sink);
        if let Some(pf) = self.spawn_prefetcher(path)? {
            engine.set_prefetcher(pf);
        }
        engine.run()?;
        let staged = engine.prefetch_staged();
        Ok((engine.sink, engine.stats, staged))
    }

    fn dispatch<R, const D: usize, Dk>(
        &self,
        tree: &PagedTree<D, Dk>,
        sink: R,
        path: Option<&std::path::Path>,
    ) -> Result<(R, JoinStats, u64), CsjError>
    where
        R: RowSink,
        Dk: Disk,
    {
        let eps = self.cfg.epsilon;
        let metric = self.cfg.metric;
        match (self.variant, self.shape) {
            (JoinVariant::Ssj | JoinVariant::Ncsj, _) => {
                self.run_engine(tree, DirectEmit, sink, path)
            }
            (JoinVariant::Csj { window }, GroupShapeKind::Mbr) => self.run_engine(
                tree,
                WindowedEmit::<MbrShape<D>, D>::new(window, eps, metric),
                sink,
                path,
            ),
            (JoinVariant::Csj { window }, GroupShapeKind::Ball) => self.run_engine(
                tree,
                WindowedEmit::<BallShape<D>, D>::new(window, eps, metric),
                sink,
                path,
            ),
        }
    }

    /// Runs the join, collecting rows in memory. Pass the page-file
    /// path as `prefetch_path` (for [`FileDisk`] trees) to activate the
    /// configured prefetch budget.
    ///
    /// # Errors
    /// Returns [`CsjError::Storage`] for unrecoverable page I/O
    /// failures and [`CsjError::InvalidConfig`] for unsupported
    /// options.
    pub fn run<const D: usize, Dk: Disk>(
        &self,
        tree: &PagedTree<D, Dk>,
        prefetch_path: Option<&std::path::Path>,
    ) -> Result<JoinOutput, CsjError> {
        let (sink, stats, _) = self.dispatch(tree, CollectSink::default(), prefetch_path)?;
        Ok(JoinOutput { items: sink.items, stats, ..Default::default() })
    }

    /// Runs the join, streaming rows into `writer`.
    ///
    /// # Errors
    /// As [`OutOfCoreJoin::run`], plus sink write failures.
    pub fn run_streaming<S: OutputSink, const D: usize, Dk: Disk>(
        &self,
        tree: &PagedTree<D, Dk>,
        writer: &mut OutputWriter<S>,
        prefetch_path: Option<&std::path::Path>,
    ) -> Result<JoinStats, CsjError> {
        let (_, stats, _) = self.dispatch(tree, StreamSink::new(writer), prefetch_path)?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csj::CsjJoin;
    use crate::engine::{run_collecting, Engine};
    use crate::ncsj::NcsjJoin;
    use crate::ssj::SsjJoin;
    use csj_geom::Point;
    use csj_index::{rstar::RStarTree, RTreeConfig};
    use csj_storage::{RetryPolicy, SimulatedDisk, VecSink};
    use proptest::prelude::*;

    fn scatter(n: usize, salt: u64) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(salt)
                    .rotate_left(17);
                let x = (h % 100_000) as f64 / 100_000.0;
                let y = ((h >> 20) % 100_000) as f64 / 100_000.0;
                Point::new([x, y])
            })
            .collect()
    }

    fn temp_pages(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("csj_ooc_{tag}_{}.pages", std::process::id()))
    }

    fn assert_same_run(mem: &JoinOutput, ooc: &JoinOutput, label: &str) {
        assert_eq!(mem.items, ooc.items, "{label}: rows must be bit-identical");
        let (m, o) = (&mem.stats, &ooc.stats);
        assert_eq!(m.node_visits, o.node_visits, "{label}: node_visits");
        assert_eq!(m.pair_visits, o.pair_visits, "{label}: pair_visits");
        assert_eq!(m.distance_computations, o.distance_computations, "{label}: comps");
        assert_eq!(m.early_stops_node, o.early_stops_node, "{label}: early_stops_node");
        assert_eq!(m.early_stops_pair, o.early_stops_pair, "{label}: early_stops_pair");
        assert_eq!(m.pairs_pruned, o.pairs_pruned, "{label}: pairs_pruned");
        assert_eq!(m.links_emitted, o.links_emitted, "{label}: links_emitted");
        assert_eq!(m.groups_emitted, o.groups_emitted, "{label}: groups_emitted");
    }

    fn variants() -> [(JoinVariant, &'static str); 3] {
        [
            (JoinVariant::Ssj, "ssj"),
            (JoinVariant::Ncsj, "ncsj"),
            (JoinVariant::Csj { window: 10 }, "csj10"),
        ]
    }

    fn in_memory(variant: JoinVariant, eps: f64, tree: &RStarTree<2>) -> JoinOutput {
        match variant {
            JoinVariant::Ssj => SsjJoin::new(eps).run(tree),
            JoinVariant::Ncsj => NcsjJoin::new(eps).run(tree),
            JoinVariant::Csj { window } => CsjJoin::new(eps).with_window(window).run(tree),
        }
    }

    #[test]
    fn bit_identical_to_in_memory_on_simulated_disk() {
        let pts = scatter(1500, 7);
        let eps = 0.02;
        let rtree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        for (variant, name) in variants() {
            let mem = in_memory(variant, eps, &rtree);
            for pool in [2usize, 3, 4, 64] {
                let tree = PagedTree::from_core(
                    rtree.core(),
                    SimulatedDisk::new(),
                    RetryPolicy::none(),
                    pool,
                )
                .unwrap();
                let ooc = OutOfCoreJoin::new(variant, eps).run(&tree, None).unwrap();
                assert_same_run(&mem, &ooc, &format!("{name} pool={pool}"));
            }
        }
    }

    #[test]
    fn bit_identical_with_scalar_leaf_probes() {
        // The no-batch-kernel path takes the nested scalar loops.
        let pts = scatter(800, 3);
        let eps = 0.03;
        let cfg = JoinConfig::new(eps).with_scalar_leaf_probe();
        let rtree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(8));
        let mem = run_collecting(&rtree, cfg, true, DirectEmit);
        let tree = PagedTree::from_core(rtree.core(), SimulatedDisk::new(), RetryPolicy::none(), 3)
            .unwrap();
        let ooc =
            OutOfCoreJoin::new(JoinVariant::Ncsj, eps).with_config(cfg).run(&tree, None).unwrap();
        assert_same_run(&mem, &ooc, "scalar ncsj");
    }

    #[test]
    fn bit_identical_on_a_real_page_file() {
        let pts = scatter(1200, 11);
        let eps = 0.025;
        let rtree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let path = temp_pages("identity");
        for (variant, name) in variants() {
            let mem = in_memory(variant, eps, &rtree);
            let disk = csj_storage::FileDisk::create(&path).unwrap();
            let tree =
                PagedTree::from_core(rtree.core(), disk, RetryPolicy::no_backoff(2), 8).unwrap();
            let ooc = OutOfCoreJoin::new(variant, eps).run(&tree, None).unwrap();
            assert_same_run(&mem, &ooc, &format!("filedisk {name}"));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn streamed_output_bytes_identical() {
        let pts = scatter(900, 5);
        let eps = 0.03;
        let rtree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let width = OutputWriter::<VecSink>::id_width_for(pts.len());
        let mut mem_writer = OutputWriter::new(VecSink::new(), width);
        let mut engine = Engine::new(
            &rtree,
            JoinConfig::new(eps),
            true,
            DirectEmit,
            StreamSink::new(&mut mem_writer),
        );
        engine.run().unwrap();
        let tree = PagedTree::from_core(rtree.core(), SimulatedDisk::new(), RetryPolicy::none(), 4)
            .unwrap();
        let mut ooc_writer = OutputWriter::new(VecSink::new(), width);
        OutOfCoreJoin::new(JoinVariant::Ncsj, eps)
            .run_streaming(&tree, &mut ooc_writer, None)
            .unwrap();
        assert_eq!(
            mem_writer.sink().as_str(),
            ooc_writer.sink().as_str(),
            "the on-disk output file must be byte-identical"
        );
    }

    #[test]
    fn prefetch_preserves_output_on_file_disk() {
        let pts = scatter(2000, 23);
        let eps = 0.02;
        let rtree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let mem = in_memory(JoinVariant::Csj { window: 10 }, eps, &rtree);
        let path = temp_pages("prefetch");
        let disk = csj_storage::FileDisk::create(&path).unwrap();
        let tree = PagedTree::from_core(rtree.core(), disk, RetryPolicy::no_backoff(2), 6).unwrap();
        let ooc = OutOfCoreJoin::new(JoinVariant::Csj { window: 10 }, eps)
            .with_prefetch_budget(64 * PAGE_SIZE)
            .run(&tree, Some(&path))
            .unwrap();
        assert_same_run(&mem, &ooc, "prefetched csj10");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pool_of_one_cannot_pin_a_leaf_pair() {
        let pts = scatter(600, 2);
        let eps = 0.05; // wide enough to force cross-leaf probes
        let rtree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let tree = PagedTree::from_core(rtree.core(), SimulatedDisk::new(), RetryPolicy::none(), 1)
            .unwrap();
        let err = OutOfCoreJoin::new(JoinVariant::Ssj, eps).run(&tree, None).unwrap_err();
        match err {
            CsjError::Storage(csj_storage::StorageError::AllPagesPinned { capacity }) => {
                assert_eq!(capacity, 1);
            }
            other => panic!("expected AllPagesPinned, got {other}"),
        }
    }

    #[test]
    fn plane_sweep_is_rejected() {
        let pts = scatter(100, 9);
        let rtree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(10));
        let tree = PagedTree::from_core(rtree.core(), SimulatedDisk::new(), RetryPolicy::none(), 4)
            .unwrap();
        let cfg = JoinConfig::new(0.05).with_plane_sweep();
        let err = OutOfCoreJoin::new(JoinVariant::Ncsj, 0.05)
            .with_config(cfg)
            .run(&tree, None)
            .unwrap_err();
        assert!(matches!(err, CsjError::InvalidConfig(_)), "got {err}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The tentpole invariant: out-of-core joins are bit-identical
        /// to the in-memory engine for every variant, across pool sizes
        /// down to the pathological minimum of two frames, on both disk
        /// backends.
        #[test]
        fn outofcore_matches_in_memory(
            n in 64usize..400,
            salt in 0u64..1000,
            eps in 0.005f64..0.08,
            pool in 2usize..6,
            fanout in 4usize..16,
            use_file in any::<bool>(),
        ) {
            let pts = scatter(n, salt);
            let rtree = RStarTree::bulk_load_str(&pts, RTreeConfig::with_max_fanout(fanout));
            for (variant, name) in variants() {
                let mem = in_memory(variant, eps, &rtree);
                let ooc = if use_file {
                    let path = temp_pages(&format!("prop_{salt}_{n}_{name}"));
                    let disk = csj_storage::FileDisk::create(&path).unwrap();
                    let tree = PagedTree::from_core(
                        rtree.core(), disk, RetryPolicy::no_backoff(2), pool).unwrap();
                    let out = OutOfCoreJoin::new(variant, eps).run(&tree, None).unwrap();
                    let _ = std::fs::remove_file(&path);
                    out
                } else {
                    let tree = PagedTree::from_core(
                        rtree.core(), SimulatedDisk::new(), RetryPolicy::none(), pool).unwrap();
                    OutOfCoreJoin::new(variant, eps).run(&tree, None).unwrap()
                };
                assert_same_run(&mem, &ooc, &format!("prop {name} pool={pool}"));
            }
        }
    }
}
