//! CSJ(g) — the compact similarity join with a merge window (§IV-C).
//!
//! N-CSJ plus the `mergeIntoPrevGroup` routine: every residual link is
//! offered to the `g` most recently created groups; a group accepts when
//! its bounding shape, extended to cover the link, still has diameter ≤ ε.
//! Links that fit nowhere open a new group of their own. Because of the
//! tree's spatial locality, recent groups are near the current link, so a
//! small window (the paper recommends `g ≈ 10`) captures most
//! cross-subtree links — typically halving the output again vs N-CSJ.

use csj_index::JoinIndex;
use csj_storage::{OutputSink, OutputWriter};

use crate::engine::{run_collecting, run_streaming, WindowedEmit};
use crate::error::CsjError;
use crate::group::{BallShape, MbrShape};
use crate::output::JoinOutput;
use crate::stats::JoinStats;
use crate::JoinConfig;

/// Which bounding shape open groups use (§V-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GroupShapeKind {
    /// Minimum bounding hyper-rectangle, diagonal ≤ ε (the paper's
    /// choice: constant-time updates, reuses tree node shapes).
    #[default]
    Mbr,
    /// Bounding ball, diameter ≤ ε (covers more volume per group, but
    /// centers are updated approximately).
    Ball,
}

/// The compact similarity self-join with a window of `g` recent groups.
///
/// ```
/// use csj_core::{csj::CsjJoin, ncsj::NcsjJoin};
/// use csj_geom::Point;
/// use csj_index::{rstar::RStarTree, RTreeConfig};
///
/// let pts: Vec<Point<2>> = (0..200)
///     .map(|i| Point::new([i as f64 * 0.004, (i as f64 * 0.004 * 7.0).sin() * 0.01]))
///     .collect();
/// let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(8));
/// let eps = 0.05;
/// let csj = CsjJoin::new(eps).with_window(10).run(&tree);
/// let ncsj = NcsjJoin::new(eps).run(&tree);
/// // Same information, smaller output.
/// assert_eq!(csj.expanded_link_set(), ncsj.expanded_link_set());
/// assert!(csj.total_bytes(3) <= ncsj.total_bytes(3));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CsjJoin {
    cfg: JoinConfig,
    window: usize,
    shape: GroupShapeKind,
}

impl CsjJoin {
    /// A CSJ with range `epsilon`, the paper's recommended window
    /// `g = 10`, and MBR group shapes.
    pub fn new(epsilon: f64) -> Self {
        CsjJoin { cfg: JoinConfig::new(epsilon), window: 10, shape: GroupShapeKind::Mbr }
    }

    /// A CSJ from an explicit configuration.
    pub fn with_config(cfg: JoinConfig) -> Self {
        CsjJoin { cfg, window: 10, shape: GroupShapeKind::Mbr }
    }

    /// Sets the window size `g` (number of recent groups considered for a
    /// merge). `0` disables merging: every link becomes its own 2-group.
    pub fn with_window(mut self, g: usize) -> Self {
        self.window = g;
        self
    }

    /// Selects the group bounding shape.
    pub fn with_shape(mut self, shape: GroupShapeKind) -> Self {
        self.shape = shape;
        self
    }

    /// Replaces the metric.
    pub fn with_metric(mut self, metric: csj_geom::Metric) -> Self {
        self.cfg.metric = metric;
        self
    }

    /// Enables node-access logging.
    pub fn with_access_log(mut self) -> Self {
        self.cfg.record_access_log = true;
        self
    }

    /// Enables the plane-sweep access ordering (Brinkhoff et al. \[1\]).
    pub fn with_plane_sweep(mut self) -> Self {
        self.cfg.plane_sweep = true;
        self
    }

    /// Recomputes subtree-group MBRs from member points instead of
    /// reusing the node shape (§V-A ablation: tighter groups admit more
    /// merges at the cost of one extra subtree scan per early stop).
    pub fn with_tight_groups(mut self) -> Self {
        self.cfg.tighten_group_mbr = true;
        self
    }

    /// The configuration this join runs with.
    pub fn config(&self) -> &JoinConfig {
        &self.cfg
    }

    /// The window size `g`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Runs the join, collecting rows in memory.
    pub fn run<T: JoinIndex<D>, const D: usize>(&self, tree: &T) -> JoinOutput {
        match self.shape {
            GroupShapeKind::Mbr => run_collecting(
                tree,
                self.cfg,
                true,
                WindowedEmit::<MbrShape<D>, D>::new(self.window, self.cfg.epsilon, self.cfg.metric),
            ),
            GroupShapeKind::Ball => run_collecting(
                tree,
                self.cfg,
                true,
                WindowedEmit::<BallShape<D>, D>::new(
                    self.window,
                    self.cfg.epsilon,
                    self.cfg.metric,
                ),
            ),
        }
    }

    /// Runs the join, streaming rows into `writer` (memory bounded by the
    /// window, not the output). A sink failure surfaces as `Err`; rows
    /// already written remain valid join output.
    ///
    /// # Errors
    /// Returns [`CsjError::Storage`] when the sink rejects a write
    /// (full disk, injected fault).
    pub fn run_streaming<T: JoinIndex<D>, S: OutputSink, const D: usize>(
        &self,
        tree: &T,
        writer: &mut OutputWriter<S>,
    ) -> Result<JoinStats, CsjError> {
        match self.shape {
            GroupShapeKind::Mbr => run_streaming(
                tree,
                self.cfg,
                true,
                WindowedEmit::<MbrShape<D>, D>::new(self.window, self.cfg.epsilon, self.cfg.metric),
                writer,
            ),
            GroupShapeKind::Ball => run_streaming(
                tree,
                self.cfg,
                true,
                WindowedEmit::<BallShape<D>, D>::new(
                    self.window,
                    self.cfg.epsilon,
                    self.cfg.metric,
                ),
                writer,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_links;
    use crate::ncsj::NcsjJoin;
    use crate::ssj::SsjJoin;
    use csj_geom::Point;
    use csj_index::{
        mtree::{MTree, MTreeConfig},
        rstar::RStarTree,
        rtree::RTree,
        RTreeConfig,
    };

    /// Clustered data with plenty of cross-node links.
    fn stripe_points(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Point::new([t, (t * 43.0).sin() * 0.02])
            })
            .collect()
    }

    #[test]
    fn lossless_for_all_window_sizes() {
        let pts = stripe_points(250);
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(6));
        let eps = 0.03;
        let want = brute_force_links(&pts, eps);
        for g in [0usize, 1, 2, 5, 10, 50, 100] {
            let out = CsjJoin::new(eps).with_window(g).run(&tree);
            assert_eq!(out.expanded_link_set(), want, "g={g}");
            assert_eq!(out.num_links(), 0, "CSJ emits only groups (g={g})");
        }
    }

    #[test]
    fn lossless_across_eps_sweep() {
        let pts = stripe_points(180);
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(8));
        for eps in [0.0, 0.005, 0.02, 0.1, 0.5, 1.5] {
            let out = CsjJoin::new(eps).run(&tree);
            assert_eq!(out.expanded_link_set(), brute_force_links(&pts, eps), "eps={eps}");
        }
    }

    #[test]
    fn output_never_larger_than_ncsj_or_ssj() {
        let pts = stripe_points(300);
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(8));
        for eps in [0.01, 0.05, 0.2] {
            let csj = CsjJoin::new(eps).with_window(10).run(&tree);
            let ncsj = NcsjJoin::new(eps).run(&tree);
            let ssj = SsjJoin::new(eps).run(&tree);
            let w = 3;
            assert!(csj.total_bytes(w) <= ncsj.total_bytes(w), "eps={eps} vs ncsj");
            assert!(ncsj.total_bytes(w) <= ssj.total_bytes(w), "eps={eps} vs ssj");
        }
    }

    #[test]
    fn merging_compacts_cross_node_links() {
        let pts = stripe_points(300);
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(8));
        let eps = 0.05;
        let out = CsjJoin::new(eps).with_window(10).run(&tree);
        assert!(out.stats.merges_succeeded > 0, "window merges must happen");
        // Fewer rows than links implied (compaction actually occurred).
        assert!(
            out.stats.rows_emitted() < out.implied_links(),
            "rows {} vs implied links {}",
            out.stats.rows_emitted(),
            out.implied_links()
        );
    }

    #[test]
    fn bigger_window_never_hurts_output_much() {
        // The paper's Figure 6 trend: savings grow toward g≈10 then
        // flatten. We assert monotone-ish behaviour loosely: g=10 is no
        // worse than g=1 and g=100 adds little over g=10.
        let pts = stripe_points(400);
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(8));
        let eps = 0.04;
        let bytes = |g: usize| CsjJoin::new(eps).with_window(g).run(&tree).total_bytes(3) as f64;
        let (b1, b10, b100) = (bytes(1), bytes(10), bytes(100));
        assert!(b10 <= b1 * 1.001, "g=10 ({b10}) worse than g=1 ({b1})");
        assert!(b100 <= b10 * 1.001, "g=100 ({b100}) worse than g=10 ({b10})");
    }

    #[test]
    fn tight_groups_lossless_and_no_larger() {
        let pts = stripe_points(250);
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(8));
        let eps = 0.05;
        let loose = CsjJoin::new(eps).with_window(10).run(&tree);
        let tight = CsjJoin::new(eps).with_window(10).with_tight_groups().run(&tree);
        let want = brute_force_links(&pts, eps);
        assert_eq!(loose.expanded_link_set(), want);
        assert_eq!(tight.expanded_link_set(), want);
        // Tighter subtree-group shapes can only admit more merges.
        assert!(tight.stats.merges_succeeded >= loose.stats.merges_succeeded);
    }

    #[test]
    fn ball_shape_is_also_lossless() {
        let pts = stripe_points(200);
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(6));
        let eps = 0.03;
        let out = CsjJoin::new(eps).with_shape(GroupShapeKind::Ball).run(&tree);
        assert_eq!(out.expanded_link_set(), brute_force_links(&pts, eps));
    }

    #[test]
    fn works_on_all_tree_types() {
        let pts = stripe_points(150);
        let eps = 0.04;
        let want = brute_force_links(&pts, eps);
        let rstar = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(6));
        let rtree = RTree::from_points(&pts, RTreeConfig::with_max_fanout(6));
        let mtree = MTree::from_points(&pts, MTreeConfig::with_max_fanout(6));
        assert_eq!(CsjJoin::new(eps).run(&rstar).expanded_link_set(), want);
        assert_eq!(CsjJoin::new(eps).run(&rtree).expanded_link_set(), want);
        assert_eq!(CsjJoin::new(eps).run(&mtree).expanded_link_set(), want);
    }

    #[test]
    fn streaming_matches_collected() {
        use csj_storage::CountingSink;
        let pts = stripe_points(220);
        let tree = RStarTree::from_points(&pts, RTreeConfig::with_max_fanout(8));
        let join = CsjJoin::new(0.05).with_window(10);
        let collected = join.run(&tree);
        let mut writer = OutputWriter::new(CountingSink::new(), 3);
        let stats = join.run_streaming(&tree, &mut writer).expect("counting sink cannot fail");
        assert_eq!(collected.total_bytes(3), writer.bytes_written());
        assert_eq!(collected.stats.groups_emitted, stats.groups_emitted);
        assert_eq!(collected.stats.merges_succeeded, stats.merges_succeeded);
    }

    #[test]
    fn empty_and_singleton_trees() {
        let empty = RStarTree::<2>::new(RTreeConfig::default());
        assert!(CsjJoin::new(0.1).run(&empty).items.is_empty());
        let one = RStarTree::from_points(&[Point::new([0.5, 0.5])], RTreeConfig::default());
        let out = CsjJoin::new(0.1).run(&one);
        assert!(out.items.is_empty(), "single point produces no rows");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::brute::brute_force_links;
    use csj_geom::Point;
    use csj_index::{rstar::RStarTree, RTreeConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Theorems 1 & 2 as a property: CSJ(g) output expands to exactly
        /// the brute-force link set for arbitrary data, ε and g.
        #[test]
        fn csj_is_lossless(
            pts in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 0..180),
            eps in 0.0f64..0.7,
            g in 0usize..25,
            fanout in 4usize..12,
        ) {
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let tree = RStarTree::from_points(&points, RTreeConfig::with_max_fanout(fanout));
            let out = CsjJoin::new(eps).with_window(g).run(&tree);
            prop_assert_eq!(out.expanded_link_set(), brute_force_links(&points, eps));
        }

        /// All three algorithms agree on the link set, and byte sizes are
        /// ordered CSJ ≤ N-CSJ ≤ SSJ.
        #[test]
        fn algorithm_family_consistency(
            pts in prop::collection::vec(prop::array::uniform2(0.0f64..1.0), 2..120),
            eps in 0.01f64..0.5,
        ) {
            let points: Vec<Point<2>> = pts.into_iter().map(Point::new).collect();
            let tree = RStarTree::from_points(&points, RTreeConfig::with_max_fanout(6));
            let ssj = crate::ssj::SsjJoin::new(eps).run(&tree);
            let ncsj = crate::ncsj::NcsjJoin::new(eps).run(&tree);
            let csj = CsjJoin::new(eps).with_window(10).run(&tree);
            let want = brute_force_links(&points, eps);
            prop_assert_eq!(ssj.expanded_link_set(), want.clone());
            prop_assert_eq!(ncsj.expanded_link_set(), want.clone());
            prop_assert_eq!(csj.expanded_link_set(), want);
            prop_assert!(csj.total_bytes(3) <= ncsj.total_bytes(3));
            prop_assert!(ncsj.total_bytes(3) <= ssj.total_bytes(3));
        }
    }
}
