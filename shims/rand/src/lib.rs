//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the small slice of the rand 0.9 API it actually uses: `StdRng`
//! (a deterministic xoshiro256\*\* generator seeded via SplitMix64),
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `random` /
//! `random_range` / `random_bool`. Streams are deterministic in the seed,
//! which is all the data generators and tests rely on; no claim of
//! statistical equivalence with the real `StdRng` is made.

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value from `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

/// Types samplable uniformly over their natural domain.
pub trait Standard {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable to a `T` (subset of `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the small spans used here.
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256\*\* generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, as the xoshiro authors recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (va, vb, vc): (Vec<u64>, Vec<u64>, Vec<u64>) = (
            (0..10).map(|_| a.next_u64()).collect(),
            (0..10).map(|_| b.next_u64()).collect(),
            (0..10).map(|_| c.next_u64()).collect(),
        );
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(-3i32..3);
            assert!((-3..3).contains(&v));
            let f = rng.random_range(2.0f64..5.0);
            assert!((2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
