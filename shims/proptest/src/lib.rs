//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of the proptest API its tests use: the [`proptest!`] macro,
//! `prop_assert!` / `prop_assert_eq!`, `prop_oneof!`, [`Strategy`] with
//! `prop_map`, `Just`, `any`, numeric-range strategies, tuples,
//! `prop::collection::vec` and `prop::array::uniform2/3`, and
//! [`prelude::ProptestConfig`].
//!
//! Semantics: each property runs `cases` times over deterministically
//! seeded random inputs (seeded from the test's name, so failures
//! reproduce across runs). There is **no shrinking** — a failing case
//! reports the panic from the property body directly.

/// The per-test pseudo-random source and configuration.
pub mod test_runner {
    /// Deterministic xoshiro256\*\* generator used to produce test cases.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator seeded from an arbitrary string (the test name).
        pub fn deterministic(name: &str) -> Self {
            let mut seed: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100000001b3);
            }
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// The next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// A uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform index in `[0, n)`; `n` must be positive.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "index over empty domain");
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Subset of proptest's run configuration: the number of cases.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values (proptest's `Strategy`, minus
    /// shrinking).
    pub trait Strategy {
        /// The type of value generated.
        type Value;

        /// Produces one random value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given arms (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// Types with a canonical whole-domain strategy ([`crate::arbitrary::any`]).
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Whole-domain strategy for an [`Arbitrary`] type.
    pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

    impl<T> Default for AnyStrategy<T> {
        fn default() -> Self {
            AnyStrategy(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy::default()
}

/// Built-in strategy constructors, mirroring proptest's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Admissible length specifications for [`vec`].
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi: r.end }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi: *r.end() + 1 }
            }
        }

        /// Strategy for `Vec`s of `element` values with a random length.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// The result of [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.hi - self.size.lo;
                let len = self.size.lo + if span > 0 { rng.index(span) } else { 0 };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for `[T; N]` with every cell drawn from `element`.
        pub struct UniformArray<S, const N: usize> {
            element: S,
        }

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
            type Value = [S::Value; N];
            fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
                core::array::from_fn(|_| self.element.generate(rng))
            }
        }

        /// A 2-element array strategy.
        pub fn uniform2<S: Strategy>(element: S) -> UniformArray<S, 2> {
            UniformArray { element }
        }

        /// A 3-element array strategy.
        pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
            UniformArray { element }
        }

        /// A 4-element array strategy.
        pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
            UniformArray { element }
        }
    }
}

/// The import surface tests use: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn` runs its body over random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                { $body }
            }
        }
    )*};
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(
            x in -5i32..5,
            f in 0.25f64..0.75,
            n in 1usize..10,
        ) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_and_array_sizes(
            v in prop::collection::vec(0u32..100, 2..7),
            a in prop::array::uniform2(0.0f64..1.0),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert!(a.iter().all(|&c| (0.0..1.0).contains(&c)));
        }

        #[test]
        fn oneof_and_map(
            tag in prop_oneof![Just(1u8), Just(2u8), (10u8..20).prop_map(|v| v)],
        ) {
            prop_assert!(tag == 1 || tag == 2 || (10..20).contains(&tag));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::prop::collection::vec(0u64..1000, 5..6);
        let a = strat.generate(&mut TestRng::deterministic("seed"));
        let b = strat.generate(&mut TestRng::deterministic("seed"));
        assert_eq!(a, b);
    }
}
