//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of the criterion API its benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each bench body runs a warm-up pass plus a
//! small fixed number of timed iterations and reports the mean; there is
//! no statistical analysis, plotting or regression tracking.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed iterations per benchmark (after one warm-up).
const TIMED_ITERS: u32 = 3;

/// Names a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures handed to bench bodies.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Runs `f` repeatedly, recording wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            black_box(f());
        }
        self.total += start.elapsed();
        self.iters += TIMED_ITERS;
    }

    fn mean(&self) -> Option<Duration> {
        (self.iters > 0).then(|| self.total / self.iters)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Compatibility no-op (the shim always runs a fixed iteration count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Compatibility no-op.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Runs one benchmark that receives an input by reference.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

fn report(label: &str, b: &Bencher) {
    match b.mean() {
        Some(mean) => eprintln!("bench {label}: {mean:?} (mean of {} iters)", b.iters),
        None => eprintln!("bench {label}: no iterations recorded"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Compatibility no-op.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(&id.to_string(), &b);
        self
    }
}

/// Groups benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| runs += 1);
        });
        assert_eq!(runs, 1 + TIMED_ITERS);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).bench_function("one", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("two", 7), &7, |b, &x| b.iter(|| black_box(x * x)));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
