//! Umbrella crate for the Compact Similarity Joins reproduction.
//!
//! Re-exports the workspace crates so examples and downstream users can
//! depend on a single package:
//!
//! * [`geom`] — points, MBRs, metrics, bounding spheres.
//! * [`index`] — R-tree, R*-tree, M-tree, bulk loaders, the [`index::JoinIndex`] trait.
//! * [`storage`] — paged storage simulation, buffer pool, output writers.
//! * [`core`] — the paper's contribution: SSJ, N-CSJ, CSJ(g), spatial joins,
//!   ε-grid-order, verification, outlier mining.
//! * [`data`] — dataset generators (Sierpinski, roads, clusters, uniform).
//!
//! # Quickstart
//!
//! ```
//! use compact_similarity_joins::prelude::*;
//!
//! // 1000 points on a 2-D Sierpinski triangle.
//! let pts = csj_data::sierpinski::triangle_2d(1000, 42);
//! let tree = RStarTree::bulk_load_str(&pts, RTreeConfig::default());
//!
//! // Compact similarity join with window g = 10 and range 0.125.
//! let out = CsjJoin::new(0.125).with_window(10).run(&tree);
//! // Lossless: expanding the groups gives exactly the brute-force link set.
//! let brute = brute_force_links(&pts, 0.125);
//! assert_eq!(out.expanded_link_set(), brute);
//! ```

pub use csj_core as core;
pub use csj_data as data;
pub use csj_geom as geom;
pub use csj_index as index;
pub use csj_storage as storage;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use csj_core::{
        brute::brute_force_links, csj::CsjJoin, ncsj::NcsjJoin, ssj::SsjJoin, JoinConfig,
    };
    pub use csj_data;
    pub use csj_geom::{Mbr, Metric, Point};
    pub use csj_index::{rstar::RStarTree, rtree::RTree, JoinIndex, RTreeConfig};
}
